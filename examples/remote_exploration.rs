//! Remote processing: a thin device over a simulated cloud server.
//!
//! Eight explorers slide over a 300k-row sky survey from devices that hold
//! only the coarsest sample level; slow, detail-seeking slides need finer
//! levels and go to the server. The same workload runs three ways — all
//! local, blocking remote fetches, and overlapped (asynchronous) remote
//! fetches — and must produce bit-identical digests; the interesting part is
//! how long each takes at a 40ms WAN round trip.
//!
//! ```text
//! cargo run --release --example remote_exploration
//! ```

use dbtouch::server::ServerConfig;
use dbtouch::workload::concurrent::{run_concurrent, run_sequential};
use dbtouch::workload::remote::{device_cloud_catalog, plan_device_cloud, RemoteMode};
use dbtouch::workload::Scenario;

fn main() {
    let scenario = Scenario::sky_survey(300_000, 99);
    let (local, object) =
        device_cloud_catalog(&scenario, RemoteMode::AllLocal, None).expect("load scenario");
    let plans = plan_device_cloud(&local, object, 8, 2, 2026).expect("plan explorers");
    let expected = run_sequential(&local, object, &plans).expect("sequential replay");

    println!("8 explorers, 2 traces each (slow = detail = remote, fast = skim = local)");
    println!("default WAN: 40ms round trip, 2000 rows/ms\n");
    for mode in [
        RemoteMode::AllLocal,
        RemoteMode::Blocking,
        RemoteMode::Overlapped,
    ] {
        let (catalog, id) =
            device_cloud_catalog(&scenario, mode, None).expect("load scenario for mode");
        let run = run_concurrent(&catalog, id, &plans, ServerConfig::with_workers(16))
            .expect("serve explorers");
        assert!(run.errors().is_empty(), "errors: {:?}", run.errors());
        let identical = run.digests() == expected;
        let remote: u64 = run
            .sessions
            .iter()
            .map(|s| s.total_remote().total_requests())
            .sum();
        let overlap: f64 = run
            .sessions
            .iter()
            .map(|s| s.remote_overlap_ratio())
            .sum::<f64>()
            / run.sessions.len().max(1) as f64;
        println!(
            "{:<11}  wall {:>7.3}s   {:>8.0} touches/s   {:>4} remote requests   overlap {:>4.2}   digests identical: {}",
            mode.label(),
            run.wall_nanos as f64 / 1e9,
            run.touches_per_sec(),
            remote,
            overlap,
            identical,
        );
        assert!(identical, "{mode:?} must be result-transparent");
    }
    println!("\nsame answers, bit for bit — the overlapped device just never waits for them.");
}
