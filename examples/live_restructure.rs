//! Live restructures: explorers keep exploring while the catalog is being
//! reshaped underneath them.
//!
//! dbTouch lets users restructure the data with gestures — drag a column out
//! of a table, drop it back in — while everyone else keeps sliding. This
//! example runs **eight** explorers over a sky-survey column served by
//! `dbtouch-server`, while a mutator thread continuously ping-pongs columns
//! out of (and back into) a separate churn table. Every restructure publishes
//! a new epoch-versioned catalog snapshot; checkouts stay wait-free and every
//! session observes epochs only at its gesture boundaries.
//!
//! The example prints each session's observed epochs and restructure count,
//! then replays the same plans sequentially and verifies the digests are
//! bit-identical — restructures of unrelated objects never change answers.
//!
//! Run with:
//! ```text
//! cargo run --release --example live_restructure
//! ```

use dbtouch::prelude::*;
use dbtouch::workload::churn::{churn_catalog, run_concurrent_with_churn};
use dbtouch::workload::concurrent::{plan_explorers, run_sequential};
use dbtouch::workload::scenarios::Scenario;

const EXPLORERS: usize = 8;
const TRACES_PER_EXPLORER: usize = 8;
const MUTATORS: usize = 2;

fn main() -> Result<()> {
    let scenario = Scenario::sky_survey(400_000, 20260727);
    let (catalog, signal, churn) = churn_catalog(&scenario, KernelConfig::default(), 4_096)?;
    println!(
        "catalog: `{}` ({} rows, explored) + `churn` table ({} columns, restructured live)",
        scenario.name,
        scenario.rows(),
        catalog.data(churn)?.schema().len(),
    );

    let plans = plan_explorers(&catalog, signal, EXPLORERS, TRACES_PER_EXPLORER, 42)?;
    println!(
        "running {EXPLORERS} explorer sessions while {MUTATORS} mutator threads drag columns out and back in...\n"
    );
    let outcome = run_concurrent_with_churn(
        &catalog,
        signal,
        &plans,
        ServerConfig::default(),
        churn,
        MUTATORS,
    )?;

    let latency = outcome.run.latency_summary();
    println!(
        "churn: {} restructures published in {:.1} ms (epoch {} -> {})",
        outcome.restructures,
        outcome.run.wall_nanos as f64 / 1e6,
        outcome.first_epoch,
        outcome.final_epoch,
    );
    println!(
        "  explorer throughput under churn: {:.0} touches/sec, p50 {:.2} us, p99 {:.2} us per touch",
        outcome.run.touches_per_sec(),
        latency.p50_nanos as f64 / 1e3,
        latency.p99_nanos as f64 / 1e3,
    );
    for error in outcome.run.errors() {
        println!("  session error: {error}");
    }
    for error in &outcome.mutator_errors {
        println!("  mutator error: {error}");
    }

    println!("\nper-session observed epochs (at each gesture boundary):");
    let sequential = run_sequential(&catalog, signal, &plans)?;
    let mut identical = true;
    for (index, report) in outcome.run.sessions.iter().enumerate() {
        let digest = report.result_digest();
        let matched = digest == sequential[index];
        identical &= matched;
        println!(
            "  session {index}: epochs {:?}, restructures of its object seen: {}, digest {digest:016x} — {}",
            report.epochs,
            report.restructures_seen,
            if matched { "verified" } else { "DIVERGED" }
        );
    }
    if !identical {
        return Err(dbtouch::types::DbTouchError::Internal(
            "live restructures perturbed an unrelated session's results".into(),
        ));
    }
    println!(
        "\nall {EXPLORERS} sessions match the churn-free sequential replay bit for bit: \
         restructures moved the epoch ({} -> {}), never the answers.",
        outcome.first_epoch, outcome.final_epoch
    );
    Ok(())
}
