//! Quickstart: load a column, touch it, read the results.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This walks through the basic dbTouch interaction loop of the paper's
//! Section 2: data appears as an abstract object, a tap reveals a single value
//! (schema discovery), a slide scans or aggregates the touched entries, a
//! zoom-in makes the same gesture return more detail.

use dbtouch::core::kernel::TouchAction;
use dbtouch::core::operators::aggregate::AggregateKind;
use dbtouch::prelude::*;

fn main() -> Result<()> {
    // 1. Create a kernel and load one million measurements as a column object
    //    rendered as a 2cm x 10cm rectangle on the (simulated) screen.
    let mut kernel = Kernel::new(KernelConfig::default());
    let measurements: Vec<i64> = (0..1_000_000).map(|i| (i % 1_000) - 500).collect();
    let object = kernel.load_column("measurements", measurements, SizeCm::new(2.0, 10.0))?;
    println!("catalog: {:?}", kernel.catalog_names());

    // 2. Schema-less discovery: a single tap reveals one value, enough to see
    //    that this is an integer column.
    let tap = kernel.tap(object, 0.5)?;
    println!(
        "tap at the middle of the object reveals: {}",
        tap.results
            .latest()
            .and_then(|r| r.value().cloned())
            .unwrap()
    );

    // 3. A plain scan: slide a finger from the top to the bottom of the object
    //    over two seconds. Every touch reveals the value it lands on.
    kernel.set_action(object, TouchAction::Scan)?;
    let view = kernel.view(object)?;
    let mut synthesizer = GestureSynthesizer::new(60.0);
    let slide = synthesizer.slide_down(&view, 2.0);
    let outcome = kernel.run_trace(object, &slide)?;
    println!(
        "scan slide: {} entries returned, {} rows touched, mean per-touch cost {} ns",
        outcome.stats.entries_returned,
        outcome.stats.rows_touched,
        outcome.stats.mean_touch_nanos()
    );

    // 4. Interactive summaries: the same slide now returns the average of a
    //    small window around each touched tuple, so each touch inspects more
    //    data and local patterns become visible.
    kernel.set_action(
        object,
        TouchAction::Summary {
            half_window: Some(5),
            kind: AggregateKind::Avg,
        },
    )?;
    let outcome = kernel.run_trace(object, &synthesizer.slide_down(&view, 2.0))?;
    println!(
        "summary slide: {} summaries returned (sample levels used: {:?})",
        outcome.stats.entries_returned, outcome.stats.sample_level_usage
    );

    // 5. Zoom in with a pinch gesture and slide again: the object is bigger, so
    //    the same gesture addresses the data at a finer granularity.
    let pinch = synthesizer.pinch(&view, 2.0, 0.4);
    kernel.run_trace(object, &pinch)?;
    let zoomed_view = kernel.view(object)?;
    println!(
        "after zoom-in the object is {} tall (was {})",
        zoomed_view.size().height,
        view.size().height
    );
    let outcome = kernel.run_trace(object, &synthesizer.slide_down(&zoomed_view, 2.0))?;
    println!(
        "zoomed summary slide: {} summaries returned",
        outcome.stats.entries_returned
    );

    // 6. A running aggregate: the final value approximates the column average
    //    without ever reading the whole column.
    kernel.set_action(object, TouchAction::Aggregate(AggregateKind::Avg))?;
    let outcome = kernel.run_trace(object, &synthesizer.slide_down(&zoomed_view, 1.0))?;
    println!(
        "running average after one slide: {:.1} (touched {} of 1,000,000 rows)",
        outcome.final_aggregate.unwrap_or(f64::NAN),
        outcome.stats.rows_touched
    );
    Ok(())
}
