//! Complex queries via gestures (Section 2.9): joins, group-bys and filtered
//! aggregates driven by slides, plus a multi-object screen.
//!
//! Run with:
//! ```text
//! cargo run --release --example complex_queries
//! ```

use dbtouch::core::join_session::{JoinSession, JoinSpec};
use dbtouch::core::kernel::TouchAction;
use dbtouch::core::operators::aggregate::AggregateKind;
use dbtouch::core::operators::filter::{CompareOp, Predicate};
use dbtouch::core::screen_session::ScreenSession;
use dbtouch::prelude::*;
use dbtouch::storage::column::Column as StorageColumn;

fn main() -> Result<()> {
    let mut kernel = Kernel::new(KernelConfig::default());
    let mut synthesizer = GestureSynthesizer::new(60.0);

    // A small star-schema-ish pair: orders reference one of 200 customers.
    let n_orders = 500_000usize;
    let orders_customer: Vec<i64> = (0..n_orders as i64).map(|i| (i * 37) % 200).collect();
    let orders_amount: Vec<f64> = (0..n_orders)
        .map(|i| ((i * 13) % 1000) as f64 / 10.0)
        .collect();

    let orders = kernel.load_table(
        Table::from_columns(
            "orders",
            vec![
                StorageColumn::from_i64("customer", orders_customer.clone()),
                StorageColumn::from_f64("amount", orders_amount),
            ],
        )?,
        SizeCm::new(4.0, 10.0),
    )?;
    let order_keys =
        kernel.load_column("order_customer", orders_customer, SizeCm::new(2.0, 10.0))?;
    let customers = kernel.load_column("customer_id", (0..200).collect(), SizeCm::new(2.0, 6.0))?;

    // 1. Gesture-driven group-by: slide over the orders table while it groups
    //    touched tuples by customer region-of-200 and keeps a running average.
    kernel.set_action(
        orders,
        TouchAction::GroupBy {
            group_attribute: 0,
            value_attribute: 1,
            kind: AggregateKind::Avg,
        },
    )?;
    let view = kernel.view(orders)?;
    let outcome = kernel.run_trace(orders, &synthesizer.slide_down(&view, 3.0))?;
    println!(
        "group-by slide: {} touched tuples spread over {} customer groups (showing 5):",
        outcome.stats.entries_returned,
        outcome.final_groups.len()
    );
    for (group, avg) in outcome.final_groups.iter().take(5) {
        println!("  customer {group}: running avg amount {avg:.2}");
    }

    // 2. Filtered aggregate: running average of only the large orders touched.
    kernel.set_action(
        orders,
        TouchAction::FilteredAggregate {
            predicate: Predicate::compare(CompareOp::Ge, 80.0),
            kind: AggregateKind::Avg,
        },
    )?;
    let outcome = kernel.run_trace(orders, &synthesizer.slide_down(&view, 2.0))?;
    println!(
        "filtered aggregate (amount >= 80): avg {:.2} over {} qualifying touches",
        outcome.final_aggregate.unwrap_or(f64::NAN),
        outcome.stats.entries_returned
    );

    // 3. A gesture-driven join: slide over the order keys; matches with the
    //    customer column appear immediately (non-blocking symmetric hash join).
    let spec = JoinSpec {
        driving: order_keys,
        other: customers,
        driving_key: 0,
        other_key: 0,
    };
    let view = kernel.view(order_keys)?;
    let join_outcome = JoinSession::new(&kernel, spec)?.run(&synthesizer.slide_down(&view, 2.0))?;
    println!(
        "join slide: {} matches; the first match appeared after only {} consumed rows \
         (of {} fed in total)",
        join_outcome.stats.matches,
        join_outcome.stats.rows_to_first_match,
        join_outcome.stats.left_rows + join_outcome.stats.right_rows
    );

    // 4. A screen with two objects side by side: one horizontal sweep touches
    //    both objects and each delivers its own results.
    kernel.set_action(order_keys, TouchAction::Scan)?;
    kernel.set_action(customers, TouchAction::Scan)?;
    let mut screen = ScreenSession::new();
    screen.place(&kernel, order_keys, PointCm::new(1.0, 1.0))?;
    screen.place(&kernel, customers, PointCm::new(5.0, 1.0))?;
    let mut sweep = dbtouch::gesture::trace::GestureTrace::new("screen");
    for i in 0..60 {
        let phase = match i {
            0 => dbtouch::gesture::touch::TouchPhase::Began,
            59 => dbtouch::gesture::touch::TouchPhase::Ended,
            _ => dbtouch::gesture::touch::TouchPhase::Moved,
        };
        sweep.push(dbtouch::gesture::touch::TouchEvent::new(
            PointCm::new(1.2 + i as f64 * 0.1, 4.0),
            Timestamp::from_millis(i * 16),
            phase,
        ));
    }
    let screen_outcome = screen.run_trace(&mut kernel, &sweep)?;
    println!(
        "screen sweep: touched {} objects, {} total entries, {} touches landed on empty space",
        screen_outcome.per_object.len(),
        screen_outcome.total_entries(),
        screen_outcome.missed_touches
    );
    Ok(())
}
