//! Schema and storage-layout gestures (Section 2.8).
//!
//! dbTouch lets the user reshape the physical design interactively: rotating a
//! table flips it between a row-oriented and a column-oriented layout, dragging
//! a column out of a "fat" table turns it into its own lean object, and
//! independent columns can be grouped back into a table placeholder. This
//! example performs each of those gestures on a small sales table and shows how
//! the catalog and layouts evolve, plus how the remote-processing split of
//! Section 4 would serve detail requests.
//!
//! Run with:
//! ```text
//! cargo run --release --example layout_gestures
//! ```

use dbtouch::core::kernel::TouchAction;
use dbtouch::core::remote::{NetworkModel, RemoteStore};
use dbtouch::prelude::*;
use dbtouch::storage::sample::SampleHierarchy;

fn main() -> Result<()> {
    let mut kernel = Kernel::new(KernelConfig::default());

    // A small sales table rendered as one fat rectangle.
    let rows = 200_000usize;
    let sales = Table::from_columns(
        "sales",
        vec![
            Column::from_i64("order_id", (0..rows as i64).collect()),
            Column::from_f64(
                "amount",
                (0..rows).map(|i| (i % 500) as f64 / 10.0).collect(),
            ),
            Column::from_i64("region", (0..rows as i64).map(|i| i % 8).collect()),
        ],
    )?;
    let table = kernel.load_table(sales, SizeCm::new(6.0, 10.0))?;
    println!("loaded table; catalog = {:?}", kernel.catalog_names());
    println!("initial layout: {}", kernel.layout(table)?);

    // Rotate gesture: the physical design flips to a row-store and the object
    // now lies horizontally on screen.
    let mut synthesizer = GestureSynthesizer::new(60.0);
    let view = kernel.view(table)?;
    let rotate = synthesizer.rotate(&view, true, 0.5);
    kernel.run_trace(table, &rotate)?;
    println!(
        "after rotate gesture: layout = {}, orientation = {:?}",
        kernel.layout(table)?,
        kernel.view(table)?.orientation
    );

    // A tap on the rotated table reveals a whole tuple.
    kernel.set_action(table, TouchAction::Tuple)?;
    let tap = kernel.tap(table, 0.37)?;
    println!(
        "tap reveals the tuple {:?}",
        tap.results
            .latest()
            .map(|r| r.values.clone())
            .unwrap_or_default()
    );

    // Drag the `amount` column out of the fat table: it becomes its own lean
    // object the analyst can slide over without paying for the other columns.
    let amount = kernel.drag_column_out(table, "amount", SizeCm::new(2.0, 10.0))?;
    println!(
        "after dragging `amount` out: catalog = {:?}, table now has {} attributes",
        kernel.catalog_names(),
        kernel.view(table)?.attribute_count
    );
    kernel.set_action(
        amount,
        TouchAction::Aggregate(dbtouch::core::operators::aggregate::AggregateKind::Avg),
    )?;
    let view = kernel.view(amount)?;
    let outcome = kernel.run_trace(amount, &synthesizer.slide_down(&view, 1.0))?;
    println!(
        "sliding over the standalone `amount` column: running avg ≈ {:.2} from {} touched rows",
        outcome.final_aggregate.unwrap_or(f64::NAN),
        outcome.stats.rows_touched
    );

    // Group standalone columns into a new table placeholder.
    let order_ids = kernel.load_column(
        "order_id_copy",
        (0..rows as i64).collect(),
        SizeCm::new(2.0, 10.0),
    )?;
    let grouped = kernel.group_into_table(
        "amount_by_order",
        &[order_ids, amount],
        SizeCm::new(4.0, 10.0),
    )?;
    println!(
        "grouped columns into `{}` with {} attributes",
        kernel.catalog_names().last().cloned().unwrap_or_default(),
        kernel.view(grouped)?.attribute_count
    );

    // Remote processing (Section 4): the device keeps only coarse samples of the
    // amount column; fine-grained detail requests go to the simulated server.
    let hierarchy = SampleHierarchy::build(
        Column::from_f64(
            "amount",
            (0..rows).map(|i| (i % 500) as f64 / 10.0).collect(),
        ),
        8,
    )?;
    let mut remote = RemoteStore::new(hierarchy, 4, NetworkModel::default())?;
    let coarse = remote.fetch(RowRange::new(0, 50_000), 5)?;
    let (quick, fine) = remote.fetch_progressive(RowRange::new(0, 50_000), 0)?;
    println!(
        "remote split: coarse request served {:?} in {}µs; detail request answered locally with {} rows first, \
         then {} rows from the server after {}µs",
        coarse.served_from,
        coarse.simulated_micros,
        quick.rows,
        fine.as_ref().map(|f| f.rows).unwrap_or(0),
        fine.as_ref().map(|f| f.simulated_micros).unwrap_or(0)
    );
    println!(
        "device-resident bytes: {} (vs {} for the full column)",
        remote.local_bytes(),
        rows * 8
    );
    Ok(())
}
