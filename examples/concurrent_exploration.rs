//! Concurrent exploration: a room full of analysts over one shared catalog.
//!
//! dbTouch frames a query as a session of gestures from one explorer. This
//! example runs **twelve** explorers at once — each with their own touch
//! action, slide cadence and session state — against a single sky-survey
//! catalog served by `dbtouch-server`'s worker pool. It reports the aggregate
//! touch throughput and the per-touch latency tail, then replays the exact
//! same gesture plans one explorer at a time through the single-user kernel
//! and verifies the concurrent results are identical, explorer by explorer.
//!
//! Run with:
//! ```text
//! cargo run --release --example concurrent_exploration
//! ```

use dbtouch::prelude::*;
use dbtouch::workload::concurrent::{
    plan_explorers, run_concurrent, run_sequential, scenario_catalog,
};
use dbtouch::workload::scenarios::Scenario;

const EXPLORERS: usize = 12;
const TRACES_PER_EXPLORER: usize = 4;

fn main() -> Result<()> {
    let scenario = Scenario::sky_survey(500_000, 20260613);
    let (catalog, object) = scenario_catalog(&scenario, KernelConfig::default())?;
    println!(
        "catalog: one `{}` column of {} rows, shared immutably by every session",
        scenario.name,
        scenario.rows()
    );

    let plans = plan_explorers(&catalog, object, EXPLORERS, TRACES_PER_EXPLORER, 42)?;
    let planned_touches: u64 = plans.iter().map(|p| p.touches()).sum();
    println!(
        "planned: {EXPLORERS} explorers x {TRACES_PER_EXPLORER} gestures = {planned_touches} touch samples\n"
    );

    let server_config = ServerConfig::default();
    let workers = server_config.worker_threads;
    let concurrent = run_concurrent(&catalog, object, &plans, server_config)?;
    let latency = concurrent.latency_summary();
    println!(
        "concurrent: {EXPLORERS} sessions over {workers} workers in {:.1} ms",
        concurrent.wall_nanos as f64 / 1e6
    );
    println!(
        "  aggregate throughput: {:.0} touches/sec ({} entries returned)",
        concurrent.touches_per_sec(),
        concurrent.total_entries()
    );
    println!(
        "  per-touch latency: p50 {:.2} us, p90 {:.2} us, p99 {:.2} us (per-trace means), worst single touch {:.2} us",
        latency.p50_nanos as f64 / 1e3,
        latency.p90_nanos as f64 / 1e3,
        latency.p99_nanos as f64 / 1e3,
        latency.max_nanos as f64 / 1e3,
    );
    for error in concurrent.errors() {
        println!("  session error: {error}");
    }

    println!("\nreplaying the same plans sequentially through the single-user kernel...");
    let sequential = run_sequential(&catalog, object, &plans)?;
    let concurrent_digests = concurrent.digests();
    let mut identical = true;
    for (index, (c, s)) in concurrent_digests.iter().zip(&sequential).enumerate() {
        let matched = c == s;
        identical &= matched;
        println!(
            "  explorer {index:>2}: {} entries, digest {c:016x} — {}",
            concurrent.sessions[index].total_entries(),
            if matched { "identical" } else { "DIVERGED" }
        );
    }
    if !identical {
        return Err(dbtouch::types::DbTouchError::Internal(
            "concurrent execution diverged from the sequential baseline".into(),
        ));
    }
    println!("\nall {EXPLORERS} concurrent sessions match the sequential baseline exactly.");
    Ok(())
}
