//! The Appendix A exploration contest, runnable end to end.
//!
//! Two simulated participants get the same data set with a hidden anomaly: one
//! explores through the dbTouch kernel (slides, interactive summaries, zoom-in
//! gestures), the other through SQL aggregate queries against the blocking
//! baseline column store. The winner is whoever localizes the anomaly first.
//!
//! Run with:
//! ```text
//! cargo run --release --example exploration_contest
//! ```

use dbtouch::prelude::*;
use dbtouch::workload::explorer::{DbTouchExplorer, SqlExplorer};
use dbtouch::workload::scenarios::Scenario;

fn main() -> Result<()> {
    let scenario = Scenario::contest(1_000_000, 99);
    println!(
        "contest data set: {} rows; task: {}",
        scenario.rows(),
        scenario.task
    );
    println!();

    let tolerance = 0.01;
    let dbtouch = DbTouchExplorer::new(KernelConfig::default()).explore(&scenario, tolerance)?;
    let sql = SqlExplorer::new().explore(&scenario, tolerance)?;

    for report in [&dbtouch, &sql] {
        println!("participant: {}", report.system);
        println!("  localized the anomaly at fraction {:.4} (truth {:.4}, error {:.4}, within tolerance: {})",
            report.found_fraction, report.target_fraction, report.error_fraction, report.found);
        println!(
            "  rows touched: {:>12}   bytes touched: {:>14}",
            report.rows_touched, report.bytes_touched
        );
        println!(
            "  interactions: {:>12}   estimated time: {:>10.1}s",
            report.interactions, report.estimated_seconds
        );
        println!();
    }

    let winner = if dbtouch.estimated_seconds < sql.estimated_seconds {
        "dbtouch"
    } else {
        "sql"
    };
    println!(
        "winner by estimated time: {winner}; the SQL participant's engine scanned {:.0}x more data",
        sql.rows_touched as f64 / dbtouch.rows_touched.max(1) as f64
    );
    Ok(())
}
