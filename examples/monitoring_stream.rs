//! Monitoring stream: the IT-analyst scenario from the paper's introduction.
//!
//! "A data analyst of an IT business browses daily data of monitoring streams
//! to figure out user behavior patterns." The stream here is a request-latency
//! signal with a daily rhythm and a hidden incident (a sustained latency jump).
//! The example shows three dbTouch interactions on the same data:
//!
//! 1. a fast slide with interactive summaries to spot the incident region,
//! 2. a filtered scan (`latency > threshold`) to confirm which touched samples
//!    exceed the SLO,
//! 3. a slower, zoomed-in slide with a running max aggregate over the incident
//!    region to gauge its severity.
//!
//! Run with:
//! ```text
//! cargo run --release --example monitoring_stream
//! ```

use dbtouch::core::kernel::TouchAction;
use dbtouch::core::operators::aggregate::AggregateKind;
use dbtouch::core::operators::filter::{CompareOp, Predicate};
use dbtouch::gesture::synthesizer::SlideSegment;
use dbtouch::prelude::*;
use dbtouch::workload::scenarios::Scenario;

fn main() -> Result<()> {
    let scenario = Scenario::monitoring_stream(3_000_000, 7);
    println!("task: {}", scenario.task);
    let truth = scenario.target_fraction();

    let mut kernel = Kernel::new(KernelConfig::default());
    let object = kernel.load_column_typed(scenario.signal_column(), SizeCm::new(2.0, 12.0))?;
    let mut synthesizer = GestureSynthesizer::new(60.0);

    // 1. Spot the incident with a single 3-second summary slide over the whole day.
    kernel.set_action(
        object,
        TouchAction::Summary {
            half_window: Some(10),
            kind: AggregateKind::Avg,
        },
    )?;
    let view = kernel.view(object)?;
    let outcome = kernel.run_trace(object, &synthesizer.slide_down(&view, 3.0))?;
    let hottest = outcome
        .results
        .results()
        .iter()
        .max_by(|a, b| {
            let av = a.value().and_then(|v| v.as_f64().ok()).unwrap_or(f64::MIN);
            let bv = b.value().and_then(|v| v.as_f64().ok()).unwrap_or(f64::MIN);
            av.total_cmp(&bv)
        })
        .expect("slide produced results");
    let suspect = hottest.position_fraction;
    println!(
        "pass 1 (summaries): {} summaries appeared, latency looks elevated around fraction {suspect:.3} \
         (incident truth: {truth:.3})",
        outcome.stats.entries_returned,
    );

    // 2. Confirm with a filtered scan around the suspicious region: only samples
    //    breaching the 150ms SLO pop up.
    kernel.set_action(
        object,
        TouchAction::FilteredScan {
            predicate: Predicate::compare(CompareOp::Gt, 150.0),
        },
    )?;
    let lo = (suspect - 0.1).max(0.0);
    let hi = (suspect + 0.1).min(1.0);
    let trace = synthesizer.slide_profile(
        &view,
        &[SlideSegment::movement(lo, hi, 2.0)],
        Timestamp::ZERO,
    );
    let outcome = kernel.run_trace(object, &trace)?;
    println!(
        "pass 2 (filtered scan > 150ms over [{lo:.2}, {hi:.2}]): {} of {} touched samples breach the SLO",
        outcome.stats.entries_returned,
        outcome.stats.touches
    );

    // 3. Zoom in on the incident and measure its severity with a running max.
    let pinch = synthesizer.pinch(&view, 4.0, 0.5);
    kernel.run_trace(object, &pinch)?;
    kernel.set_action(object, TouchAction::Aggregate(AggregateKind::Max))?;
    let zoomed = kernel.view(object)?;
    let trace = synthesizer.slide_profile(
        &zoomed,
        &[SlideSegment::movement(lo, hi, 3.0)],
        Timestamp::ZERO,
    );
    let outcome = kernel.run_trace(object, &trace)?;
    println!(
        "pass 3 (zoomed running max over the incident): peak latency ≈ {:.1}ms after touching {} rows",
        outcome.final_aggregate.unwrap_or(f64::NAN),
        outcome.stats.rows_touched
    );
    println!(
        "total data touched across all passes stayed a tiny fraction of the {}-sample stream",
        scenario.rows()
    );
    Ok(())
}
