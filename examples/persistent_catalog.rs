//! A catalog that survives restarts: persist, reopen, stream from pages.
//!
//! dbTouch envisions *continuous* data exploration — sessions that span
//! days, not processes. This example walks the full durability loop in one
//! program:
//!
//! 1. serve a sky-survey column to eight concurrent explorers and record
//!    their result digests,
//! 2. persist the catalog into a directory (checksummed pages + an
//!    atomically renamed manifest: the directory is one published epoch),
//! 3. "restart": reopen the directory. Nothing is loaded eagerly — columns
//!    are paged-backed readers that fault through a buffer pool on first
//!    touch — here deliberately sized to ~10% of the dataset, so the replay
//!    *streams* the catalog instead of holding it in memory,
//! 4. replay the identical seeded workload and verify every digest is
//!    bit-identical to the pre-restart run.
//!
//! Run with:
//! ```text
//! cargo run --release --example persistent_catalog
//! ```

use dbtouch::prelude::*;
use dbtouch::workload::persistence::{build_and_persist, replay_persisted, RoundTripSpec};

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join(format!("dbtouch-example-catalog-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // 1 + 2: build, serve, persist, record expected digests.
    let spec = RoundTripSpec {
        rows: 400_000,
        sessions: 8,
        traces_per_session: 6,
        seed: 20260727,
    };
    let record = build_and_persist(&dir, &spec, KernelConfig::default(), ServerConfig::auto())?;
    println!(
        "persisted epoch {} after serving {} sessions ({} traces each)",
        record.epoch, spec.sessions, spec.traces_per_session
    );
    for (i, digest) in record.digests.iter().enumerate() {
        println!("  session {i}: digest {digest:016x}");
    }

    // 3 + 4: "restart" with a pool ~10% of the dataset and replay.
    let pages = std::fs::metadata(dir.join("pages.dat")).map_or(0, |m| m.len()) / 8192;
    let pool = ((pages as usize) / 10).max(8);
    println!("\nreopening with a {pool}-page buffer pool (~10% of {pages} data pages)…");
    let config = KernelConfig::default().with_buffer_pool_pages(pool);
    let outcome = replay_persisted(&dir, config.clone(), ServerConfig::auto())?;
    println!(
        "reopened to epoch {} and replayed {} sessions: digests {}",
        outcome.reopened_epoch,
        outcome.actual.len(),
        if outcome.verified() {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );

    // Show how the replay streamed: faults vs pool hits of a fresh open.
    let reopened = SharedCatalog::open(&dir, config)?;
    let id = reopened.object_id("sky_brightness")?;
    let data = reopened.data(id)?;
    let mut kernel = Kernel::from_catalog(std::sync::Arc::new(reopened));
    let trace = GestureSynthesizer::new(60.0).exploratory_slide(data.base_view(), 3.0);
    kernel.run_trace(id, &trace)?;
    if let Some(stats) = kernel.catalog().pager_stats() {
        println!(
            "one exploratory slide later: {} page faults, {} pool hits, {} evictions",
            stats.faults, stats.pool_hits, stats.evictions
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
    if !outcome.verified() {
        return Err(DbTouchError::Internal(
            "replay diverged from the recorded digests".into(),
        ));
    }
    println!("\nthe catalog outlived its process: exploration is continuous.");
    Ok(())
}
