//! Network exploration: gesture sessions served over TCP.
//!
//! dbTouch separates the touch surface from the kernel: the tablet capturing
//! slides need not be the machine holding the data. This example makes that
//! split concrete on one machine — a `NetServer` listens on a loopback port,
//! and eight explorers connect through `TcpClient`, each replaying its
//! gesture plan over the checksummed binary wire protocol. The same plans
//! are then run through the in-process kernel and the result digests are
//! compared bit for bit: the wire adds latency, never error.
//!
//! It closes by shedding load on purpose (a one-session admission limit) and
//! printing the `net.*` side of the metrics scrape.
//!
//! Run with:
//! ```text
//! cargo run --release --example network_exploration
//! ```

use dbtouch::prelude::*;
use dbtouch::types::DbTouchError;
use dbtouch::workload::concurrent::{
    drive_plans_over, plan_explorers, run_sequential, scenario_catalog,
};
use dbtouch::workload::scenarios::Scenario;
use std::sync::Arc;

const EXPLORERS: usize = 8;
const TRACES_PER_EXPLORER: usize = 4;

fn main() -> Result<()> {
    let scenario = Scenario::sky_survey(200_000, 20260613);
    let (catalog, object) = scenario_catalog(&scenario, KernelConfig::default())?;
    let plans = plan_explorers(&catalog, object, EXPLORERS, TRACES_PER_EXPLORER, 42)?;

    let server = NetServer::serve(
        ServerConfig::with_workers(4)
            .with_catalog(Arc::clone(&catalog))
            .with_listen_addr("127.0.0.1:0"),
    )?;
    println!(
        "serving `{}` ({} rows) on {}",
        scenario.name,
        scenario.rows(),
        server.local_addr()
    );

    // The identical driver the in-process concurrency example uses — the
    // `ExplorationClient` trait hides the transport entirely.
    let client = TcpClient::new(server.local_addr().to_string());
    let reports = drive_plans_over(&client, object, &plans)?;
    println!("ran {EXPLORERS} explorers x {TRACES_PER_EXPLORER} gestures over TCP\n");

    let networked: Vec<u64> = reports.iter().map(SessionReport::result_digest).collect();
    let sequential = run_sequential(&catalog, object, &plans)?;
    let mut identical = true;
    for (index, (n, s)) in networked.iter().zip(&sequential).enumerate() {
        let matched = n == s;
        identical &= matched;
        println!(
            "  explorer {index}: digest {n:016x} — {}",
            if matched { "identical" } else { "DIVERGED" }
        );
    }
    if !identical {
        return Err(DbTouchError::Internal(
            "networked replay diverged from the in-process baseline".into(),
        ));
    }
    println!("\nall {EXPLORERS} networked sessions digest identically to the in-process run.");

    let snapshot = server.metrics_snapshot();
    println!("\nnet.* scrape:");
    for key in ["net.accepted", "net.shed", "net.bytes_in", "net.bytes_out"] {
        println!("  {key:<15} {}", snapshot.scalar(key).unwrap_or(0));
    }
    if let Some(frames) = snapshot.histogram("net.frame_nanos") {
        println!(
            "  frame service time: p50 {:.1} us, p99 {:.1} us over {} frames",
            frames.quantile(50.0) as f64 / 1e3,
            frames.quantile(99.0) as f64 / 1e3,
            frames.count()
        );
    }
    server.shutdown();

    // Overload on purpose: a one-session admission cap makes the server shed
    // the second explorer with an explicit backoff instead of queueing it.
    let shed_server = NetServer::serve(
        ServerConfig::with_workers(1)
            .with_catalog(Arc::clone(&catalog))
            .with_listen_addr("127.0.0.1:0")
            .with_shed(ShedConfig {
                max_live_sessions: Some(1),
                ..ShedConfig::default()
            }),
    )?;
    let shed_client = TcpClient::new(shed_server.local_addr().to_string());
    let first = shed_client.open_session()?;
    match shed_client.open_session() {
        Err(DbTouchError::Overloaded {
            retry_after_ms,
            reason,
        }) => println!("\nshed as designed: retry after {retry_after_ms} ms ({reason})"),
        Ok(_) => println!("\nunexpected: second session admitted"),
        Err(other) => return Err(other),
    }
    first.close()?;
    shed_server.shutdown();
    Ok(())
}
