//! Sky survey: the astronomer scenario from the paper's introduction.
//!
//! "An astronomer wants to browse parts of the sky to look for interesting
//! effects." Here the sky is a brightness column with one unusually bright
//! region hidden inside it. The example explores it the dbTouch way — coarse
//! slide, read the interactive summaries, zoom into the suspicious region,
//! repeat — and reports how much data was touched compared to the size of the
//! sky, and how close the drill-down got to the true position of the event.
//!
//! Run with:
//! ```text
//! cargo run --release --example sky_survey
//! ```

use dbtouch::core::kernel::TouchAction;
use dbtouch::core::operators::aggregate::AggregateKind;
use dbtouch::gesture::synthesizer::SlideSegment;
use dbtouch::prelude::*;
use dbtouch::workload::scenarios::Scenario;

fn main() -> Result<()> {
    let scenario = Scenario::sky_survey(2_000_000, 20260613);
    println!("task: {}", scenario.task);
    println!(
        "the sky has {} samples; the transient is hidden at fraction {:.4} (the explorer does not know this)",
        scenario.rows(),
        scenario.target_fraction()
    );

    let mut kernel = Kernel::new(KernelConfig::default());
    let object = kernel.load_column_typed(scenario.signal_column(), SizeCm::new(2.0, 10.0))?;
    kernel.set_action(
        object,
        TouchAction::Summary {
            half_window: Some(8),
            kind: AggregateKind::Avg,
        },
    )?;

    let mut synthesizer = GestureSynthesizer::new(60.0);
    let mut lo = 0.0_f64;
    let mut hi = 1.0_f64;
    let mut rows_touched = 0;
    let mut best = 0.5;

    for round in 1..=6 {
        let view = kernel.view(object)?;
        let trace = synthesizer.slide_profile(
            &view,
            &[SlideSegment::movement(lo, hi, 2.0)],
            Timestamp::ZERO,
        );
        let outcome = kernel.run_trace(object, &trace)?;
        rows_touched += outcome.stats.rows_touched;

        // The "astronomer" looks for the brightest summary that popped up.
        best = outcome
            .results
            .results()
            .iter()
            .max_by(|a, b| {
                let av = a.value().and_then(|v| v.as_f64().ok()).unwrap_or(f64::MIN);
                let bv = b.value().and_then(|v| v.as_f64().ok()).unwrap_or(f64::MIN);
                av.total_cmp(&bv)
            })
            .map(|r| r.position_fraction)
            .unwrap_or(best);
        println!(
            "round {round}: explored [{lo:.3}, {hi:.3}], {} summaries appeared, brightest around fraction {best:.4}",
            outcome.stats.entries_returned
        );

        // Narrow in on the bright region and pinch to zoom for finer detail.
        let width = (hi - lo) / 4.0;
        lo = (best - width / 2.0).max(0.0);
        hi = (best + width / 2.0).min(1.0);
        let pinch = synthesizer.pinch(&view, 2.0, 0.4);
        kernel.run_trace(object, &pinch)?;
    }

    let truth = scenario.target_fraction();
    println!();
    println!(
        "drill-down finished: suspected transient at fraction {best:.4}, truth {truth:.4}, error {:.4}",
        (best - truth).abs()
    );
    println!(
        "rows touched: {} of {} ({:.3}% of the sky)",
        rows_touched,
        scenario.rows(),
        100.0 * rows_touched as f64 / scenario.rows() as f64
    );
    Ok(())
}
