//! # dbTouch — Analytics at your Fingertips (CIDR 2013), reproduced in Rust
//!
//! This facade crate re-exports the public API of the dbTouch reproduction:
//!
//! * [`types`] — shared value model, geometry (centimetres), row ids, configuration.
//! * [`obs`] — live telemetry: wait-free sharded counters, log-scale latency
//!   histograms and the bounded gesture-lifecycle event trace every layer
//!   reports into.
//! * [`storage`] — fixed-width dense columns/matrixes, layouts and incremental
//!   rotation, the sample hierarchy, region cache and prefetcher.
//! * [`gesture`] — touch events, views, gesture recognizers, kinematics and the
//!   gesture synthesizer used in place of a physical touch screen.
//! * [`core`] — the dbTouch kernel: touch→tuple-identifier mapping, per-touch
//!   operators (scan, running aggregates, interactive summaries, filters,
//!   non-blocking joins), sessions, adaptive policies and layout gestures.
//! * [`baseline`] — a traditional blocking column-store executor with a small
//!   SQL-like query language, used as the comparison system.
//! * [`workload`] — synthetic data generators, pattern injection and simulated
//!   explorer policies for the evaluation scenarios, including concurrent
//!   multi-explorer drivers.
//! * [`server`] — the concurrent exploration service: many simultaneous
//!   gesture sessions multiplexed over worker threads, sharing one immutable
//!   catalog ([`core::catalog::SharedCatalog`]).
//! * [`net`] — the network serving layer: the checksummed binary wire
//!   protocol over TCP, telemetry-driven admission control / load shedding,
//!   and the TCP implementation of the transport-agnostic
//!   [`server::ExplorationClient`] API.
//!
//! ## Quick start
//!
//! ```
//! use dbtouch::prelude::*;
//!
//! // 1. Load a column of data into the kernel.
//! let mut kernel = Kernel::new(KernelConfig::default());
//! let data: Vec<i64> = (0..100_000).collect();
//! let object_id = kernel
//!     .load_column("measurements", data, SizeCm::new(2.0, 10.0))
//!     .unwrap();
//!
//! // 2. Choose a query action for the object (a plain scan here).
//! kernel.set_action(object_id, TouchAction::Scan).unwrap();
//!
//! // 3. Synthesize a 2-second top-to-bottom slide and feed it to the kernel,
//! //    exactly as the touch OS would deliver touch events.
//! let view = kernel.view(object_id).unwrap();
//! let trace = GestureSynthesizer::new(60.0).slide_down(&view, 2.0);
//! let outcome = kernel.run_trace(object_id, &trace).unwrap();
//!
//! assert!(outcome.results.len() > 0);
//! ```
//!
//! See `examples/` for the full exploration scenarios and `crates/bench` for the
//! harnesses reproducing the paper's Figure 4(a), Figure 4(b) and the demo
//! "exploration contest".

pub use dbtouch_baseline as baseline;
pub use dbtouch_core as core;
pub use dbtouch_gesture as gesture;
pub use dbtouch_net as net;
pub use dbtouch_obs as obs;
pub use dbtouch_server as server;
pub use dbtouch_storage as storage;
pub use dbtouch_types as types;
pub use dbtouch_workload as workload;

/// Convenient single-import prelude used by the examples and tests.
pub mod prelude {
    pub use dbtouch_core::catalog::{ObjectData, ObjectState, SharedCatalog};
    pub use dbtouch_core::kernel::{Kernel, ObjectId, TouchAction};
    pub use dbtouch_core::result::{ResultStream, TouchResult};
    pub use dbtouch_core::session::{Session, SessionOutcome};
    pub use dbtouch_gesture::synthesizer::GestureSynthesizer;
    pub use dbtouch_gesture::touch::{TouchEvent, TouchPhase};
    pub use dbtouch_gesture::view::View;
    pub use dbtouch_net::{NetServer, TcpClient};
    pub use dbtouch_server::{
        ClientSession, ExplorationClient, ExplorationServer, ServerConfig, SessionReport,
        ShedConfig,
    };
    pub use dbtouch_storage::column::Column;
    pub use dbtouch_storage::table::Table;
    pub use dbtouch_types::{
        DataType, DbTouchError, KernelConfig, Orientation, PointCm, Result, RowId, RowRange,
        SizeCm, Timestamp, Value,
    };
}
