//! Property tests for the log-scale histogram: bucket-boundary correctness,
//! merge associativity, and the ≤2x quantile error bound against an exact
//! nearest-rank computation on the raw sample.

use dbtouch_obs::HistogramSnapshot;
use proptest::prelude::*;

/// Exact nearest-rank quantile computed from the full sample.
fn exact_quantile(values: &[u64], q: f64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((q / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

fn hist_of(values: &[u64]) -> HistogramSnapshot {
    let mut h = HistogramSnapshot::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every value lands in exactly one bucket whose bounds contain it.
    #[test]
    fn value_lands_inside_its_bucket(v in 0u64..u64::MAX) {
        let h = hist_of(&[v]);
        let buckets = h.nonzero_buckets();
        prop_assert_eq!(buckets.len(), 1);
        let (lo, hi, n) = buckets[0];
        prop_assert_eq!(n, 1);
        prop_assert!(lo <= v && v <= hi, "{} outside [{}, {}]", v, lo, hi);
        // Log2 bucketing: upper bound is less than twice the lower (bucket 0
        // aside), which is what gives quantiles their 2x error bound.
        if lo > 0 {
            prop_assert!(hi - lo < lo); // hi < 2*lo, written overflow-safe
        }
    }

    /// Merging is associative and commutative and matches bulk recording.
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(0u64..1u64 << 40, 0..200),
        b in prop::collection::vec(0u64..1u64 << 40, 0..200),
        c in prop::collection::vec(0u64..1u64 << 40, 0..200),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));

        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);

        // a ⊕ (b ⊕ c)
        let mut right_inner = hb.clone();
        right_inner.merge(&hc);
        let mut right = ha.clone();
        right.merge(&right_inner);

        prop_assert_eq!(&left, &right);

        // b ⊕ a  ==  a ⊕ b
        let mut ba = hb.clone();
        ba.merge(&ha);
        let mut ab = ha.clone();
        ab.merge(&hb);
        prop_assert_eq!(&ab, &ba);

        // All equal recording everything into one histogram.
        let mut all: Vec<u64> = a.clone();
        all.extend(&b);
        all.extend(&c);
        prop_assert_eq!(&left, &hist_of(&all));
    }

    /// The histogram quantile never undershoots the exact nearest-rank value
    /// and never reaches twice it: exact <= est < 2 * max(exact, 1).
    #[test]
    fn quantile_error_is_bounded(
        values in prop::collection::vec(0u64..1u64 << 40, 1..400),
        q in 0.0f64..100.0,
    ) {
        let h = hist_of(&values);
        let exact = exact_quantile(&values, q);
        let est = h.quantile(q);
        prop_assert!(est >= exact, "q{}: est {} < exact {}", q, est, exact);
        prop_assert!(
            est < exact.max(1) * 2,
            "q{}: est {} >= 2x exact {}", q, est, exact
        );
    }

    /// Count/sum/min/max survive any merge order.
    #[test]
    fn summary_stats_match_sample(
        values in prop::collection::vec(0u64..1u64 << 40, 1..300),
    ) {
        let h = hist_of(&values);
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
        prop_assert_eq!(h.min(), values.iter().min().copied());
        prop_assert_eq!(h.max(), values.iter().max().copied().unwrap());
        let mean = h.mean();
        let expect = values.iter().sum::<u64>() as f64 / values.len() as f64;
        prop_assert!((mean - expect).abs() < 1e-6 * expect.max(1.0));
    }
}
