//! Wait-free sharded counters and gauges.
//!
//! The touch hot path runs in the low microseconds, so metric updates must be
//! a single uncontended relaxed atomic op. [`Counter`] stripes its state
//! across cache-line-padded `AtomicU64`s indexed by the caller's thread stripe
//! (see [`crate::stripe`]); readers sum the stripes on scrape, trading a tiny
//! read cost for a write path with no shared cache line between workers.

use crate::stripe::{stripe, STRIPES};
use std::sync::atomic::{AtomicU64, Ordering};

/// One `AtomicU64` padded out to a cache line so neighbouring stripes never
/// false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// A monotonically increasing counter, striped per writer thread.
///
/// `add` is wait-free (one relaxed `fetch_add` on a thread-private stripe);
/// `get` sums the stripes and is only approximately ordered with respect to
/// concurrent writers — exactly what a scrape wants.
#[derive(Default)]
pub struct Counter {
    stripes: [PaddedU64; STRIPES],
}

impl Counter {
    /// A fresh zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to the calling thread's stripe.
    #[inline]
    pub fn add(&self, n: u64) {
        self.stripes[stripe()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Sum of all stripes at (roughly) this instant.
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter")
            .field("value", &self.get())
            .finish()
    }
}

/// A last-write-wins gauge for point-in-time values (queue depths, live
/// session counts). Single atomic cell: gauges are written from few places and
/// read on scrape, so striping would only blur the value.
#[derive(Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A fresh zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gauge").field("value", &self.get()).finish()
    }
}

/// A high-water-mark gauge: `observe` ratchets the stored maximum upward via
/// `fetch_max`, so load skew is visible after the fact even though
/// point-in-time loads have long since drained.
#[derive(Default)]
pub struct PeakGauge {
    peak: AtomicU64,
}

impl PeakGauge {
    /// A fresh zeroed peak gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold `v` into the running maximum.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.peak.fetch_max(v, Ordering::Relaxed);
    }

    /// Highest value observed so far.
    pub fn get(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for PeakGauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeakGauge")
            .field("peak", &self.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_sums_across_threads() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn counter_add_amounts() {
        let c = Counter::new();
        c.add(5);
        c.add(7);
        assert_eq!(c.get(), 12);
    }

    #[test]
    fn gauge_last_write_wins() {
        let g = Gauge::new();
        g.set(9);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn peak_gauge_ratchets() {
        let p = PeakGauge::new();
        p.observe(4);
        p.observe(9);
        p.observe(2);
        assert_eq!(p.get(), 9);
    }
}
