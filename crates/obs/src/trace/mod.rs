//! Hierarchical causal tracing: spans, span trees, tail sampling, export.
//!
//! The event ring ([`crate::events`]) answers "what happened recently";
//! this module answers "where did *this* touch spend its time". Every
//! gesture trace executed with tracing enabled grows a bounded tree of
//! [`SpanRecord`]s — root per touch, children for frame decode, admission,
//! queue wait, worker service, claimed segment batches, and late remote
//! refinements — and the [`SpanStore`] retains completed trees whose root
//! latency crosses a tail threshold (plus a 1-in-N head-sampled baseline)
//! in a bounded ring. [`export`] renders retained trees as Chrome
//! trace-event JSON loadable in Perfetto.
//!
//! Like the rest of the crate, tracing observes execution and never steers
//! it: session digests are bit-identical with tracing on or off.

pub mod export;
pub mod span;

pub use export::{chrome_trace_json, chrome_trace_text};
pub use span::{SpanConfig, SpanRecord, SpanStore, SpanTree, WireTraceContext, CLIENT_ID_BIT};
