//! Chrome trace-event export of retained span trees.
//!
//! The output is the Trace Event Format's JSON object form
//! (`{"traceEvents": [...]}`) using complete (`"ph": "X"`) events with
//! microsecond timestamps, which both `chrome://tracing` and Perfetto load
//! directly: sessions render as processes, traces as threads, and the span
//! hierarchy nests by interval containment.

use super::span::SpanTree;
use dbtouch_types::json::{object, Json};

/// Microseconds (as JSON number) from hub-clock nanoseconds.
fn micros(nanos: u64) -> Json {
    Json::Number(nanos as f64 / 1_000.0)
}

/// One span tree's events, appended to `events`.
fn push_tree(events: &mut Vec<Json>, tree: &SpanTree) {
    for span in &tree.spans {
        let duration = if span.is_open() {
            0
        } else {
            span.duration_nanos
        };
        events.push(object([
            ("name", Json::String(span.name.to_string())),
            ("cat", Json::String("dbtouch".into())),
            ("ph", Json::String("X".into())),
            ("ts", micros(span.start_nanos)),
            ("dur", micros(duration)),
            ("pid", Json::Number(tree.session as f64)),
            ("tid", Json::Number(tree.trace as f64)),
            (
                "args",
                object([
                    ("span", Json::Number(span.id as f64)),
                    ("parent", Json::Number(span.parent as f64)),
                    ("detail", Json::Number(span.detail as f64)),
                    ("late", Json::Bool(span.late)),
                    ("tail_sampled", Json::Bool(tree.tail_sampled)),
                ]),
            ),
        ]));
    }
}

/// Render retained trees as a Chrome trace-event JSON document.
pub fn chrome_trace_json(trees: &[SpanTree]) -> Json {
    let mut events = Vec::new();
    for tree in trees {
        push_tree(&mut events, tree);
    }
    object([
        ("traceEvents", Json::Array(events)),
        ("displayTimeUnit", Json::String("ms".into())),
    ])
}

/// [`chrome_trace_json`] rendered to text — the payload of the net
/// protocol's `DumpTraces` response, ready to save and open in Perfetto.
pub fn chrome_trace_text(trees: &[SpanTree]) -> String {
    chrome_trace_json(trees).pretty()
}

#[cfg(test)]
mod tests {
    use super::super::span::{SpanConfig, SpanStore};
    use super::*;
    use dbtouch_types::json::parse;

    #[test]
    fn export_parses_and_carries_the_hierarchy() {
        let store = SpanStore::new(SpanConfig {
            tail_threshold_nanos: 0,
            ..SpanConfig::default()
        });
        let root = store.ensure_root(5, 42, 0, 1_000);
        store.record_span(5, 42, 0, "queue_wait", 1_000, 250, 0);
        let service = store.open_span(5, 42, 0, "service", 1_250, 0);
        store.record_span(5, 42, service, "segments", 1_300, 100, 8192);
        store.close_span(5, 42, service, 2_000);
        store.trace_finish(5, 42, 2_000);

        let text = chrome_trace_text(&store.retained());
        let doc = parse(&text).expect("export must be valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        assert_eq!(events.len(), 4);
        for e in events {
            assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
            assert_eq!(e.get("pid").and_then(Json::as_u64), Some(5));
            assert_eq!(e.get("tid").and_then(Json::as_u64), Some(42));
        }
        // The segments event nests inside the service interval.
        let by_name = |name: &str| {
            events
                .iter()
                .find(|e| e.get("name").and_then(Json::as_str) == Some(name))
                .unwrap()
        };
        let parent_of = |e: &Json| {
            e.get("args")
                .and_then(|a| a.get("parent"))
                .and_then(Json::as_u64)
                .unwrap()
        };
        assert_eq!(parent_of(by_name("segments")), service);
        assert_eq!(parent_of(by_name("service")), root);
        assert_eq!(parent_of(by_name("touch")), 0);
    }

    #[test]
    fn empty_export_is_still_a_document() {
        let doc = chrome_trace_json(&[]);
        assert_eq!(
            doc.get("traceEvents")
                .and_then(Json::as_array)
                .map(|a| a.len()),
            Some(0)
        );
        assert!(parse(&doc.pretty()).is_ok());
    }
}
