//! Span records, per-trace buffers, and the tail-sampling span store.

use dbtouch_types::json::{object, Json};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Ids minted by a *client* (trace ids and root span ids stamped into wire
/// frames) carry this bit so they can never collide with server-minted ids,
/// which count up from 1.
pub const CLIENT_ID_BIT: u64 = 1 << 63;

/// The trace identity a client stamps into a `RunTrace` frame: the server
/// adopts both ids, so the tree it retains carries the ids the client chose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireTraceContext {
    /// Client-minted trace id ([`CLIENT_ID_BIT`] set).
    pub trace: u64,
    /// Client-minted id of the trace's root span.
    pub root_span: u64,
}

/// One span: a named interval with a parent, on the hub's monotonic clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id, unique within its store (client root ids carry
    /// [`CLIENT_ID_BIT`]).
    pub id: u64,
    /// Parent span id; 0 marks the trace's root.
    pub parent: u64,
    /// What the interval covers (`"touch"`, `"decode"`, `"queue_wait"`,
    /// `"service"`, `"segments"`, `"refinement"`, …).
    pub name: &'static str,
    /// Start, nanoseconds on the telemetry hub's monotonic clock.
    pub start_nanos: u64,
    /// Closed duration; `u64::MAX` while the span is open.
    pub duration_nanos: u64,
    /// Name-specific payload (bytes decoded, rows scanned, ticket, …).
    pub detail: u64,
    /// Landed after its trace finished (remote refinements): exempt from
    /// the parent-interval containment invariant.
    pub late: bool,
}

impl SpanRecord {
    /// Whether the span has not been closed yet.
    pub fn is_open(&self) -> bool {
        self.duration_nanos == u64::MAX
    }

    /// End of a closed span (start for an open one).
    pub fn end_nanos(&self) -> u64 {
        if self.is_open() {
            self.start_nanos
        } else {
            self.start_nanos.saturating_add(self.duration_nanos)
        }
    }

    /// Compact JSON exposition of one span.
    pub fn to_json(&self) -> Json {
        let num = |n: u64| Json::Number(n as f64);
        object([
            ("id", num(self.id)),
            ("parent", num(self.parent)),
            ("name", Json::String(self.name.to_string())),
            ("start_nanos", num(self.start_nanos)),
            ("duration_nanos", num(self.duration_nanos)),
            ("detail", num(self.detail)),
            ("late", Json::Bool(self.late)),
        ])
    }
}

/// One trace's completed span tree, as retained by the sampler.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanTree {
    /// Owning session.
    pub session: u64,
    /// Trace id (client-minted when the touch arrived over the wire).
    pub trace: u64,
    /// The spans, root first, in the order they were recorded.
    pub spans: Vec<SpanRecord>,
    /// Retained because the root crossed the tail latency threshold (as
    /// opposed to the 1-in-N head-sampled baseline).
    pub tail_sampled: bool,
    /// Spans dropped because the per-trace buffer hit its cap.
    pub truncated: u64,
}

impl SpanTree {
    /// The trace's root span.
    pub fn root(&self) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.parent == 0)
    }

    /// Root duration — the touch's end-to-end latency as the server saw it.
    pub fn root_duration_nanos(&self) -> u64 {
        self.root().map_or(0, |r| r.duration_nanos)
    }

    /// JSON exposition of the whole tree.
    pub fn to_json(&self) -> Json {
        object([
            ("session", Json::Number(self.session as f64)),
            ("trace", Json::Number(self.trace as f64)),
            ("tail_sampled", Json::Bool(self.tail_sampled)),
            ("truncated", Json::Number(self.truncated as f64)),
            (
                "spans",
                Json::Array(self.spans.iter().map(SpanRecord::to_json).collect()),
            ),
        ])
    }
}

/// Span capture knobs, resolved from `KernelConfig` by the catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanConfig {
    /// Master switch; a disabled store turns every call into a
    /// branch-and-return.
    pub enabled: bool,
    /// Retain the full tree of any trace whose root latency reaches this.
    pub tail_threshold_nanos: u64,
    /// Additionally retain every Nth finished trace as a baseline
    /// (0 disables head sampling).
    pub head_sample_every: u64,
    /// Completed trees kept; the oldest is evicted beyond this.
    pub retained_capacity: usize,
    /// Per-trace span cap; further spans are counted as truncated.
    pub max_spans: usize,
}

impl Default for SpanConfig {
    fn default() -> Self {
        SpanConfig {
            enabled: true,
            tail_threshold_nanos: 10_000_000, // 10 ms
            head_sample_every: 64,
            retained_capacity: 64,
            max_spans: 512,
        }
    }
}

impl SpanConfig {
    /// A configuration that records nothing.
    pub fn disabled() -> Self {
        SpanConfig {
            enabled: false,
            ..SpanConfig::default()
        }
    }
}

/// One in-flight trace's span buffer.
struct ActiveTrace {
    spans: Vec<SpanRecord>,
    truncated: u64,
}

/// The span store: active per-trace buffers plus the bounded ring of
/// retained (tail- or head-sampled) trees.
///
/// All methods are cheap no-ops when the store is disabled, and total when
/// a trace is unknown (a span recorded against a missing buffer is
/// silently dropped — observability must never fail a request).
pub struct SpanStore {
    config: SpanConfig,
    next_span: AtomicU64,
    active: Mutex<HashMap<(u64, u64), ActiveTrace>>,
    retained: Mutex<VecDeque<SpanTree>>,
    finished: AtomicU64,
    tail_sampled: AtomicU64,
    head_sampled: AtomicU64,
    truncated: AtomicU64,
}

impl SpanStore {
    /// A store with the given knobs.
    pub fn new(config: SpanConfig) -> SpanStore {
        SpanStore {
            config,
            next_span: AtomicU64::new(1),
            active: Mutex::new(HashMap::new()),
            retained: Mutex::new(VecDeque::new()),
            finished: AtomicU64::new(0),
            tail_sampled: AtomicU64::new(0),
            head_sampled: AtomicU64::new(0),
            truncated: AtomicU64::new(0),
        }
    }

    /// Whether this store records anything.
    pub fn is_enabled(&self) -> bool {
        self.config.enabled
    }

    /// The active configuration.
    pub fn config(&self) -> &SpanConfig {
        &self.config
    }

    /// Mint a server-side span id.
    fn mint(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    /// Open `(session, trace)`'s root span if the trace has no buffer yet;
    /// returns the root span id either way (0 when disabled). `root_hint`
    /// is the client-minted root id from the wire (0 to mint one).
    pub fn ensure_root(&self, session: u64, trace: u64, root_hint: u64, start_nanos: u64) -> u64 {
        if !self.config.enabled {
            return 0;
        }
        let mut active = self.active.lock().unwrap_or_else(|e| e.into_inner());
        let entry = active.entry((session, trace)).or_insert_with(|| {
            let id = if root_hint != 0 {
                root_hint
            } else {
                self.mint()
            };
            ActiveTrace {
                spans: vec![SpanRecord {
                    id,
                    parent: 0,
                    name: "touch",
                    start_nanos,
                    duration_nanos: u64::MAX,
                    detail: 0,
                    late: false,
                }],
                truncated: 0,
            }
        });
        entry.spans.first().map_or(0, |root| root.id)
    }

    /// Append a span to an active buffer, respecting the per-trace cap.
    fn append(&self, entry: &mut ActiveTrace, mut span: SpanRecord) -> u64 {
        if entry.spans.len() >= self.config.max_spans {
            entry.truncated += 1;
            self.truncated.fetch_add(1, Ordering::Relaxed);
            return 0;
        }
        if span.parent == 0 {
            span.parent = entry.spans.first().map_or(0, |root| root.id);
        }
        let id = span.id;
        entry.spans.push(span);
        id
    }

    /// Record a closed span under `parent` (0 = under the root). Returns
    /// the span's id, or 0 when nothing was recorded.
    #[allow(clippy::too_many_arguments)]
    pub fn record_span(
        &self,
        session: u64,
        trace: u64,
        parent: u64,
        name: &'static str,
        start_nanos: u64,
        duration_nanos: u64,
        detail: u64,
    ) -> u64 {
        if !self.config.enabled {
            return 0;
        }
        let mut active = self.active.lock().unwrap_or_else(|e| e.into_inner());
        let Some(entry) = active.get_mut(&(session, trace)) else {
            return 0;
        };
        let id = self.mint();
        self.append(
            entry,
            SpanRecord {
                id,
                parent,
                name,
                start_nanos,
                duration_nanos,
                detail,
                late: false,
            },
        )
    }

    /// Open a span under `parent` (0 = under the root); close it with
    /// [`SpanStore::close_span`]. Returns 0 when nothing was recorded.
    pub fn open_span(
        &self,
        session: u64,
        trace: u64,
        parent: u64,
        name: &'static str,
        start_nanos: u64,
        detail: u64,
    ) -> u64 {
        if !self.config.enabled {
            return 0;
        }
        let mut active = self.active.lock().unwrap_or_else(|e| e.into_inner());
        let Some(entry) = active.get_mut(&(session, trace)) else {
            return 0;
        };
        let id = self.mint();
        self.append(
            entry,
            SpanRecord {
                id,
                parent,
                name,
                start_nanos,
                duration_nanos: u64::MAX,
                detail,
                late: false,
            },
        )
    }

    /// Close a span opened with [`SpanStore::open_span`].
    pub fn close_span(&self, session: u64, trace: u64, span: u64, end_nanos: u64) {
        if !self.config.enabled || span == 0 {
            return;
        }
        let mut active = self.active.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(entry) = active.get_mut(&(session, trace)) {
            if let Some(s) = entry.spans.iter_mut().find(|s| s.id == span) {
                s.duration_nanos = end_nanos.saturating_sub(s.start_nanos);
            }
        }
    }

    /// Record a span that may land *after* its trace finished (remote
    /// refinements): appended to the active buffer when the trace is still
    /// running, else linked into the retained tree when the trace was
    /// sampled. Marked `late`, parented to the root either way.
    pub fn record_late_span(
        &self,
        session: u64,
        trace: u64,
        name: &'static str,
        start_nanos: u64,
        duration_nanos: u64,
        detail: u64,
    ) {
        if !self.config.enabled {
            return;
        }
        let span = |id: u64, parent: u64| SpanRecord {
            id,
            parent,
            name,
            start_nanos,
            duration_nanos,
            detail,
            late: true,
        };
        {
            let mut active = self.active.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(entry) = active.get_mut(&(session, trace)) {
                let id = self.mint();
                self.append(entry, span(id, 0));
                return;
            }
        }
        let mut retained = self.retained.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(tree) = retained
            .iter_mut()
            .find(|t| t.session == session && t.trace == trace)
        {
            if tree.spans.len() >= self.config.max_spans {
                tree.truncated += 1;
                self.truncated.fetch_add(1, Ordering::Relaxed);
                return;
            }
            let root = tree.root().map_or(0, |r| r.id);
            tree.spans.push(span(self.mint(), root));
        }
    }

    /// Finish a trace: close its root (and clamp any span left open) at
    /// `end_nanos`, then tail/head-sample the tree into the retained ring.
    /// Returns whether the tree was retained.
    pub fn trace_finish(&self, session: u64, trace: u64, end_nanos: u64) -> bool {
        if !self.config.enabled {
            return false;
        }
        let entry = {
            let mut active = self.active.lock().unwrap_or_else(|e| e.into_inner());
            active.remove(&(session, trace))
        };
        let Some(mut entry) = entry else {
            return false;
        };
        for span in &mut entry.spans {
            if span.is_open() {
                span.duration_nanos = end_nanos.saturating_sub(span.start_nanos);
            }
        }
        let tick = self.finished.fetch_add(1, Ordering::Relaxed);
        let root_duration = entry.spans.first().map_or(0, |root| root.duration_nanos);
        let tail = root_duration >= self.config.tail_threshold_nanos;
        let head =
            self.config.head_sample_every > 0 && tick.is_multiple_of(self.config.head_sample_every);
        if !(tail || head) || self.config.retained_capacity == 0 {
            return false;
        }
        if tail {
            self.tail_sampled.fetch_add(1, Ordering::Relaxed);
        } else {
            self.head_sampled.fetch_add(1, Ordering::Relaxed);
        }
        let tree = SpanTree {
            session,
            trace,
            spans: entry.spans,
            tail_sampled: tail,
            truncated: entry.truncated,
        };
        let mut retained = self.retained.lock().unwrap_or_else(|e| e.into_inner());
        if retained.len() == self.config.retained_capacity {
            retained.pop_front();
        }
        retained.push_back(tree);
        true
    }

    /// Drop a trace's buffer without sampling (shed or failed requests).
    pub fn trace_abort(&self, session: u64, trace: u64) {
        if !self.config.enabled {
            return;
        }
        let mut active = self.active.lock().unwrap_or_else(|e| e.into_inner());
        active.remove(&(session, trace));
    }

    /// The retained trees, oldest first.
    pub fn retained(&self) -> Vec<SpanTree> {
        let retained = self.retained.lock().unwrap_or_else(|e| e.into_inner());
        retained.iter().cloned().collect()
    }

    /// Traces finished (sampled or not).
    pub fn traces_finished(&self) -> u64 {
        self.finished.load(Ordering::Relaxed)
    }

    /// Trees retained because their root crossed the tail threshold.
    pub fn tail_sampled(&self) -> u64 {
        self.tail_sampled.load(Ordering::Relaxed)
    }

    /// Trees retained by the 1-in-N head-sampled baseline only.
    pub fn head_sampled(&self) -> u64 {
        self.head_sampled.load(Ordering::Relaxed)
    }

    /// Spans dropped by the per-trace cap, across all traces.
    pub fn spans_truncated(&self) -> u64 {
        self.truncated.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for SpanStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanStore")
            .field("enabled", &self.config.enabled)
            .field("finished", &self.traces_finished())
            .field("tail_sampled", &self.tail_sampled())
            .field("head_sampled", &self.head_sampled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(config: SpanConfig) -> SpanStore {
        SpanStore::new(config)
    }

    #[test]
    fn tree_grows_under_the_root_and_finishes_closed() {
        let s = store(SpanConfig {
            tail_threshold_nanos: 0, // everything tail-samples
            ..SpanConfig::default()
        });
        let root = s.ensure_root(7, 99, 0, 1_000);
        assert_ne!(root, 0);
        // Idempotent: a second ensure returns the same root.
        assert_eq!(s.ensure_root(7, 99, 0, 5_000), root);
        let wait = s.record_span(7, 99, 0, "queue_wait", 1_000, 400, 0);
        let service = s.open_span(7, 99, 0, "service", 1_400, 3);
        let seg = s.record_span(7, 99, service, "segments", 1_500, 100, 4096);
        s.close_span(7, 99, service, 2_400);
        assert!(s.trace_finish(7, 99, 2_500));
        let trees = s.retained();
        assert_eq!(trees.len(), 1);
        let tree = &trees[0];
        assert!(tree.tail_sampled);
        assert_eq!(tree.spans.len(), 4);
        let by_id = |id: u64| tree.spans.iter().find(|s| s.id == id).unwrap();
        assert_eq!(tree.root().unwrap().id, root);
        assert_eq!(tree.root_duration_nanos(), 1_500);
        assert_eq!(by_id(wait).parent, root);
        assert_eq!(by_id(service).duration_nanos, 1_000);
        assert_eq!(by_id(seg).parent, service);
        assert!(tree.spans.iter().all(|s| !s.is_open()));
    }

    #[test]
    fn wire_root_hint_is_adopted() {
        let s = store(SpanConfig {
            tail_threshold_nanos: 0,
            ..SpanConfig::default()
        });
        let client_root = CLIENT_ID_BIT | 17;
        let client_trace = CLIENT_ID_BIT | 16;
        assert_eq!(s.ensure_root(1, client_trace, client_root, 0), client_root);
        s.trace_finish(1, client_trace, 500);
        let trees = s.retained();
        assert_eq!(trees[0].trace, client_trace);
        assert_eq!(trees[0].root().unwrap().id, client_root);
    }

    #[test]
    fn tail_and_head_sampling_gate_retention() {
        let s = store(SpanConfig {
            tail_threshold_nanos: 1_000_000,
            head_sample_every: 4,
            ..SpanConfig::default()
        });
        for trace in 0..8 {
            s.ensure_root(1, trace, 0, 0);
            // Trace 5 is slow: crosses the tail threshold.
            let end = if trace == 5 { 2_000_000 } else { 10 };
            s.trace_finish(1, trace, end);
        }
        // Head keeps traces 0 and 4; tail keeps trace 5.
        let kept: Vec<(u64, bool)> = s
            .retained()
            .iter()
            .map(|t| (t.trace, t.tail_sampled))
            .collect();
        assert_eq!(kept, vec![(0, false), (4, false), (5, true)]);
        assert_eq!(s.traces_finished(), 8);
        assert_eq!(s.tail_sampled(), 1);
        assert_eq!(s.head_sampled(), 2);
    }

    #[test]
    fn retained_ring_is_bounded_and_spans_are_capped() {
        let s = store(SpanConfig {
            tail_threshold_nanos: 0,
            head_sample_every: 0,
            retained_capacity: 2,
            max_spans: 3,
            ..SpanConfig::default()
        });
        for trace in 0..4 {
            s.ensure_root(1, trace, 0, 0);
            for i in 0..5 {
                s.record_span(1, trace, 0, "segments", i, 1, i);
            }
            s.trace_finish(1, trace, 100);
        }
        let trees = s.retained();
        assert_eq!(trees.len(), 2);
        assert_eq!(trees[0].trace, 2);
        assert_eq!(trees[1].trace, 3);
        assert!(trees.iter().all(|t| t.spans.len() == 3 && t.truncated == 3));
        assert_eq!(s.spans_truncated(), 12);
    }

    #[test]
    fn late_spans_land_in_active_or_retained_trees() {
        let s = store(SpanConfig {
            tail_threshold_nanos: 0,
            ..SpanConfig::default()
        });
        s.ensure_root(3, 40, 0, 0);
        s.record_late_span(3, 40, "refinement", 10, 5, 1);
        s.trace_finish(3, 40, 100);
        // The trace is retained: a second late span appends to the tree.
        s.record_late_span(3, 40, "refinement", 120, 30, 2);
        // Unknown traces are silently dropped.
        s.record_late_span(3, 999, "refinement", 0, 1, 3);
        let trees = s.retained();
        assert_eq!(trees.len(), 1);
        let late: Vec<&SpanRecord> = trees[0].spans.iter().filter(|s| s.late).collect();
        assert_eq!(late.len(), 2);
        assert!(late.iter().all(|s| s.parent == trees[0].root().unwrap().id));
        // The second landed after the root closed — allowed, because late.
        assert!(late[1].end_nanos() > trees[0].root().unwrap().end_nanos());
    }

    #[test]
    fn disabled_store_records_nothing() {
        let s = store(SpanConfig::disabled());
        assert_eq!(s.ensure_root(1, 1, 0, 0), 0);
        assert_eq!(s.record_span(1, 1, 0, "x", 0, 1, 0), 0);
        assert_eq!(s.open_span(1, 1, 0, "x", 0, 0), 0);
        s.record_late_span(1, 1, "x", 0, 1, 0);
        assert!(!s.trace_finish(1, 1, 10));
        assert!(s.retained().is_empty());
        assert_eq!(s.traces_finished(), 0);
    }

    #[test]
    fn abort_drops_the_buffer() {
        let s = store(SpanConfig {
            tail_threshold_nanos: 0,
            ..SpanConfig::default()
        });
        s.ensure_root(1, 7, 0, 0);
        s.trace_abort(1, 7);
        assert!(!s.trace_finish(1, 7, 100));
        assert!(s.retained().is_empty());
    }
}
