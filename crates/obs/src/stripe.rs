//! Per-thread stripe selection for sharded atomics.
//!
//! Each thread is lazily assigned a small stripe index the first time it
//! touches any sharded metric; all of its subsequent writes go to that stripe.
//! Assignment is round-robin over [`STRIPES`], so up to that many writer
//! threads never share a cache line, and beyond it collisions stay evenly
//! spread. The index is process-global (one per thread, shared by every
//! counter) — stripe selection costs a thread-local read on the hot path.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of stripes per sharded metric. Covers the server's worker pool plus
/// the remote I/O threads without collisions; a power of two keeps the modulo
/// cheap.
pub const STRIPES: usize = 16;

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
}

/// The calling thread's stripe index, in `0..STRIPES`.
#[inline]
pub fn stripe() -> usize {
    STRIPE.with(|s| *s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_is_stable_per_thread() {
        let a = stripe();
        let b = stripe();
        assert_eq!(a, b);
        assert!(a < STRIPES);
    }

    #[test]
    fn threads_get_spread_stripes() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| (stripe(), stripe())))
            .collect();
        for h in handles {
            let (a, b) = h.join().unwrap();
            assert_eq!(a, b);
            assert!(a < STRIPES);
        }
    }
}
