//! Fixed-memory log-scale latency histograms.
//!
//! A touch latency is a `u64` nanosecond count; bucketing by the position of
//! its highest set bit gives 65 buckets covering the full `u64` range in a
//! few hundred bytes, with a hard quantile error bound: a value `v` lands in
//! the bucket `[2^(i-1), 2^i - 1]`, and quantiles report that bucket's upper
//! bound clamped to the tracked maximum, so the reported quantile is always in
//! `[exact, 2 * exact)` — the "~2x error" contract from the issue. That bound
//! is what lets these replace the unbounded full-sample `Vec<u64>`s in session
//! reports without losing the ability to check the paper's Section 4
//! interactivity ceiling.
//!
//! Two flavours share the bucketing:
//! * [`LogHistogram`] — atomic, for concurrent recording (server-wide touch
//!   latency). Wait-free `record`, consistent-enough `snapshot` on scrape.
//! * [`HistogramSnapshot`] — plain data, for single-owner accumulation
//!   (per-session latency inside a worker) and for merging/reporting.

use dbtouch_types::json::{object, Json};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: bucket 0 holds exact zeros, bucket `i >= 1` holds
/// values whose highest set bit is `i - 1`, i.e. `[2^(i-1), 2^i - 1]`.
pub const BUCKETS: usize = 65;

/// Bucket index for a value.
#[inline]
pub(crate) fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket (`u64::MAX` for the top bucket).
#[inline]
pub(crate) fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A concurrent log2-bucket histogram. All updates are single relaxed atomic
/// ops; `snapshot` reads the buckets without stopping writers (the snapshot is
/// internally consistent enough for monitoring: counts may trail `sum` by the
/// handful of records in flight).
pub struct LogHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// A fresh empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value. Wait-free: five relaxed atomic RMW ops, no CAS loop.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Copy the current state into a plain [`HistogramSnapshot`].
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.snapshot().fmt(f)
    }
}

/// A plain-data log2-bucket histogram: the single-owner / post-scrape twin of
/// [`LogHistogram`]. Cheap to clone (a few hundred bytes, fixed), mergeable,
/// and queryable for nearest-rank quantiles with the ≤2x error bound.
#[derive(Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    /// `u64::MAX` sentinel when empty.
    min: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// A fresh empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value. (`sum` wraps at `u64::MAX` like the atomic flavour's
    /// `fetch_add`; unreachable for realistic nanosecond totals.)
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one. Associative and commutative, so
    /// per-session histograms can merge into a run-wide one in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (wrapping).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile estimate for `q` in `[0, 100]`.
    ///
    /// Returns the upper bound of the bucket holding the rank-th value,
    /// clamped to the observed maximum — so the estimate `e` for an exact
    /// nearest-rank quantile `x` satisfies `x <= e < 2 * max(x, 1)`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// The raw per-bucket counts, indexed by [`bucket_of`]'s scheme (bucket 0
    /// holds exact zeros, bucket `i >= 1` holds `[2^(i-1), 2^i - 1]`). The
    /// binary wire codec reads these directly so a histogram round-trips
    /// bit-for-bit; human-facing exposition should prefer
    /// [`nonzero_buckets`](Self::nonzero_buckets).
    pub fn bucket_counts(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Reassemble a histogram from its raw parts — the inverse of reading
    /// [`bucket_counts`](Self::bucket_counts) / [`count`](Self::count) /
    /// [`sum`](Self::sum) and the raw min/max. `min` uses the `u64::MAX`
    /// sentinel when the histogram is empty (what [`Self::default`] holds),
    /// so decode(encode(h)) == h exactly.
    pub fn from_parts(buckets: [u64; BUCKETS], count: u64, sum: u64, min: u64, max: u64) -> Self {
        HistogramSnapshot {
            buckets,
            count,
            sum,
            min,
            max,
        }
    }

    /// The raw minimum slot (`u64::MAX` sentinel when empty), for codecs that
    /// must round-trip the struct exactly; [`min`](Self::min) is the
    /// `Option`-typed reader.
    pub fn raw_min(&self) -> u64 {
        self.min
    }

    /// Non-empty buckets as `(lower_bound, upper_bound, count)` triples — the
    /// wire form for exposition.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                (lo, bucket_upper(i), n)
            })
            .collect()
    }

    /// JSON exposition: summary quantiles plus the non-empty bucket list.
    pub fn to_json(&self) -> Json {
        let num = |n: u64| Json::Number(n as f64);
        let buckets = self
            .nonzero_buckets()
            .into_iter()
            .map(|(lo, hi, n)| object([("lo", num(lo)), ("hi", num(hi)), ("count", num(n))]))
            .collect();
        object([
            ("count", num(self.count)),
            ("sum", num(self.sum)),
            ("min", num(self.min().unwrap_or(0))),
            ("max", num(self.max)),
            ("mean", Json::Number(self.mean())),
            ("p50", num(self.quantile(50.0))),
            ("p90", num(self.quantile(90.0))),
            ("p99", num(self.quantile(99.0))),
            ("buckets", Json::Array(buckets)),
        ])
    }
}

impl std::fmt::Debug for HistogramSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramSnapshot")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("max", &self.max)
            .field("mean", &self.mean())
            .field("p50", &self.quantile(50.0))
            .field("p99", &self.quantile(99.0))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact nearest-rank quantile on a sorted copy, for comparison.
    fn exact_quantile(values: &[u64], q: f64) -> u64 {
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let rank = ((q / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
        sorted[rank.min(sorted.len()) - 1]
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        // Every bucket's bounds round-trip through bucket_of.
        for i in 1..64 {
            let lo = 1u64 << (i - 1);
            let hi = bucket_upper(i);
            assert_eq!(bucket_of(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_of(hi), i, "upper bound of bucket {i}");
        }
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = HistogramSnapshot::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(50.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn single_value_quantiles_are_exact_enough() {
        let mut h = HistogramSnapshot::new();
        h.record(1000);
        // 1000 lands in [512, 1023]; clamped to max => exactly 1000.
        assert_eq!(h.quantile(50.0), 1000);
        assert_eq!(h.quantile(99.0), 1000);
        assert_eq!(h.min(), Some(1000));
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn quantile_error_bound_on_fixed_sample() {
        let values: Vec<u64> = (1..=1000).map(|i| i * 37).collect();
        let mut h = HistogramSnapshot::new();
        for &v in &values {
            h.record(v);
        }
        for q in [1.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            let exact = exact_quantile(&values, q);
            let est = h.quantile(q);
            assert!(est >= exact, "q{q}: est {est} < exact {exact}");
            assert!(est < exact * 2, "q{q}: est {est} >= 2x exact {exact}");
        }
    }

    #[test]
    fn merge_matches_bulk_record() {
        let a_vals: Vec<u64> = (1u64..200).map(|i| i * i).collect();
        let b_vals: Vec<u64> = (1u64..300).map(|i| i * 13).collect();
        let (mut a, mut b, mut both) = (
            HistogramSnapshot::new(),
            HistogramSnapshot::new(),
            HistogramSnapshot::new(),
        );
        for &v in &a_vals {
            a.record(v);
            both.record(v);
        }
        for &v in &b_vals {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn atomic_histogram_matches_plain() {
        let h = LogHistogram::new();
        let mut p = HistogramSnapshot::new();
        for v in [0u64, 1, 5, 900, 1_000_000, u64::MAX] {
            h.record(v);
            p.record(v);
        }
        assert_eq!(h.snapshot(), p);
    }

    #[test]
    fn concurrent_records_all_land() {
        let h = std::sync::Arc::new(LogHistogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i + 1);
                    }
                })
            })
            .collect();
        for hnd in handles {
            hnd.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 40_000);
        assert_eq!(s.min(), Some(1));
        assert_eq!(s.max(), 40_000);
    }

    #[test]
    fn json_exposition_has_quantiles() {
        let mut h = HistogramSnapshot::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let j = h.to_json();
        assert_eq!(j.get("count").and_then(Json::as_u64), Some(100));
        assert!(j.get("p99").and_then(Json::as_u64).unwrap() >= 99);
        assert!(!j
            .get("buckets")
            .and_then(Json::as_array)
            .unwrap()
            .is_empty());
    }
}
