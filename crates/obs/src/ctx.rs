//! Thread-local trace context.
//!
//! The layers that emit trace events do not all see the session: the buffer
//! pool, four crates below the server, faults pages with no idea which gesture
//! asked for them. Rather than plumbing a trace handle through every storage
//! API, the worker thread stamps its current `(session, trace)` pair into a
//! thread-local before running a gesture trace and clears it afterwards; any
//! event emitted from that thread in between is attributed to the gesture.
//! Worker threads serve one session event at a time, so the attribution is
//! exact for session work; background threads (remote I/O pool) carry no
//! context and their events are recorded unattributed.

use std::cell::Cell;

/// The `(session_id, trace_id)` pair events are attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Server-assigned session id.
    pub session: u64,
    /// Per-gesture-trace id, unique per telemetry hub.
    pub trace: u64,
}

thread_local! {
    static CTX: Cell<Option<TraceCtx>> = const { Cell::new(None) };
}

/// Attribute subsequent events on this thread to `(session, trace)`.
pub fn set_trace_ctx(session: u64, trace: u64) {
    CTX.with(|c| c.set(Some(TraceCtx { session, trace })));
}

/// Stop attributing events on this thread.
pub fn clear_trace_ctx() {
    CTX.with(|c| c.set(None));
}

/// The calling thread's current trace context, if any.
pub fn trace_ctx() -> Option<TraceCtx> {
    CTX.with(|c| c.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_set_get_clear() {
        assert_eq!(trace_ctx(), None);
        set_trace_ctx(7, 42);
        assert_eq!(
            trace_ctx(),
            Some(TraceCtx {
                session: 7,
                trace: 42
            })
        );
        clear_trace_ctx();
        assert_eq!(trace_ctx(), None);
    }

    #[test]
    fn ctx_is_thread_local() {
        set_trace_ctx(1, 1);
        let other = std::thread::spawn(trace_ctx).join().unwrap();
        assert_eq!(other, None);
        clear_trace_ctx();
    }
}
