//! Thread-local trace context.
//!
//! The layers that emit trace events do not all see the session: the buffer
//! pool, four crates below the server, faults pages with no idea which gesture
//! asked for them. Rather than plumbing a trace handle through every storage
//! API, the worker thread stamps its current `(session, trace)` pair into a
//! thread-local before running a gesture trace and clears it afterwards; any
//! event emitted from that thread in between is attributed to the gesture.
//! Worker threads serve one session event at a time, so the attribution is
//! exact for session work; background threads (remote I/O pool) carry no
//! context and their events are recorded unattributed.
//!
//! When hierarchical tracing is on, the context additionally carries the id
//! of the gesture's current *service span*, so work fanned out to helper
//! threads (morsel segment scans) can hang child spans under it.

use std::cell::Cell;

/// The `(session_id, trace_id)` pair events are attributed to, plus the
/// current span child work should nest under (0 = none).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Server-assigned session id.
    pub session: u64,
    /// Per-gesture-trace id, unique per telemetry hub.
    pub trace: u64,
    /// Id of the span child spans should parent to; 0 when no span is open.
    pub span: u64,
}

thread_local! {
    static CTX: Cell<Option<TraceCtx>> = const { Cell::new(None) };
}

/// Attribute subsequent events on this thread to `(session, trace)`, with
/// no enclosing span.
pub fn set_trace_ctx(session: u64, trace: u64) {
    set_trace_ctx_span(session, trace, 0);
}

/// Attribute subsequent events on this thread to `(session, trace)` and
/// nest child spans under `span`.
pub fn set_trace_ctx_span(session: u64, trace: u64, span: u64) {
    CTX.with(|c| {
        c.set(Some(TraceCtx {
            session,
            trace,
            span,
        }))
    });
}

/// Restore a full captured context (helper threads adopting a submitter's
/// context, span included).
pub fn set_trace_ctx_full(ctx: TraceCtx) {
    CTX.with(|c| c.set(Some(ctx)));
}

/// Stop attributing events on this thread.
pub fn clear_trace_ctx() {
    CTX.with(|c| c.set(None));
}

/// The calling thread's current trace context, if any.
pub fn trace_ctx() -> Option<TraceCtx> {
    CTX.with(|c| c.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_set_get_clear() {
        assert_eq!(trace_ctx(), None);
        set_trace_ctx(7, 42);
        assert_eq!(
            trace_ctx(),
            Some(TraceCtx {
                session: 7,
                trace: 42,
                span: 0
            })
        );
        set_trace_ctx_span(7, 42, 9);
        assert_eq!(trace_ctx().unwrap().span, 9);
        clear_trace_ctx();
        assert_eq!(trace_ctx(), None);
    }

    #[test]
    fn ctx_is_thread_local() {
        set_trace_ctx(1, 1);
        let other = std::thread::spawn(trace_ctx).join().unwrap();
        assert_eq!(other, None);
        clear_trace_ctx();
    }

    #[test]
    fn full_restore_preserves_the_span() {
        set_trace_ctx_span(3, 4, 5);
        let captured = trace_ctx().unwrap();
        clear_trace_ctx();
        set_trace_ctx_full(captured);
        assert_eq!(trace_ctx(), Some(captured));
        clear_trace_ctx();
    }
}
