//! The telemetry hub: source registry, event recording, and scraping.
//!
//! Every layer that already kept a stats struct (pager, caches, remote
//! executor, server) registers itself as a [`MetricSource`]; a scrape walks
//! the sources and folds their current values plus the event ring into one
//! [`MetricsSnapshot`]. Nothing is pushed through reports or plumbed through
//! call chains — the snapshot is assembled on demand, mid-run, without
//! quiescing anything.

use crate::ctx::trace_ctx;
use crate::events::{EventRing, TraceEvent, TraceEventKind};
use crate::histogram::HistogramSnapshot;
use dbtouch_types::json::{object, Json};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// One scraped metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic count.
    Counter(u64),
    /// Point-in-time or high-water value.
    Gauge(u64),
    /// Derived ratio/rate.
    Float(f64),
    /// Full distribution (boxed: a snapshot is ~65 buckets wide and would
    /// otherwise dominate the enum's size).
    Histogram(Box<HistogramSnapshot>),
}

impl MetricValue {
    /// The value as JSON (histograms expand to their bucket object).
    pub fn to_json(&self) -> Json {
        match self {
            MetricValue::Counter(n) | MetricValue::Gauge(n) => Json::Number(*n as f64),
            MetricValue::Float(f) => Json::Number(*f),
            MetricValue::Histogram(h) => h.to_json(),
        }
    }
}

/// A layer that can be scraped. Implementations must be cheap and
/// non-blocking: a scrape runs concurrently with the hot path.
pub trait MetricSource: Send + Sync {
    /// Namespace for this source's metrics (e.g. `"pager"`). Snapshot keys are
    /// `"{name}.{metric}"`.
    fn source_name(&self) -> &'static str;

    /// Current values, as `(metric, value)` pairs.
    fn collect(&self) -> Vec<(&'static str, MetricValue)>;
}

/// A scraped view of the whole system at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// `"{source}.{metric}"` → value, deterministically ordered.
    pub metrics: BTreeMap<String, MetricValue>,
    /// The retained tail of the event trace, oldest first.
    pub events: Vec<TraceEvent>,
    /// Nanoseconds since the hub was created.
    pub uptime_nanos: u64,
    /// Total events recorded (including ones the ring has since evicted).
    pub events_recorded: u64,
}

impl MetricsSnapshot {
    /// Look up a metric by its full `"{source}.{metric}"` key.
    pub fn get(&self, key: &str) -> Option<&MetricValue> {
        self.metrics.get(key)
    }

    /// Counter/gauge value by key, when present and scalar.
    pub fn scalar(&self, key: &str) -> Option<u64> {
        match self.get(key)? {
            MetricValue::Counter(n) | MetricValue::Gauge(n) => Some(*n),
            _ => None,
        }
    }

    /// JSON exposition: `{ uptime_nanos, metrics: {...}, events: [...] }`.
    pub fn to_json(&self) -> Json {
        let metrics = Json::Object(
            self.metrics
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        );
        let events = Json::Array(self.events.iter().map(TraceEvent::to_json).collect());
        object([
            ("uptime_nanos", Json::Number(self.uptime_nanos as f64)),
            ("events_recorded", Json::Number(self.events_recorded as f64)),
            ("metrics", metrics),
            ("events", events),
        ])
    }

    /// Flat text exposition, one `key value` line per metric (histograms
    /// expand to `.count/.mean/.p50/.p90/.p99/.max` lines), suitable for
    /// dumping to a terminal or diffing between scrapes.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "uptime_nanos {}", self.uptime_nanos);
        let _ = writeln!(out, "events_recorded {}", self.events_recorded);
        for (key, value) in &self.metrics {
            match value {
                MetricValue::Counter(n) | MetricValue::Gauge(n) => {
                    let _ = writeln!(out, "{key} {n}");
                }
                MetricValue::Float(f) => {
                    let _ = writeln!(out, "{key} {f:.6}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "{key}.count {}", h.count());
                    let _ = writeln!(out, "{key}.mean {:.1}", h.mean());
                    let _ = writeln!(out, "{key}.p50 {}", h.quantile(50.0));
                    let _ = writeln!(out, "{key}.p90 {}", h.quantile(90.0));
                    let _ = writeln!(out, "{key}.p99 {}", h.quantile(99.0));
                    let _ = writeln!(out, "{key}.max {}", h.max());
                }
            }
        }
        out
    }
}

thread_local! {
    /// Per-thread tick for 1-in-N sampling of hot event kinds.
    static HOT_TICK: Cell<u32> = const { Cell::new(0) };
}

/// The telemetry hub. One per catalog/server; shared by `Arc` into every
/// layer. A disabled hub turns every recording call into a branch-and-return.
pub struct Telemetry {
    enabled: bool,
    hot_sample: u32,
    started: Instant,
    ring: EventRing,
    next_trace: AtomicU64,
    sources: RwLock<Vec<Arc<dyn MetricSource>>>,
}

impl Telemetry {
    /// A live hub. `ring_capacity` bounds retained trace events;
    /// `hot_sample` records every Nth hot-path event (1 = record all).
    pub fn new(ring_capacity: usize, hot_sample: u32) -> Self {
        Telemetry {
            enabled: true,
            hot_sample: hot_sample.max(1),
            started: Instant::now(),
            ring: EventRing::new(ring_capacity),
            next_trace: AtomicU64::new(1),
            sources: RwLock::new(Vec::new()),
        }
    }

    /// A hub that records nothing and scrapes empty snapshots.
    pub fn disabled() -> Self {
        Telemetry {
            enabled: false,
            hot_sample: 1,
            started: Instant::now(),
            ring: EventRing::new(0),
            next_trace: AtomicU64::new(1),
            sources: RwLock::new(Vec::new()),
        }
    }

    /// Whether this hub records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Register (or replace, matched by `source_name`) a scrape source.
    pub fn register(&self, source: Arc<dyn MetricSource>) {
        let mut sources = self.sources.write().unwrap();
        if let Some(slot) = sources
            .iter_mut()
            .find(|s| s.source_name() == source.source_name())
        {
            *slot = source;
        } else {
            sources.push(source);
        }
    }

    /// Allocate a trace id and attribute subsequent events on this thread to
    /// `(session, trace)`. Pair with [`Telemetry::end_trace`].
    pub fn begin_trace(&self, session: u64) -> u64 {
        let trace = self.next_trace.fetch_add(1, Ordering::Relaxed);
        if self.enabled {
            crate::ctx::set_trace_ctx(session, trace);
        }
        trace
    }

    /// Clear this thread's trace attribution.
    pub fn end_trace(&self) {
        crate::ctx::clear_trace_ctx();
    }

    /// Record a lifecycle event unconditionally (rare kinds).
    #[inline]
    pub fn event(&self, kind: TraceEventKind, detail: u64) {
        if !self.enabled {
            return;
        }
        self.push_event(kind, detail);
    }

    /// Record a hot-path event, sampled 1-in-`hot_sample` per thread. The
    /// fast path (sampled out) is one thread-local increment.
    #[inline]
    pub fn hot_event(&self, kind: TraceEventKind, detail: u64) {
        if !self.enabled {
            return;
        }
        let fire = HOT_TICK.with(|t| {
            let next = t.get().wrapping_add(1);
            t.set(next);
            next % self.hot_sample == 0
        });
        if fire {
            self.push_event(kind, detail);
        }
    }

    fn push_event(&self, kind: TraceEventKind, detail: u64) {
        let ctx = trace_ctx();
        self.ring.push(TraceEvent {
            seq: 0, // assigned by the ring
            at_nanos: self.started.elapsed().as_nanos() as u64,
            session: ctx.map(|c| c.session),
            trace: ctx.map(|c| c.trace),
            kind,
            detail,
        });
    }

    /// Scrape all sources and the event ring into a snapshot. Runs
    /// concurrently with writers; no quiescing.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut metrics = BTreeMap::new();
        for source in self.sources.read().unwrap().iter() {
            let prefix = source.source_name();
            for (name, value) in source.collect() {
                metrics.insert(format!("{prefix}.{name}"), value);
            }
        }
        MetricsSnapshot {
            metrics,
            events: self.ring.snapshot(),
            uptime_nanos: self.started.elapsed().as_nanos() as u64,
            events_recorded: self.ring.pushed(),
        }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled)
            .field("hot_sample", &self.hot_sample)
            .field("sources", &self.sources.read().unwrap().len())
            .field("events_recorded", &self.ring.pushed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::Counter;

    struct FakeSource {
        hits: Counter,
    }

    impl MetricSource for FakeSource {
        fn source_name(&self) -> &'static str {
            "fake"
        }
        fn collect(&self) -> Vec<(&'static str, MetricValue)> {
            vec![("hits", MetricValue::Counter(self.hits.get()))]
        }
    }

    #[test]
    fn snapshot_scrapes_registered_sources() {
        let hub = Telemetry::new(64, 1);
        let src = Arc::new(FakeSource {
            hits: Counter::new(),
        });
        hub.register(src.clone());
        src.hits.add(3);
        let snap = hub.snapshot();
        assert_eq!(snap.scalar("fake.hits"), Some(3));
        // Re-register replaces rather than duplicates.
        hub.register(src);
        assert_eq!(hub.snapshot().metrics.len(), 1);
    }

    #[test]
    fn events_carry_trace_context() {
        let hub = Telemetry::new(64, 1);
        let trace = hub.begin_trace(7);
        hub.event(TraceEventKind::RemoteSubmitted, 11);
        hub.end_trace();
        hub.event(TraceEventKind::EpochPublished, 2);
        let snap = hub.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].session, Some(7));
        assert_eq!(snap.events[0].trace, Some(trace));
        assert_eq!(snap.events[1].session, None);
    }

    #[test]
    fn hot_events_are_sampled() {
        let hub = Telemetry::new(4096, 10);
        for i in 0..100 {
            hub.hot_event(TraceEventKind::TouchReceived, i);
        }
        let snap = hub.snapshot();
        assert_eq!(snap.events.len(), 10);
        assert_eq!(snap.events_recorded, 10);
    }

    #[test]
    fn disabled_hub_records_nothing() {
        let hub = Telemetry::disabled();
        hub.begin_trace(1);
        hub.event(TraceEventKind::PageFault, 1);
        hub.hot_event(TraceEventKind::TouchReceived, 1);
        hub.end_trace();
        let snap = hub.snapshot();
        assert!(snap.events.is_empty());
        assert_eq!(snap.events_recorded, 0);
        assert!(crate::ctx::trace_ctx().is_none());
    }

    #[test]
    fn exposition_renders_text_and_json() {
        let hub = Telemetry::new(64, 1);
        let src = Arc::new(FakeSource {
            hits: Counter::new(),
        });
        src.hits.add(5);
        hub.register(src);
        hub.event(TraceEventKind::EpochPublished, 3);
        let snap = hub.snapshot();
        let text = snap.render_text();
        assert!(text.contains("fake.hits 5"));
        let json = snap.to_json();
        assert_eq!(
            json.get("metrics")
                .and_then(|m| m.get("fake.hits"))
                .and_then(Json::as_u64),
            Some(5)
        );
        assert_eq!(
            json.get("events").and_then(Json::as_array).unwrap().len(),
            1
        );
        // Byte-stable rendering round-trips through the parser.
        assert!(dbtouch_types::json::parse(&json.pretty()).is_ok());
    }
}
