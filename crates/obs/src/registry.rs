//! The telemetry hub: source registry, event recording, and scraping.
//!
//! Every layer that already kept a stats struct (pager, caches, remote
//! executor, server) registers itself as a [`MetricSource`]; a scrape walks
//! the sources and folds their current values plus the event ring into one
//! [`MetricsSnapshot`]. Nothing is pushed through reports or plumbed through
//! call chains — the snapshot is assembled on demand, mid-run, without
//! quiescing anything.

use crate::ctx::trace_ctx;
use crate::events::{EventRing, TraceEvent, TraceEventKind};
use crate::histogram::HistogramSnapshot;
use crate::trace::span::{SpanConfig, SpanStore, SpanTree};
use dbtouch_types::json::{object, Json};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// One scraped metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic count.
    Counter(u64),
    /// Point-in-time or high-water value.
    Gauge(u64),
    /// Derived ratio/rate.
    Float(f64),
    /// Full distribution (boxed: a snapshot is ~65 buckets wide and would
    /// otherwise dominate the enum's size).
    Histogram(Box<HistogramSnapshot>),
}

impl MetricValue {
    /// The value as JSON (histograms expand to their bucket object).
    pub fn to_json(&self) -> Json {
        match self {
            MetricValue::Counter(n) | MetricValue::Gauge(n) => Json::Number(*n as f64),
            MetricValue::Float(f) => Json::Number(*f),
            MetricValue::Histogram(h) => h.to_json(),
        }
    }
}

/// A layer that can be scraped. Implementations must be cheap and
/// non-blocking: a scrape runs concurrently with the hot path.
pub trait MetricSource: Send + Sync {
    /// Namespace for this source's metrics (e.g. `"pager"`). Snapshot keys are
    /// `"{name}.{metric}"`.
    fn source_name(&self) -> &'static str;

    /// Current values, as `(metric, value)` pairs.
    fn collect(&self) -> Vec<(&'static str, MetricValue)>;
}

/// A scraped view of the whole system at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// `"{source}.{metric}"` → value, deterministically ordered.
    pub metrics: BTreeMap<String, MetricValue>,
    /// The retained tail of the event trace, oldest first.
    pub events: Vec<TraceEvent>,
    /// The retained (tail/head-sampled) span trees, oldest first.
    pub traces: Vec<SpanTree>,
    /// Nanoseconds since the hub was created.
    pub uptime_nanos: u64,
    /// Total events recorded (including ones the ring has since evicted).
    pub events_recorded: u64,
}

impl MetricsSnapshot {
    /// Look up a metric by its full `"{source}.{metric}"` key.
    pub fn get(&self, key: &str) -> Option<&MetricValue> {
        self.metrics.get(key)
    }

    /// Counter/gauge value by key, when present and scalar.
    pub fn scalar(&self, key: &str) -> Option<u64> {
        match self.get(key)? {
            MetricValue::Counter(n) | MetricValue::Gauge(n) => Some(*n),
            _ => None,
        }
    }

    /// JSON exposition: `{ uptime_nanos, metrics: {...}, events: [...] }`.
    pub fn to_json(&self) -> Json {
        let metrics = Json::Object(
            self.metrics
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        );
        let events = Json::Array(self.events.iter().map(TraceEvent::to_json).collect());
        let traces = Json::Array(self.traces.iter().map(SpanTree::to_json).collect());
        object([
            ("uptime_nanos", Json::Number(self.uptime_nanos as f64)),
            ("events_recorded", Json::Number(self.events_recorded as f64)),
            ("metrics", metrics),
            ("events", events),
            ("traces", traces),
        ])
    }

    /// Flat text exposition, one `key value` line per metric (histograms
    /// expand to `.count/.mean/.p50/.p90/.p99/.max` lines), suitable for
    /// dumping to a terminal or diffing between scrapes.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "uptime_nanos {}", self.uptime_nanos);
        let _ = writeln!(out, "events_recorded {}", self.events_recorded);
        for (key, value) in &self.metrics {
            match value {
                MetricValue::Counter(n) | MetricValue::Gauge(n) => {
                    let _ = writeln!(out, "{key} {n}");
                }
                MetricValue::Float(f) => {
                    let _ = writeln!(out, "{key} {f:.6}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "{key}.count {}", h.count());
                    let _ = writeln!(out, "{key}.mean {:.1}", h.mean());
                    let _ = writeln!(out, "{key}.p50 {}", h.quantile(50.0));
                    let _ = writeln!(out, "{key}.p90 {}", h.quantile(90.0));
                    let _ = writeln!(out, "{key}.p99 {}", h.quantile(99.0));
                    let _ = writeln!(out, "{key}.max {}", h.max());
                }
            }
        }
        out
    }
}

thread_local! {
    /// Per-thread tick for 1-in-N sampling of hot event kinds.
    static HOT_TICK: Cell<u32> = const { Cell::new(0) };
}

/// The telemetry hub. One per catalog/server; shared by `Arc` into every
/// layer. A disabled hub turns every recording call into a branch-and-return.
pub struct Telemetry {
    enabled: bool,
    hot_sample: u32,
    started: Instant,
    ring: EventRing,
    spans: SpanStore,
    next_trace: AtomicU64,
    sources: RwLock<Vec<Arc<dyn MetricSource>>>,
}

impl Telemetry {
    /// A live hub. `ring_capacity` bounds retained trace events;
    /// `hot_sample` records every Nth hot-path event (1 = record all).
    /// Span capture uses [`SpanConfig::default`]; use
    /// [`Telemetry::with_spans`] to tune it.
    pub fn new(ring_capacity: usize, hot_sample: u32) -> Self {
        Telemetry::with_spans(ring_capacity, hot_sample, SpanConfig::default())
    }

    /// A live hub with explicit span-capture knobs.
    pub fn with_spans(ring_capacity: usize, hot_sample: u32, spans: SpanConfig) -> Self {
        Telemetry {
            enabled: true,
            hot_sample: hot_sample.max(1),
            started: Instant::now(),
            ring: EventRing::new(ring_capacity),
            spans: SpanStore::new(spans),
            next_trace: AtomicU64::new(1),
            sources: RwLock::new(Vec::new()),
        }
    }

    /// A hub that records nothing and scrapes empty snapshots.
    pub fn disabled() -> Self {
        Telemetry {
            enabled: false,
            hot_sample: 1,
            started: Instant::now(),
            ring: EventRing::new(0),
            spans: SpanStore::new(SpanConfig::disabled()),
            next_trace: AtomicU64::new(1),
            sources: RwLock::new(Vec::new()),
        }
    }

    /// Whether this hub records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The hierarchical span store (disabled stores no-op every call).
    pub fn spans(&self) -> &SpanStore {
        &self.spans
    }

    /// Nanoseconds since the hub started — the clock every span timestamp
    /// lives on.
    pub fn now_nanos(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    /// Register (or replace, matched by `source_name`) a scrape source.
    pub fn register(&self, source: Arc<dyn MetricSource>) {
        let mut sources = self.sources.write().unwrap();
        if let Some(slot) = sources
            .iter_mut()
            .find(|s| s.source_name() == source.source_name())
        {
            *slot = source;
        } else {
            sources.push(source);
        }
    }

    /// Allocate a trace id and attribute subsequent events on this thread to
    /// `(session, trace)`. Pair with [`Telemetry::end_trace`].
    pub fn begin_trace(&self, session: u64) -> u64 {
        let trace = self.next_trace.fetch_add(1, Ordering::Relaxed);
        if self.enabled {
            crate::ctx::set_trace_ctx(session, trace);
        }
        trace
    }

    /// Attribute subsequent events on this thread to a trace id minted
    /// elsewhere (a client-stamped wire id, [`crate::trace::CLIENT_ID_BIT`]
    /// set, so it cannot collide with [`Telemetry::begin_trace`] ids). Pair
    /// with [`Telemetry::end_trace`].
    pub fn adopt_trace(&self, session: u64, trace: u64) -> u64 {
        if self.enabled {
            crate::ctx::set_trace_ctx(session, trace);
        }
        trace
    }

    /// Clear this thread's trace attribution.
    pub fn end_trace(&self) {
        crate::ctx::clear_trace_ctx();
    }

    /// Record a lifecycle event unconditionally (rare kinds).
    #[inline]
    pub fn event(&self, kind: TraceEventKind, detail: u64) {
        if !self.enabled {
            return;
        }
        self.push_event(kind, detail);
    }

    /// Record a hot-path event, sampled 1-in-`hot_sample` per thread. The
    /// fast path (sampled out) is one thread-local increment.
    #[inline]
    pub fn hot_event(&self, kind: TraceEventKind, detail: u64) {
        if !self.enabled {
            return;
        }
        let fire = HOT_TICK.with(|t| {
            let next = t.get().wrapping_add(1);
            t.set(next);
            next % self.hot_sample == 0
        });
        if fire {
            self.push_event(kind, detail);
        }
    }

    fn push_event(&self, kind: TraceEventKind, detail: u64) {
        let ctx = trace_ctx();
        self.ring.push(TraceEvent {
            seq: 0, // assigned by the ring
            at_nanos: self.started.elapsed().as_nanos() as u64,
            session: ctx.map(|c| c.session),
            trace: ctx.map(|c| c.trace),
            kind,
            detail,
        });
    }

    /// Scrape all sources and the event ring into a snapshot. Runs
    /// concurrently with writers; no quiescing.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut metrics = BTreeMap::new();
        for source in self.sources.read().unwrap().iter() {
            let prefix = source.source_name();
            for (name, value) in source.collect() {
                metrics.insert(format!("{prefix}.{name}"), value);
            }
        }
        // The hub's own health: ring saturation and span-sampler activity.
        metrics.insert(
            "obs.events_dropped".to_string(),
            MetricValue::Counter(self.ring.dropped()),
        );
        metrics.insert(
            "obs.traces_finished".to_string(),
            MetricValue::Counter(self.spans.traces_finished()),
        );
        metrics.insert(
            "obs.traces_tail_sampled".to_string(),
            MetricValue::Counter(self.spans.tail_sampled()),
        );
        metrics.insert(
            "obs.traces_head_sampled".to_string(),
            MetricValue::Counter(self.spans.head_sampled()),
        );
        metrics.insert(
            "obs.spans_truncated".to_string(),
            MetricValue::Counter(self.spans.spans_truncated()),
        );
        MetricsSnapshot {
            metrics,
            events: self.ring.snapshot(),
            traces: self.spans.retained(),
            uptime_nanos: self.started.elapsed().as_nanos() as u64,
            events_recorded: self.ring.pushed(),
        }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled)
            .field("hot_sample", &self.hot_sample)
            .field("sources", &self.sources.read().unwrap().len())
            .field("events_recorded", &self.ring.pushed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::Counter;

    struct FakeSource {
        hits: Counter,
    }

    impl MetricSource for FakeSource {
        fn source_name(&self) -> &'static str {
            "fake"
        }
        fn collect(&self) -> Vec<(&'static str, MetricValue)> {
            vec![("hits", MetricValue::Counter(self.hits.get()))]
        }
    }

    #[test]
    fn snapshot_scrapes_registered_sources() {
        let hub = Telemetry::new(64, 1);
        let src = Arc::new(FakeSource {
            hits: Counter::new(),
        });
        hub.register(src.clone());
        src.hits.add(3);
        let snap = hub.snapshot();
        assert_eq!(snap.scalar("fake.hits"), Some(3));
        // Re-register replaces rather than duplicates (the other keys are
        // the hub's own obs.* health metrics).
        hub.register(src);
        let snap = hub.snapshot();
        assert_eq!(
            snap.metrics
                .keys()
                .filter(|k| k.starts_with("fake."))
                .count(),
            1
        );
        assert_eq!(snap.scalar("obs.events_dropped"), Some(0));
    }

    #[test]
    fn events_carry_trace_context() {
        let hub = Telemetry::new(64, 1);
        let trace = hub.begin_trace(7);
        hub.event(TraceEventKind::RemoteSubmitted, 11);
        hub.end_trace();
        hub.event(TraceEventKind::EpochPublished, 2);
        let snap = hub.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].session, Some(7));
        assert_eq!(snap.events[0].trace, Some(trace));
        assert_eq!(snap.events[1].session, None);
    }

    #[test]
    fn hot_events_are_sampled() {
        let hub = Telemetry::new(4096, 10);
        for i in 0..100 {
            hub.hot_event(TraceEventKind::TouchReceived, i);
        }
        let snap = hub.snapshot();
        assert_eq!(snap.events.len(), 10);
        assert_eq!(snap.events_recorded, 10);
    }

    #[test]
    fn disabled_hub_records_nothing() {
        let hub = Telemetry::disabled();
        hub.begin_trace(1);
        hub.event(TraceEventKind::PageFault, 1);
        hub.hot_event(TraceEventKind::TouchReceived, 1);
        hub.end_trace();
        let snap = hub.snapshot();
        assert!(snap.events.is_empty());
        assert_eq!(snap.events_recorded, 0);
        assert!(crate::ctx::trace_ctx().is_none());
    }

    #[test]
    fn exposition_renders_text_and_json() {
        let hub = Telemetry::new(64, 1);
        let src = Arc::new(FakeSource {
            hits: Counter::new(),
        });
        src.hits.add(5);
        hub.register(src);
        hub.event(TraceEventKind::EpochPublished, 3);
        let snap = hub.snapshot();
        let text = snap.render_text();
        assert!(text.contains("fake.hits 5"));
        let json = snap.to_json();
        assert_eq!(
            json.get("metrics")
                .and_then(|m| m.get("fake.hits"))
                .and_then(Json::as_u64),
            Some(5)
        );
        assert_eq!(
            json.get("events").and_then(Json::as_array).unwrap().len(),
            1
        );
        // Byte-stable rendering round-trips through the parser.
        assert!(dbtouch_types::json::parse(&json.pretty()).is_ok());
    }

    #[test]
    fn snapshot_carries_retained_span_trees() {
        let hub = Telemetry::with_spans(
            64,
            1,
            SpanConfig {
                tail_threshold_nanos: 0, // everything tail-samples
                ..SpanConfig::default()
            },
        );
        let trace = hub.begin_trace(4);
        let start = hub.now_nanos();
        hub.spans().ensure_root(4, trace, 0, start);
        hub.spans()
            .record_span(4, trace, 0, "service", start, 10, 0);
        hub.spans().trace_finish(4, trace, start + 20);
        hub.end_trace();
        let snap = hub.snapshot();
        assert_eq!(snap.traces.len(), 1);
        assert_eq!(snap.traces[0].trace, trace);
        assert_eq!(snap.scalar("obs.traces_finished"), Some(1));
        assert_eq!(snap.scalar("obs.traces_tail_sampled"), Some(1));
        let json = snap.to_json();
        assert_eq!(
            json.get("traces").and_then(Json::as_array).map(|a| a.len()),
            Some(1)
        );
    }

    #[test]
    fn adopt_trace_attributes_without_minting() {
        let hub = Telemetry::new(64, 1);
        let wire = crate::trace::CLIENT_ID_BIT | 9;
        assert_eq!(hub.adopt_trace(2, wire), wire);
        hub.event(TraceEventKind::TraceStarted, 0);
        hub.end_trace();
        let snap = hub.snapshot();
        assert_eq!(snap.events[0].trace, Some(wire));
        // The mint counter was not consumed.
        assert_eq!(hub.begin_trace(2), 1);
        hub.end_trace();
    }
}
