//! Bounded ring buffer of gesture-lifecycle trace events.
//!
//! Counters say *how often*; the event trace says *why this touch was slow*:
//! it records the lifecycle touch received → shared-cache hit/miss → page
//! fault → remote submit → refinement landed/dropped → epoch refresh, each
//! stamped with the session and per-gesture trace id from
//! [`crate::ctx`]. Memory is fixed: the ring keeps the most recent ~capacity
//! events and silently drops the oldest.
//!
//! The ring is striped across [`STRIPES`] small mutex-guarded deques keyed by
//! the writer's thread stripe, so concurrent workers almost never contend on
//! the same lock; ordering across stripes is reconstructed on scrape from a
//! global sequence number. (The wait-free claim in the crate docs applies to
//! counters/gauges/histograms; event recording takes one uncontended mutex —
//! still nanoseconds, and hot event kinds are additionally sampled by the
//! [`crate::Telemetry`] hub.)

use crate::stripe::{stripe, STRIPES};
use dbtouch_types::json::{object, Json};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What happened. Ordered roughly by lifecycle position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A gesture trace started executing on a worker (`detail` = touch count).
    TraceStarted,
    /// One touch was processed (`detail` = its latency in nanos). Hot; sampled.
    TouchReceived,
    /// Summary answered from the shared result cache (`detail` = 0). Hot; sampled.
    SharedCacheHit,
    /// Summary missed the shared result cache (`detail` = 0). Hot; sampled.
    SharedCacheMiss,
    /// A column segment was scanned (or index-answered) by the morsel pool
    /// (`detail` = segment row count). Hot; sampled.
    SegmentScanned,
    /// The buffer pool faulted a page in from disk (`detail` = page index).
    PageFault,
    /// A summary was submitted for remote refinement (`detail` = ticket).
    RemoteSubmitted,
    /// A remote refinement landed and was applied (`detail` = ticket).
    RefinementLanded,
    /// A remote refinement arrived stale and was dropped (`detail` = ticket).
    RefinementDropped,
    /// A session refreshed its state onto a newer catalog epoch (`detail` = epoch).
    EpochRefresh,
    /// A mutator published a new catalog epoch (`detail` = epoch).
    EpochPublished,
    /// A gesture trace finished (`detail` = total nanos).
    TraceFinished,
    /// Admission control rejected work (`detail` = shed-reason code:
    /// 0 = overloaded, 1 = draining, 2 = connection limit). Stamped with the
    /// rejected request's trace context when the client sent one, so
    /// client-side `Overloaded` errors correlate with server state.
    Shed,
}

impl TraceEventKind {
    /// Stable identifier used in text/JSON exposition.
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::TraceStarted => "trace_started",
            TraceEventKind::TouchReceived => "touch_received",
            TraceEventKind::SharedCacheHit => "shared_cache_hit",
            TraceEventKind::SharedCacheMiss => "shared_cache_miss",
            TraceEventKind::SegmentScanned => "segment_scanned",
            TraceEventKind::PageFault => "page_fault",
            TraceEventKind::RemoteSubmitted => "remote_submitted",
            TraceEventKind::RefinementLanded => "refinement_landed",
            TraceEventKind::RefinementDropped => "refinement_dropped",
            TraceEventKind::EpochRefresh => "epoch_refresh",
            TraceEventKind::EpochPublished => "epoch_published",
            TraceEventKind::TraceFinished => "trace_finished",
            TraceEventKind::Shed => "shed",
        }
    }

    /// Hot-path kinds fire per touch and are sampled 1-in-N by the hub; the
    /// rest are rare lifecycle transitions and always recorded.
    pub fn is_hot(self) -> bool {
        matches!(
            self,
            TraceEventKind::TouchReceived
                | TraceEventKind::SharedCacheHit
                | TraceEventKind::SharedCacheMiss
                | TraceEventKind::SegmentScanned
        )
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (total order across stripes).
    pub seq: u64,
    /// Nanoseconds since the telemetry hub started.
    pub at_nanos: u64,
    /// Owning session, when the emitting thread had a trace context.
    pub session: Option<u64>,
    /// Per-gesture trace id, when the emitting thread had a trace context.
    pub trace: Option<u64>,
    /// What happened.
    pub kind: TraceEventKind,
    /// Kind-specific payload (latency, page index, ticket, epoch).
    pub detail: u64,
}

impl TraceEvent {
    /// JSON exposition of one event.
    pub fn to_json(&self) -> Json {
        let num = |n: u64| Json::Number(n as f64);
        object([
            ("seq", num(self.seq)),
            ("at_nanos", num(self.at_nanos)),
            (
                "session",
                self.session.map_or(Json::Null, |s| Json::Number(s as f64)),
            ),
            (
                "trace",
                self.trace.map_or(Json::Null, |t| Json::Number(t as f64)),
            ),
            ("kind", Json::String(self.kind.name().to_string())),
            ("detail", num(self.detail)),
        ])
    }
}

/// Fixed-capacity, striped event ring. Keeps roughly the newest `capacity`
/// events (the bound is enforced per stripe, so a thread-skewed workload may
/// retain slightly fewer).
pub struct EventRing {
    shards: [Mutex<VecDeque<TraceEvent>>; STRIPES],
    per_shard: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
}

impl EventRing {
    /// A ring retaining about `capacity` events; `capacity == 0` disables
    /// retention (events are counted but not stored).
    pub fn new(capacity: usize) -> Self {
        EventRing {
            shards: std::array::from_fn(|_| Mutex::new(VecDeque::new())),
            per_shard: capacity.div_ceil(STRIPES),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Append an event (its `seq` field is assigned here). Takes one
    /// uncontended mutex on the caller's stripe.
    pub fn push(&self, mut event: TraceEvent) {
        event.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if self.per_shard == 0 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut shard = self.shards[stripe()].lock().unwrap();
        if shard.len() == self.per_shard {
            shard.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        shard.push_back(event);
    }

    /// Total events ever pushed (including ones since evicted).
    pub fn pushed(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Events discarded because the ring was full (oldest evicted) or
    /// retention is disabled. A growing value on scrape means the ring is
    /// saturated and `telemetry_ring_capacity` is too small for the scrape
    /// interval.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The retained events, oldest first (merged across stripes by sequence
    /// number).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out: Vec<TraceEvent> = Vec::new();
        for shard in &self.shards {
            out.extend(shard.lock().unwrap().iter().copied());
        }
        out.sort_unstable_by_key(|e| e.seq);
        out
    }
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("pushed", &self.pushed())
            .field("retained", &self.snapshot().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: TraceEventKind, detail: u64) -> TraceEvent {
        TraceEvent {
            seq: 0,
            at_nanos: 0,
            session: Some(1),
            trace: Some(1),
            kind,
            detail,
        }
    }

    #[test]
    fn ring_keeps_newest_and_orders_by_seq() {
        let ring = EventRing::new(STRIPES * 4);
        for i in 0..200 {
            ring.push(ev(TraceEventKind::TouchReceived, i));
        }
        let events = ring.snapshot();
        // Single-threaded push: one stripe, so exactly per_shard retained.
        assert_eq!(events.len(), 4);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(events.last().unwrap().detail, 199);
        assert_eq!(ring.pushed(), 200);
        assert_eq!(ring.dropped(), 196);
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let ring = EventRing::new(0);
        ring.push(ev(TraceEventKind::PageFault, 9));
        assert!(ring.snapshot().is_empty());
        assert_eq!(ring.pushed(), 1);
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn concurrent_pushes_get_unique_seqs() {
        // per-shard capacity 512 >= 500 pushes per thread, so nothing evicts.
        let ring = std::sync::Arc::new(EventRing::new(8192));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let ring = std::sync::Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        ring.push(ev(TraceEventKind::SharedCacheHit, i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 2000);
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 2000);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(TraceEventKind::PageFault.name(), "page_fault");
        assert_eq!(TraceEventKind::SegmentScanned.name(), "segment_scanned");
        assert_eq!(TraceEventKind::Shed.name(), "shed");
        assert!(TraceEventKind::TouchReceived.is_hot());
        assert!(TraceEventKind::SegmentScanned.is_hot());
        assert!(!TraceEventKind::EpochPublished.is_hot());
        assert!(!TraceEventKind::Shed.is_hot());
    }
}
