//! Live telemetry for the dbTouch reproduction.
//!
//! The paper's interactivity contract — "there should always be a maximum
//! possible wait time for a single touch" (Section 4) — is only useful if it
//! can be *checked while the system runs*. This crate provides the primitives
//! that make that possible without perturbing the touch hot path:
//!
//! * [`Counter`] / [`Gauge`] / [`PeakGauge`] — wait-free sharded atomics.
//!   Writers pick a per-thread stripe and issue one relaxed `fetch_add`;
//!   readers sum the stripes on scrape. No locks, no contended cache line.
//! * [`LogHistogram`] / [`HistogramSnapshot`] — fixed-memory log2-bucket
//!   latency histograms with a guaranteed ≤2x quantile error bound. These
//!   replace the unbounded full-sample `Vec<u64>`s that sessions used to
//!   accumulate.
//! * [`EventRing`] + [`TraceEvent`] — a bounded ring buffer of
//!   gesture-lifecycle events (touch received → cache hit/miss → page fault →
//!   remote submit → refinement landed/dropped → epoch refresh) stamped with
//!   per-session trace ids, so a slow touch can be *explained*, not just
//!   counted.
//! * [`Telemetry`] + [`MetricSource`] — the registry that aggregates every
//!   layer's stats structs into one [`MetricsSnapshot`], scrapeable mid-run.
//!
//! Everything here is deterministic-by-construction with respect to query
//! results: telemetry observes the execution, it never steers it, so session
//! digests are bit-identical with telemetry on or off.

pub mod counter;
pub mod ctx;
pub mod events;
pub mod histogram;
pub mod registry;
pub mod stripe;
pub mod trace;

pub use counter::{Counter, Gauge, PeakGauge};
pub use ctx::{
    clear_trace_ctx, set_trace_ctx, set_trace_ctx_full, set_trace_ctx_span, trace_ctx, TraceCtx,
};
pub use events::{EventRing, TraceEvent, TraceEventKind};
pub use histogram::{HistogramSnapshot, LogHistogram, BUCKETS};
pub use registry::{MetricSource, MetricValue, MetricsSnapshot, Telemetry};
pub use trace::{
    chrome_trace_json, chrome_trace_text, SpanConfig, SpanRecord, SpanStore, SpanTree,
    WireTraceContext, CLIENT_ID_BIT,
};
