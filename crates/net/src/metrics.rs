//! Network-layer instrumentation, published through the shared telemetry
//! hub as the `net` metric source.
//!
//! Registered into the served catalog's [`Telemetry`] registry, so
//! `net.connections`, `net.shed`, `net.frame_nanos` and friends appear in
//! the same [`metrics_snapshot`] scrape as the server and kernel metrics —
//! including over the wire via the `Metrics` request.
//!
//! [`Telemetry`]: dbtouch_obs::Telemetry
//! [`metrics_snapshot`]: dbtouch_server::ExplorationServer::metrics_snapshot

use dbtouch_obs::{Counter, Gauge, LogHistogram, MetricSource, MetricValue};

/// Counters and histograms of the TCP serving layer.
#[derive(Debug, Default)]
pub struct NetInstruments {
    /// Live client connections (gauge).
    pub connections: Gauge,
    /// Connections accepted since startup.
    pub accepted: Counter,
    /// Requests and connections rejected by load shedding (connection cap,
    /// accept-backlog overflow, or admission control).
    pub shed: Counter,
    /// Wire bytes received (frame headers and checksums included).
    pub bytes_in: Counter,
    /// Wire bytes sent.
    pub bytes_out: Counter,
    /// Malformed frames observed: bad checksums, truncations, oversize
    /// lengths, undecodable payloads, unknown frame types.
    pub frame_errors: Counter,
    /// Wall-clock nanoseconds spent serving each request frame, from decoded
    /// request to written response (log-scale buckets).
    pub frame_nanos: LogHistogram,
    /// `DumpTraces` requests served (each walks the retained span-tree ring).
    pub traces_dumped: Counter,
}

impl MetricSource for NetInstruments {
    fn source_name(&self) -> &'static str {
        "net"
    }

    fn collect(&self) -> Vec<(&'static str, MetricValue)> {
        vec![
            ("connections", MetricValue::Gauge(self.connections.get())),
            ("accepted", MetricValue::Counter(self.accepted.get())),
            ("shed", MetricValue::Counter(self.shed.get())),
            ("bytes_in", MetricValue::Counter(self.bytes_in.get())),
            ("bytes_out", MetricValue::Counter(self.bytes_out.get())),
            (
                "frame_errors",
                MetricValue::Counter(self.frame_errors.get()),
            ),
            (
                "frame_nanos",
                MetricValue::Histogram(Box::new(self.frame_nanos.snapshot())),
            ),
            (
                "traces_dumped",
                MetricValue::Counter(self.traces_dumped.get()),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_all_net_metrics() {
        let n = NetInstruments::default();
        n.connections.set(3);
        n.accepted.add(5);
        n.shed.inc();
        n.bytes_in.add(100);
        n.bytes_out.add(200);
        n.frame_errors.inc();
        n.frame_nanos.record(1_000);
        n.traces_dumped.inc();
        let collected = n.collect();
        let get = |key: &str| {
            collected
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(get("connections"), MetricValue::Gauge(3));
        assert_eq!(get("accepted"), MetricValue::Counter(5));
        assert_eq!(get("shed"), MetricValue::Counter(1));
        assert_eq!(get("bytes_in"), MetricValue::Counter(100));
        assert_eq!(get("bytes_out"), MetricValue::Counter(200));
        assert_eq!(get("frame_errors"), MetricValue::Counter(1));
        assert_eq!(get("traces_dumped"), MetricValue::Counter(1));
        match get("frame_nanos") {
            MetricValue::Histogram(h) => assert_eq!(h.count(), 1),
            other => panic!("expected histogram, got {other:?}"),
        }
    }
}
