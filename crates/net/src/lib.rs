//! # dbtouch-net
//!
//! The network serving layer of the dbTouch reproduction: a length-prefixed
//! binary wire protocol over TCP, session multiplexing over the in-process
//! [`ExplorationServer`], telemetry-driven admission control, and a TCP
//! implementation of the transport-agnostic client API.
//!
//! dbTouch (CIDR 2013) separates the *touch interface* from the *kernel*:
//! the device capturing gestures need not be the machine holding the data.
//! This crate makes that split real. Gesture traces, touch actions and
//! session reports cross the network in a fixed little-endian binary
//! encoding ([`codec`]) with per-frame checksums ([`frame`]) — floats travel
//! as IEEE 754 bit patterns, so a networked replay digests bit-identically
//! to an in-process run of the same traces. JSON appears on the wire in
//! exactly two places: the version handshake and the metrics debug dump.
//!
//! The serving loop ([`server`]) keeps the paper's interactivity promise
//! under load the only way a server can: by refusing work it cannot absorb.
//! Admission control ([`admission`]) reads the live telemetry signals —
//! live sessions, remote-executor backlog, the per-touch p99 — and answers
//! `Shed { retry_after_ms, reason }` instead of queueing without bound.
//! Graceful shutdown drains instead of dropping: accepted connections flush
//! their in-flight traces and receive their final [`SessionReport`] in a
//! `GoAway` frame.
//!
//! Everything network-facing is observable as the `net.*` metric source
//! ([`metrics`]) in the same [`metrics_snapshot`] scrape as the rest of the
//! system.
//!
//! ```no_run
//! use dbtouch_net::{NetServer, TcpClient};
//! use dbtouch_server::{ExplorationClient, ClientSession, ServerConfig};
//!
//! let server = NetServer::serve(
//!     ServerConfig::with_workers(2).with_listen_addr("127.0.0.1:0"),
//! ).unwrap();
//! let client = TcpClient::new(server.local_addr().to_string());
//! let session = client.open_session().unwrap();
//! let report = session.close().unwrap();
//! assert!(report.errors.is_empty());
//! server.shutdown();
//! ```
//!
//! [`ExplorationServer`]: dbtouch_server::ExplorationServer
//! [`SessionReport`]: dbtouch_server::SessionReport
//! [`metrics_snapshot`]: dbtouch_server::ExplorationServer::metrics_snapshot

pub mod admission;
pub mod client;
pub mod codec;
pub mod frame;
pub mod metrics;
pub mod server;

pub use admission::{Admission, Verdict};
pub use client::{TcpClient, TcpSession};
pub use codec::{
    decode_request, decode_response, encode_request, encode_response, Request, Response,
};
pub use frame::{
    checksum, MAX_FRAME_LEN, MAX_HANDSHAKE_LEN, MIN_PROTOCOL_VERSION, PROTOCOL_NAME,
    PROTOCOL_VERSION,
};
pub use metrics::NetInstruments;
pub use server::NetServer;
