//! The TCP serving loop: acceptor, bounded dispatch, per-connection
//! handlers, admission control, graceful drain.
//!
//! [`NetServer::serve`] brings up an in-process [`ExplorationServer`] from
//! the same validated [`ServerConfig`] every other entry point uses, then
//! listens on `config.listen_addr`:
//!
//! * the **acceptor** thread accepts sockets and pushes them into a bounded
//!   queue of `config.accept_backlog` entries — an accept burst beyond the
//!   queue (or beyond `config.max_connections` live connections) receives an
//!   explicit `Shed` frame and is closed, counted in `net.shed`;
//! * the **dispatcher** thread drains the queue and spawns one handler
//!   thread per connection (sessions are cheap: the exploration server
//!   multiplexes them over its fixed worker pool, so a connection thread
//!   only parses frames and blocks on session barriers);
//! * each **handler** speaks the frame protocol: JSON version handshake
//!   first, then binary request/response frames. One connection serves at
//!   most one exploration session. `RunTrace` is acknowledged only after the
//!   server accepted the event, so the bounded per-session queue's
//!   backpressure propagates to the client as TCP flow control.
//!
//! Admission control runs *before* work is queued: `OpenSession` and
//! `RunTrace` consult [`Admission`] against the live metrics snapshot and
//! answer `Shed { retry_after_ms, reason }` when a threshold is tripped.
//!
//! **Graceful drain** ([`NetServer::shutdown`]): the acceptor stops
//! accepting, every handler finishes the frame in flight, closes its session
//! (flushing queued traces through the barrier), sends `GoAway` carrying the
//! final [`SessionReport`], and answers any straggling requests with an
//! error until the client hangs up. Only then is the inner exploration
//! server shut down.

use crate::admission::{Admission, Verdict};
use crate::codec::{decode_request, encode_response, Request, Response};
use crate::frame::{
    read_frame, write_frame, FrameReadError, ReadOutcome, MAX_FRAME_LEN, MAX_HANDSHAKE_LEN,
    MIN_PROTOCOL_VERSION, PROTOCOL_NAME, PROTOCOL_VERSION,
};
use crate::metrics::NetInstruments;
use dbtouch_obs::TraceEventKind;
use dbtouch_server::{
    ExplorationServer, ServerConfig, ServerMetricsSnapshot, SessionHandle, SessionReport,
};
use dbtouch_types::json::{self, Json};
use dbtouch_types::{DbTouchError, Result};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poll interval of the nonblocking acceptor and the handlers' read timeout:
/// the upper bound on how stale the draining flag can be observed.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// The JSON handshake payload, carrying `version` (a client offers its own;
/// a server acks the negotiated `min(client, server)`).
fn hello_json(version: u64) -> String {
    json::object([
        ("proto", Json::String(PROTOCOL_NAME.into())),
        ("version", Json::Number(version as f64)),
    ])
    .pretty()
}

/// Validate a received handshake payload (JSON text after the tag byte) and
/// return the peer's version. Anything down to [`MIN_PROTOCOL_VERSION`] is
/// accepted — both sides then speak `min(peer, own)`, so a v1 peer simply
/// never sees the v2 additions.
pub(crate) fn check_hello(body: &[u8]) -> std::result::Result<u64, String> {
    let text = std::str::from_utf8(body).map_err(|_| "handshake is not UTF-8".to_string())?;
    let parsed = json::parse(text).map_err(|e| format!("handshake is not JSON: {e}"))?;
    match parsed.get("proto").and_then(|p| p.as_str()) {
        Some(PROTOCOL_NAME) => {}
        other => return Err(format!("unknown protocol {other:?}")),
    }
    match parsed.get("version").and_then(|v| v.as_u64()) {
        Some(v) if v >= MIN_PROTOCOL_VERSION => Ok(v),
        other => Err(format!(
            "unsupported protocol version {other:?} \
             (supported: {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})"
        )),
    }
}

/// The `detail` code a `Shed` trace event carries (see
/// [`TraceEventKind::Shed`]): derived from the admission reason text.
fn shed_reason_code(reason: &str) -> u64 {
    if reason.contains("drain") {
        1
    } else if reason.contains("connection") || reason.contains("backlog") {
        2
    } else {
        0
    }
}

struct Shared {
    server: ExplorationServer,
    instruments: Arc<NetInstruments>,
    admission: Admission,
    draining: AtomicBool,
    live_connections: AtomicUsize,
    retry_after_ms: u64,
    drain_timeout: Duration,
}

impl Shared {
    fn update_connection_gauge(&self) {
        self.instruments
            .connections
            .set(self.live_connections.load(Ordering::SeqCst) as u64);
    }
}

/// The network front-end: owns the listener threads and the in-process
/// exploration server they serve.
pub struct NetServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Bring up the exploration server described by `config` and serve it on
    /// `config.listen_addr` (required; use port 0 to let the OS pick).
    pub fn serve(config: ServerConfig) -> Result<NetServer> {
        config.validate()?;
        let addr = config.listen_addr.clone().ok_or_else(|| {
            DbTouchError::InvalidConfig(
                "NetServer::serve requires listen_addr (e.g. \"127.0.0.1:0\")".into(),
            )
        })?;
        let server = ExplorationServer::serve(config.clone())?;
        let instruments = Arc::new(NetInstruments::default());
        server
            .catalog()
            .telemetry()
            .register(Arc::clone(&instruments) as Arc<dyn dbtouch_obs::MetricSource>);

        let listener =
            TcpListener::bind(&addr).map_err(|e| DbTouchError::Io(format!("bind {addr}: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| DbTouchError::Io(format!("local_addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| DbTouchError::Io(format!("set_nonblocking: {e}")))?;

        let shared = Arc::new(Shared {
            server,
            instruments,
            admission: Admission::new(config.shed.clone()),
            draining: AtomicBool::new(false),
            live_connections: AtomicUsize::new(0),
            retry_after_ms: config.shed.retry_after_ms,
            drain_timeout: Duration::from_millis(config.drain_timeout_ms),
        });

        let (tx, rx) = sync_channel::<TcpStream>(config.accept_backlog);
        let max_connections = config.max_connections;

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("net-acceptor".into())
                .spawn(move || accept_loop(&shared, listener, tx, max_connections))
                .map_err(|e| DbTouchError::Io(format!("spawn acceptor: {e}")))?
        };
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("net-dispatcher".into())
                .spawn(move || dispatch_loop(shared, rx))
                .map_err(|e| DbTouchError::Io(format!("spawn dispatcher: {e}")))?
        };

        Ok(NetServer {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            dispatcher: Some(dispatcher),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The live metrics snapshot — `net.*` instruments included, since they
    /// are registered into the served catalog's telemetry hub.
    pub fn metrics_snapshot(&self) -> ServerMetricsSnapshot {
        self.shared.server.metrics_snapshot()
    }

    /// The network layer's own instruments (for tests and benches).
    pub fn instruments(&self) -> &Arc<NetInstruments> {
        &self.shared.instruments
    }

    /// Graceful drain: stop accepting, let every connection flush its
    /// in-flight traces and receive its final report via `GoAway`, then shut
    /// the inner exploration server down. Connections that have not finished
    /// within `config.drain_timeout_ms` are abandoned (their handler threads
    /// die with the process).
    pub fn shutdown(mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        if let Some(d) = self.dispatcher.take() {
            let _ = d.join();
        }
        let deadline = Instant::now() + self.shared.drain_timeout;
        while self.shared.live_connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Handlers decrement the live count just before releasing their
        // reference; retry briefly to win that last race.
        let mut shared = self.shared;
        loop {
            match Arc::try_unwrap(shared) {
                Ok(inner) => {
                    inner.server.shutdown();
                    return;
                }
                Err(back) => {
                    shared = back;
                    if Instant::now() >= deadline {
                        // Stragglers still hold the server; give it up — the
                        // workers park when their queues drain.
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
    }
}

/// Send a response frame, accounting bytes; false when the peer is gone.
fn send(shared: &Shared, stream: &mut TcpStream, resp: &Response) -> bool {
    match write_frame(stream, &encode_response(resp)) {
        Ok(n) => {
            shared.instruments.bytes_out.add(n);
            true
        }
        Err(_) => false,
    }
}

/// Shed a connection before it is served: explicit `Shed` frame, then close.
/// Pre-handshake sheds carry no trace context, but the decision itself is
/// stamped into the event ring so operators can see it server-side.
fn shed_connection(shared: &Shared, mut stream: TcpStream, reason: &str) {
    shared.instruments.shed.inc();
    shared
        .server
        .catalog()
        .telemetry()
        .event(TraceEventKind::Shed, shed_reason_code(reason));
    let resp = Response::Shed {
        retry_after_ms: shared.retry_after_ms,
        reason: reason.into(),
    };
    let _ = write_frame(&mut stream, &encode_response(&resp));
}

fn accept_loop(
    shared: &Shared,
    listener: TcpListener,
    tx: std::sync::mpsc::SyncSender<TcpStream>,
    max_connections: usize,
) {
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.instruments.accepted.inc();
                if shared.live_connections.load(Ordering::SeqCst) >= max_connections {
                    shed_connection(shared, stream, "connection limit reached");
                    continue;
                }
                match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => {
                        shed_connection(shared, stream, "accept backlog full");
                    }
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

fn dispatch_loop(shared: Arc<Shared>, rx: Receiver<TcpStream>) {
    // Bounded by the acceptor: the channel closes when the acceptor exits.
    while let Ok(stream) = rx.recv() {
        if shared.draining.load(Ordering::SeqCst) {
            continue; // queued behind the drain: just close.
        }
        shared.live_connections.fetch_add(1, Ordering::SeqCst);
        shared.update_connection_gauge();
        let conn_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("net-conn".into())
            .spawn(move || {
                // The handler is panic-contained so a bug in one connection
                // cannot wedge the live-connection accounting of the rest.
                let _ = catch_unwind(AssertUnwindSafe(|| handle_connection(&conn_shared, stream)));
                conn_shared.live_connections.fetch_sub(1, Ordering::SeqCst);
                conn_shared.update_connection_gauge();
            });
        if spawned.is_err() {
            // Could not spawn a handler: undo the accounting (the socket
            // moved into the dropped closure and is already closed).
            shared.live_connections.fetch_sub(1, Ordering::SeqCst);
            shared.update_connection_gauge();
        }
    }
}

/// The per-connection protocol loop.
fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));

    // --- handshake -------------------------------------------------------
    let hello = loop {
        match read_frame(&mut stream, MAX_HANDSHAKE_LEN) {
            Ok((ReadOutcome::Frame(p), n)) => {
                shared.instruments.bytes_in.add(n);
                break p;
            }
            Ok((ReadOutcome::Eof, _)) => return,
            Err(FrameReadError::IdleTimeout) => {
                if shared.draining.load(Ordering::SeqCst) {
                    let _ = send(shared, &mut stream, &Response::GoAway(None));
                    return;
                }
            }
            Err(e) => {
                shared.instruments.frame_errors.inc();
                let _ = send(shared, &mut stream, &Response::Error(e.to_string()));
                return;
            }
        }
    };
    if hello.first() != Some(&crate::frame::tag::HELLO) {
        shared.instruments.frame_errors.inc();
        let _ = send(
            shared,
            &mut stream,
            &Response::Error("expected Hello as the first frame".into()),
        );
        return;
    }
    let peer_version = match check_hello(&hello[1..]) {
        Ok(v) => v,
        Err(reason) => {
            shared.instruments.frame_errors.inc();
            let _ = send(shared, &mut stream, &Response::Error(reason));
            return;
        }
    };
    let mut ack = crate::codec::WireWriter::with_tag(crate::frame::tag::HELLO_ACK);
    ack.raw(hello_json(peer_version.min(PROTOCOL_VERSION)).as_bytes());
    match write_frame(&mut stream, &ack.into_bytes()) {
        Ok(n) => shared.instruments.bytes_out.add(n),
        Err(_) => return,
    }

    // --- request loop ----------------------------------------------------
    let mut session: Option<SessionHandle> = None;
    loop {
        match read_frame(&mut stream, MAX_FRAME_LEN) {
            Ok((ReadOutcome::Frame(payload), n)) => {
                shared.instruments.bytes_in.add(n);
                let started = Instant::now();
                let (resp, close_after) = serve_request(shared, &payload, &mut session);
                shared
                    .instruments
                    .frame_nanos
                    .record(started.elapsed().as_nanos() as u64);
                if !send(shared, &mut stream, &resp) || close_after {
                    break;
                }
            }
            Ok((ReadOutcome::Eof, _)) => break,
            Err(FrameReadError::IdleTimeout) => {
                if shared.draining.load(Ordering::SeqCst) {
                    drain_connection(shared, stream, session.take());
                    return;
                }
            }
            Err(e @ (FrameReadError::BadChecksum | FrameReadError::Empty)) => {
                // The stream is still in sync: answer and keep serving.
                shared.instruments.frame_errors.inc();
                if !send(shared, &mut stream, &Response::Error(e.to_string())) {
                    break;
                }
            }
            Err(e @ FrameReadError::Oversize(_)) => {
                shared.instruments.frame_errors.inc();
                let _ = send(shared, &mut stream, &Response::Error(e.to_string()));
                break;
            }
            Err(FrameReadError::Truncated) => {
                shared.instruments.frame_errors.inc();
                break;
            }
            Err(FrameReadError::Io(_)) => break,
        }
    }
    // The peer hung up (or the stream broke) with a session still open:
    // close it so its worker slot frees and its queued traces drain.
    if let Some(s) = session {
        let _ = s.close();
    }
}

/// Serve one decoded request. Returns the response and whether the
/// connection must close afterwards.
fn serve_request(
    shared: &Shared,
    payload: &[u8],
    session: &mut Option<SessionHandle>,
) -> (Response, bool) {
    let decode_started = Instant::now();
    let request = match decode_request(payload) {
        Ok(r) => r,
        Err(e) => {
            shared.instruments.frame_errors.inc();
            return (Response::Error(e.to_string()), false);
        }
    };
    let decode_nanos = decode_started.elapsed().as_nanos() as u64;
    let resp = match request {
        Request::OpenSession => {
            if session.is_some() {
                Response::Error("a session is already open on this connection".into())
            } else {
                match shared
                    .admission
                    .admit_open(&shared.server.metrics_snapshot())
                {
                    Verdict::Shed {
                        retry_after_ms,
                        reason,
                    } => {
                        shared.instruments.shed.inc();
                        shared
                            .server
                            .catalog()
                            .telemetry()
                            .event(TraceEventKind::Shed, shed_reason_code(&reason));
                        Response::Shed {
                            retry_after_ms,
                            reason,
                        }
                    }
                    Verdict::Admit => {
                        let handle = shared.server.open_session();
                        let id = handle.id();
                        *session = Some(handle);
                        Response::SessionOpened(id)
                    }
                }
            }
        }
        Request::SetAction(object, action) => match session {
            Some(s) => match s.set_action(object, action) {
                Ok(()) => Response::Ack,
                Err(e) => Response::Error(e.to_string()),
            },
            None => Response::Error("no session open".into()),
        },
        Request::RunTrace(object, trace, wire) => match session {
            Some(s) => {
                let hub = shared.server.catalog().telemetry();
                // Continue the client's span across the server: the root
                // opens backdated to when the frame hit the decoder, and the
                // decode itself becomes the tree's first child span. (The
                // worker later finds this buffer by the wire ids —
                // ensure_root is idempotent.)
                if let Some(w) = wire {
                    let now = hub.now_nanos();
                    let root_start = now.saturating_sub(decode_nanos);
                    hub.spans()
                        .ensure_root(s.id(), w.trace, w.root_span, root_start);
                    hub.spans().record_span(
                        s.id(),
                        w.trace,
                        0,
                        "decode",
                        root_start,
                        decode_nanos,
                        payload.len() as u64,
                    );
                }
                let admit_started = hub.now_nanos();
                match shared
                    .admission
                    .admit_trace(&shared.server.metrics_snapshot())
                {
                    Verdict::Shed {
                        retry_after_ms,
                        reason,
                    } => {
                        shared.instruments.shed.inc();
                        // Stamp the shed decision with the rejected trace
                        // context so client-side `Overloaded` errors
                        // correlate with server state; the partial span
                        // buffer is dropped, not sampled.
                        match wire {
                            Some(w) => {
                                hub.adopt_trace(s.id(), w.trace);
                                hub.event(TraceEventKind::Shed, shed_reason_code(&reason));
                                hub.end_trace();
                                hub.spans().trace_abort(s.id(), w.trace);
                            }
                            None => {
                                hub.event(TraceEventKind::Shed, shed_reason_code(&reason));
                            }
                        }
                        Response::Shed {
                            retry_after_ms,
                            reason,
                        }
                    }
                    // Acked only after the bounded session queue accepted the
                    // trace: server backpressure becomes client backpressure.
                    Verdict::Admit => {
                        if let Some(w) = wire {
                            let end = hub.now_nanos();
                            hub.spans().record_span(
                                s.id(),
                                w.trace,
                                0,
                                "admission",
                                admit_started,
                                end.saturating_sub(admit_started),
                                0,
                            );
                        }
                        match s.run_trace_traced(object, trace, wire) {
                            Ok(()) => Response::Ack,
                            Err(e) => {
                                if let Some(w) = wire {
                                    hub.spans().trace_abort(s.id(), w.trace);
                                }
                                Response::Error(e.to_string())
                            }
                        }
                    }
                }
            }
            None => Response::Error("no session open".into()),
        },
        Request::Snapshot => match session {
            Some(s) => match s.snapshot() {
                Ok(report) => Response::Report(report),
                Err(e) => Response::Error(e.to_string()),
            },
            None => Response::Error("no session open".into()),
        },
        Request::CloseSession => match session.take() {
            Some(s) => match s.close() {
                Ok(report) => Response::Report(report),
                Err(e) => Response::Error(e.to_string()),
            },
            None => Response::Error("no session open".into()),
        },
        Request::Metrics => {
            Response::MetricsJson(shared.server.metrics_snapshot().to_json().pretty())
        }
        Request::MetricsText => {
            Response::MetricsText(shared.server.metrics_snapshot().render_text())
        }
        Request::DumpTraces => {
            shared.instruments.traces_dumped.inc();
            let retained = shared.server.catalog().telemetry().spans().retained();
            Response::TracesJson(dbtouch_obs::chrome_trace_text(&retained))
        }
    };
    (resp, false)
}

/// Graceful drain of one connection: close the session (a barrier — every
/// queued trace completes and every in-flight refinement lands), deliver the
/// final report in a `GoAway`, then answer any straggling requests with an
/// error until the client hangs up. Waiting for the client's EOF (instead of
/// closing immediately) keeps the kernel from discarding the buffered
/// `GoAway` with a reset.
fn drain_connection(shared: &Shared, mut stream: TcpStream, session: Option<SessionHandle>) {
    let final_report: Option<SessionReport> = session.and_then(|s| s.close().ok());
    if !send(shared, &mut stream, &Response::GoAway(final_report)) {
        return;
    }
    let _ = stream.flush();
    let deadline = Instant::now() + shared.drain_timeout;
    loop {
        match read_frame(&mut stream, MAX_FRAME_LEN) {
            Ok((ReadOutcome::Frame(_), n)) => {
                shared.instruments.bytes_in.add(n);
                if !send(
                    shared,
                    &mut stream,
                    &Response::Error("server is draining".into()),
                ) {
                    return;
                }
            }
            Ok((ReadOutcome::Eof, _)) => return,
            Err(FrameReadError::IdleTimeout) => {
                if Instant::now() >= deadline {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Client-side handshake over a fresh stream (shared with
/// [`crate::client::TcpClient`]). Returns the negotiated protocol version,
/// `min(our version, the server's ack)`.
pub(crate) fn client_handshake(stream: &mut TcpStream) -> Result<u64> {
    let mut hello = crate::codec::WireWriter::with_tag(crate::frame::tag::HELLO);
    hello.raw(hello_json(PROTOCOL_VERSION).as_bytes());
    write_frame(stream, &hello.into_bytes())
        .map_err(|e| DbTouchError::Io(format!("handshake send: {e}")))?;
    loop {
        match read_frame(stream, MAX_HANDSHAKE_LEN) {
            Ok((ReadOutcome::Frame(p), _)) => {
                return match p.first() {
                    Some(&crate::frame::tag::HELLO_ACK) => check_hello(&p[1..])
                        .map(|acked| acked.min(PROTOCOL_VERSION))
                        .map_err(DbTouchError::Remote),
                    Some(&crate::frame::tag::SHED) => match crate::codec::decode_response(&p)? {
                        Response::Shed {
                            retry_after_ms,
                            reason,
                        } => Err(DbTouchError::Overloaded {
                            retry_after_ms,
                            reason,
                        }),
                        _ => Err(DbTouchError::Remote("malformed shed frame".into())),
                    },
                    Some(&crate::frame::tag::ERROR) => match crate::codec::decode_response(&p)? {
                        Response::Error(msg) => Err(DbTouchError::Remote(msg)),
                        _ => Err(DbTouchError::Remote("malformed error frame".into())),
                    },
                    Some(&crate::frame::tag::GO_AWAY) => {
                        Err(DbTouchError::Remote("server is draining".into()))
                    }
                    _ => Err(DbTouchError::Remote(
                        "unexpected frame during handshake".into(),
                    )),
                };
            }
            Ok((ReadOutcome::Eof, _)) => {
                return Err(DbTouchError::Io(
                    "connection closed during handshake".into(),
                ))
            }
            Err(FrameReadError::IdleTimeout) => continue,
            Err(e) => return Err(DbTouchError::Io(format!("handshake read: {e}"))),
        }
    }
}
