//! Binary wire codec: fixed little-endian encodings for every value that
//! crosses the network boundary.
//!
//! The encodings are exact, not approximate: floats travel as their IEEE 754
//! bit patterns, so a [`SessionReport`] decoded from the wire digests
//! ([`SessionReport::result_digest`]) bit-identically to the in-process
//! report it was encoded from. That identity is what makes networked replay
//! verifiable against a sequential kernel replay.
//!
//! The decoder is *total*: any byte sequence either decodes or returns a
//! [`DbTouchError::ParseError`] — never a panic, never an abort. Three
//! defences do all the work:
//!
//! * every read checks the remaining length first;
//! * every length-prefixed sequence is validated against the bytes actually
//!   remaining before any allocation (a forged `u32::MAX` count cannot force
//!   a multi-gigabyte allocation);
//! * recursive structures ([`Predicate`]) carry an explicit depth limit.
//!
//! JSON appears on the wire in exactly two places — the version handshake
//! and the metrics debug dump — both as opaque text payloads; every data
//! structure uses this codec.

use dbtouch_core::kernel::{ObjectId, TouchAction};
use dbtouch_core::operators::aggregate::AggregateKind;
use dbtouch_core::operators::filter::{CompareOp, Predicate};
use dbtouch_core::remote::RemoteStats;
use dbtouch_core::remote_exec::{Contribution, PendingRefinement, RefinementLedger};
use dbtouch_core::result::{FadePolicy, ResultKind, ResultStream, TouchResult};
use dbtouch_core::session::{SessionOutcome, SessionStats};
use dbtouch_gesture::touch::{TouchEvent, TouchPhase};
use dbtouch_gesture::trace::GestureTrace;
use dbtouch_obs::{HistogramSnapshot, WireTraceContext, BUCKETS};
use dbtouch_server::{LatencySample, SessionReport, TraceOutcome};
use dbtouch_types::{DbTouchError, PointCm, Result, RowId, Timestamp, Value};

use crate::frame::tag;

/// Maximum nesting depth of an encoded [`Predicate`] tree.
const MAX_PREDICATE_DEPTH: usize = 64;

fn bad(msg: impl Into<String>) -> DbTouchError {
    DbTouchError::ParseError(msg.into())
}

// ---------------------------------------------------------------------------
// Primitive writer / reader
// ---------------------------------------------------------------------------

/// Append-only little-endian byte writer.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// A writer whose first byte is the frame type tag.
    pub fn with_tag(t: u8) -> WireWriter {
        WireWriter { buf: vec![t] }
    }

    /// The finished payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Exact bit pattern — `decode(encode(x))` is bit-identical, NaNs and
    /// signed zeros included.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub fn boolean(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Length-prefixed count of a following sequence.
    pub fn len(&mut self, n: usize) {
        self.u32(n as u32);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Raw bytes, no length prefix (the frame length already bounds them).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Optional value: presence flag, then the value.
    pub fn opt<T>(&mut self, v: &Option<T>, mut f: impl FnMut(&mut WireWriter, &T)) {
        match v {
            Some(inner) => {
                self.u8(1);
                f(self, inner);
            }
            None => self.u8(0),
        }
    }
}

/// Bounds-checked little-endian byte reader.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless every byte was consumed — catches frames with trailing
    /// garbage that a lenient decoder would silently accept.
    pub fn finish(self) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(bad(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(bad(format!(
                "truncated payload: need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn boolean(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(bad(format!("invalid bool byte {other}"))),
        }
    }

    /// Sequence count, validated against the bytes actually remaining: each
    /// element needs at least `min_elem_bytes`, so a forged count cannot
    /// force an oversized allocation.
    pub fn len(&mut self, min_elem_bytes: usize) -> Result<usize> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(bad(format!(
                "sequence of {n} elements does not fit in {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    pub fn str(&mut self) -> Result<String> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("invalid UTF-8 in string"))
    }

    pub fn opt<T>(
        &mut self,
        mut f: impl FnMut(&mut WireReader<'a>) -> Result<T>,
    ) -> Result<Option<T>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            other => Err(bad(format!("invalid option byte {other}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Gesture types
// ---------------------------------------------------------------------------

fn write_event(w: &mut WireWriter, e: &TouchEvent) {
    w.f64(e.location.x);
    w.f64(e.location.y);
    w.u64(e.timestamp.0);
    w.u8(match e.phase {
        TouchPhase::Began => 0,
        TouchPhase::Moved => 1,
        TouchPhase::Stationary => 2,
        TouchPhase::Ended => 3,
    });
    w.u8(e.finger);
}

fn read_event(r: &mut WireReader<'_>) -> Result<TouchEvent> {
    let x = r.f64()?;
    let y = r.f64()?;
    let timestamp = Timestamp(r.u64()?);
    let phase = match r.u8()? {
        0 => TouchPhase::Began,
        1 => TouchPhase::Moved,
        2 => TouchPhase::Stationary,
        3 => TouchPhase::Ended,
        other => return Err(bad(format!("invalid touch phase {other}"))),
    };
    let finger = r.u8()?;
    Ok(TouchEvent {
        location: PointCm { x, y },
        timestamp,
        phase,
        finger,
    })
}

/// 8+8+8+1+1 bytes per event.
const MIN_EVENT_BYTES: usize = 26;

pub(crate) fn write_trace(w: &mut WireWriter, trace: &GestureTrace) {
    w.str(&trace.target);
    w.len(trace.events.len());
    for e in &trace.events {
        write_event(w, e);
    }
}

pub(crate) fn read_trace(r: &mut WireReader<'_>) -> Result<GestureTrace> {
    let target = r.str()?;
    let n = r.len(MIN_EVENT_BYTES)?;
    let mut trace = GestureTrace::new(target);
    for _ in 0..n {
        trace.push(read_event(r)?);
    }
    Ok(trace)
}

// ---------------------------------------------------------------------------
// Actions, predicates, values
// ---------------------------------------------------------------------------

fn write_kind(w: &mut WireWriter, k: AggregateKind) {
    w.u8(match k {
        AggregateKind::Count => 0,
        AggregateKind::Sum => 1,
        AggregateKind::Avg => 2,
        AggregateKind::Min => 3,
        AggregateKind::Max => 4,
    });
}

fn read_kind(r: &mut WireReader<'_>) -> Result<AggregateKind> {
    Ok(match r.u8()? {
        0 => AggregateKind::Count,
        1 => AggregateKind::Sum,
        2 => AggregateKind::Avg,
        3 => AggregateKind::Min,
        4 => AggregateKind::Max,
        other => return Err(bad(format!("invalid aggregate kind {other}"))),
    })
}

fn write_value(w: &mut WireWriter, v: &Value) {
    match v {
        Value::Int(i) => {
            w.u8(0);
            w.i64(*i);
        }
        Value::Float(f) => {
            w.u8(1);
            w.f64(*f);
        }
        Value::Bool(b) => {
            w.u8(2);
            w.boolean(*b);
        }
        Value::Str(s) => {
            w.u8(3);
            w.str(s);
        }
        Value::Timestamp(t) => {
            w.u8(4);
            w.i64(*t);
        }
    }
}

fn read_value(r: &mut WireReader<'_>) -> Result<Value> {
    Ok(match r.u8()? {
        0 => Value::Int(r.i64()?),
        1 => Value::Float(r.f64()?),
        2 => Value::Bool(r.boolean()?),
        3 => Value::Str(r.str()?),
        4 => Value::Timestamp(r.i64()?),
        other => return Err(bad(format!("invalid value tag {other}"))),
    })
}

fn write_predicate(w: &mut WireWriter, p: &Predicate) {
    match p {
        Predicate::Compare { op, value } => {
            w.u8(0);
            w.u8(match op {
                CompareOp::Eq => 0,
                CompareOp::Ne => 1,
                CompareOp::Lt => 2,
                CompareOp::Le => 3,
                CompareOp::Gt => 4,
                CompareOp::Ge => 5,
            });
            write_value(w, value);
        }
        Predicate::Between { low, high } => {
            w.u8(1);
            write_value(w, low);
            write_value(w, high);
        }
        Predicate::And(ps) => {
            w.u8(2);
            w.len(ps.len());
            for p in ps {
                write_predicate(w, p);
            }
        }
        Predicate::Or(ps) => {
            w.u8(3);
            w.len(ps.len());
            for p in ps {
                write_predicate(w, p);
            }
        }
        Predicate::Not(p) => {
            w.u8(4);
            write_predicate(w, p);
        }
    }
}

fn read_predicate(r: &mut WireReader<'_>, depth: usize) -> Result<Predicate> {
    if depth > MAX_PREDICATE_DEPTH {
        return Err(bad("predicate nesting exceeds maximum depth"));
    }
    Ok(match r.u8()? {
        0 => {
            let op = match r.u8()? {
                0 => CompareOp::Eq,
                1 => CompareOp::Ne,
                2 => CompareOp::Lt,
                3 => CompareOp::Le,
                4 => CompareOp::Gt,
                5 => CompareOp::Ge,
                other => return Err(bad(format!("invalid compare op {other}"))),
            };
            Predicate::Compare {
                op,
                value: read_value(r)?,
            }
        }
        1 => Predicate::Between {
            low: read_value(r)?,
            high: read_value(r)?,
        },
        2 => {
            let n = r.len(2)?;
            let mut ps = Vec::with_capacity(n);
            for _ in 0..n {
                ps.push(read_predicate(r, depth + 1)?);
            }
            Predicate::And(ps)
        }
        3 => {
            let n = r.len(2)?;
            let mut ps = Vec::with_capacity(n);
            for _ in 0..n {
                ps.push(read_predicate(r, depth + 1)?);
            }
            Predicate::Or(ps)
        }
        4 => Predicate::Not(Box::new(read_predicate(r, depth + 1)?)),
        other => return Err(bad(format!("invalid predicate tag {other}"))),
    })
}

pub(crate) fn write_action(w: &mut WireWriter, a: &TouchAction) {
    match a {
        TouchAction::Scan => w.u8(0),
        TouchAction::Aggregate(k) => {
            w.u8(1);
            write_kind(w, *k);
        }
        TouchAction::Summary { half_window, kind } => {
            w.u8(2);
            w.opt(half_window, |w, hw| w.u64(*hw));
            write_kind(w, *kind);
        }
        TouchAction::FilteredScan { predicate } => {
            w.u8(3);
            write_predicate(w, predicate);
        }
        TouchAction::FilteredAggregate { predicate, kind } => {
            w.u8(4);
            write_predicate(w, predicate);
            write_kind(w, *kind);
        }
        TouchAction::Tuple => w.u8(5),
        TouchAction::GroupBy {
            group_attribute,
            value_attribute,
            kind,
        } => {
            w.u8(6);
            w.u64(*group_attribute as u64);
            w.u64(*value_attribute as u64);
            write_kind(w, *kind);
        }
    }
}

pub(crate) fn read_action(r: &mut WireReader<'_>) -> Result<TouchAction> {
    Ok(match r.u8()? {
        0 => TouchAction::Scan,
        1 => TouchAction::Aggregate(read_kind(r)?),
        2 => TouchAction::Summary {
            half_window: r.opt(|r| r.u64())?,
            kind: read_kind(r)?,
        },
        3 => TouchAction::FilteredScan {
            predicate: read_predicate(r, 0)?,
        },
        4 => TouchAction::FilteredAggregate {
            predicate: read_predicate(r, 0)?,
            kind: read_kind(r)?,
        },
        5 => TouchAction::Tuple,
        6 => TouchAction::GroupBy {
            group_attribute: r.u64()? as usize,
            value_attribute: r.u64()? as usize,
            kind: read_kind(r)?,
        },
        other => return Err(bad(format!("invalid action tag {other}"))),
    })
}

// ---------------------------------------------------------------------------
// Results, stats, outcomes
// ---------------------------------------------------------------------------

fn write_result(w: &mut WireWriter, res: &TouchResult) {
    w.u64(res.row.0);
    w.f64(res.position_fraction);
    w.len(res.values.len());
    for v in &res.values {
        write_value(w, v);
    }
    w.u64(res.produced_at.0);
    w.u8(match res.kind {
        ResultKind::Scan => 0,
        ResultKind::RunningAggregate => 1,
        ResultKind::Summary => 2,
        ResultKind::FilteredScan => 3,
        ResultKind::JoinMatch => 4,
        ResultKind::GroupResult => 5,
        ResultKind::Tuple => 6,
    });
}

fn read_result(r: &mut WireReader<'_>) -> Result<TouchResult> {
    let row = RowId(r.u64()?);
    let position_fraction = r.f64()?;
    let n = r.len(9)?; // value tag + at least 8 bytes
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(read_value(r)?);
    }
    let produced_at = Timestamp(r.u64()?);
    let kind = match r.u8()? {
        0 => ResultKind::Scan,
        1 => ResultKind::RunningAggregate,
        2 => ResultKind::Summary,
        3 => ResultKind::FilteredScan,
        4 => ResultKind::JoinMatch,
        5 => ResultKind::GroupResult,
        6 => ResultKind::Tuple,
        other => return Err(bad(format!("invalid result kind {other}"))),
    };
    Ok(TouchResult {
        row,
        position_fraction,
        values,
        produced_at,
        kind,
    })
}

fn write_stream(w: &mut WireWriter, s: &ResultStream) {
    let fade = s.fade();
    w.u64(fade.visible_ms);
    w.u64(fade.fade_ms);
    w.len(s.len());
    for res in s.results() {
        write_result(w, res);
    }
}

fn read_stream(r: &mut WireReader<'_>) -> Result<ResultStream> {
    let fade = FadePolicy {
        visible_ms: r.u64()?,
        fade_ms: r.u64()?,
    };
    // row + fraction + value count + produced_at + kind.
    let n = r.len(8 + 8 + 4 + 8 + 1)?;
    let mut stream = ResultStream::new(fade);
    for _ in 0..n {
        stream.push(read_result(r)?);
    }
    Ok(stream)
}

fn write_remote_stats(w: &mut WireWriter, s: &RemoteStats) {
    w.u64(s.local_requests);
    w.u64(s.remote_requests);
    w.u64(s.progressive_requests);
    w.u64(s.rows_shipped);
    w.u64(s.remote_wait_micros);
}

fn read_remote_stats(r: &mut WireReader<'_>) -> Result<RemoteStats> {
    Ok(RemoteStats {
        local_requests: r.u64()?,
        remote_requests: r.u64()?,
        progressive_requests: r.u64()?,
        rows_shipped: r.u64()?,
        remote_wait_micros: r.u64()?,
    })
}

fn write_stats(w: &mut WireWriter, s: &SessionStats) {
    w.u64(s.touches);
    w.u64(s.gesture_events);
    w.u64(s.entries_returned);
    w.u64(s.rows_touched);
    w.u64(s.bytes_touched);
    w.u64(s.duplicate_touches);
    w.u64(s.zooms);
    w.u64(s.rotations);
    w.u64(s.prefetches_issued);
    w.u64(s.refinements);
    w.u64(s.index_skips);
    w.u64(s.segments_scanned);
    w.u64(s.pruned_segments);
    w.u64(s.simulated_access_nanos);
    w.u64(s.compute_nanos);
    w.u64(s.max_touch_nanos);
    w.len(s.sample_level_usage.len());
    for (&level, &count) in &s.sample_level_usage {
        w.u8(level);
        w.u64(count);
    }
    w.u64(s.cache_hits);
    w.u64(s.cache_misses);
    w.u64(s.shared_cache_hits);
    w.u64(s.shared_cache_misses);
    w.u64(s.shared_cache_inserts);
    write_remote_stats(w, &s.remote);
    w.u64(s.remote_blocked_micros);
    w.u64(s.remote_refinements_applied);
    w.u64(s.remote_refinements_dropped);
}

// Field-by-field assignment keeps the read order literally aligned with
// `write_stats` above; a struct literal cannot interleave the mid-stream
// `sample_level_usage` map decode at its wire position.
#[allow(clippy::field_reassign_with_default)]
fn read_stats(r: &mut WireReader<'_>) -> Result<SessionStats> {
    let mut s = SessionStats::default();
    s.touches = r.u64()?;
    s.gesture_events = r.u64()?;
    s.entries_returned = r.u64()?;
    s.rows_touched = r.u64()?;
    s.bytes_touched = r.u64()?;
    s.duplicate_touches = r.u64()?;
    s.zooms = r.u64()?;
    s.rotations = r.u64()?;
    s.prefetches_issued = r.u64()?;
    s.refinements = r.u64()?;
    s.index_skips = r.u64()?;
    s.segments_scanned = r.u64()?;
    s.pruned_segments = r.u64()?;
    s.simulated_access_nanos = r.u64()?;
    s.compute_nanos = r.u64()?;
    s.max_touch_nanos = r.u64()?;
    let n = r.len(9)?;
    for _ in 0..n {
        let level = r.u8()?;
        let count = r.u64()?;
        s.sample_level_usage.insert(level, count);
    }
    s.cache_hits = r.u64()?;
    s.cache_misses = r.u64()?;
    s.shared_cache_hits = r.u64()?;
    s.shared_cache_misses = r.u64()?;
    s.shared_cache_inserts = r.u64()?;
    s.remote = read_remote_stats(r)?;
    s.remote_blocked_micros = r.u64()?;
    s.remote_refinements_applied = r.u64()?;
    s.remote_refinements_dropped = r.u64()?;
    Ok(s)
}

fn write_contribution(w: &mut WireWriter, c: &Contribution) {
    match c {
        Contribution::Ready {
            count,
            sum,
            min,
            max,
        } => {
            w.u8(0);
            w.u64(*count);
            w.f64(*sum);
            w.opt(min, |w, v| w.f64(*v));
            w.opt(max, |w, v| w.f64(*v));
        }
        Contribution::Pending { ticket } => {
            w.u8(1);
            w.u64(*ticket);
        }
        Contribution::Dropped { ticket } => {
            w.u8(2);
            w.u64(*ticket);
        }
    }
}

fn read_contribution(r: &mut WireReader<'_>) -> Result<Contribution> {
    Ok(match r.u8()? {
        0 => Contribution::Ready {
            count: r.u64()?,
            sum: r.f64()?,
            min: r.opt(|r| r.f64())?,
            max: r.opt(|r| r.f64())?,
        },
        1 => Contribution::Pending { ticket: r.u64()? },
        2 => Contribution::Dropped { ticket: r.u64()? },
        other => return Err(bad(format!("invalid contribution tag {other}"))),
    })
}

fn write_outcome(w: &mut WireWriter, o: &SessionOutcome) {
    write_stream(w, &o.results);
    write_stats(w, &o.stats);
    w.opt(&o.final_aggregate, |w, v| w.f64(*v));
    w.len(o.final_groups.len());
    for (group, value) in &o.final_groups {
        write_value(w, group);
        w.f64(*value);
    }
    w.len(o.pending.len());
    for p in &o.pending {
        w.u64(p.ticket);
        w.u64(p.object_identity);
        w.u64(p.result_index);
        w.u64(p.contrib_index);
        write_kind(w, p.kind);
        w.u8(p.level);
    }
    w.opt(&o.ledger.kind, |w, k| write_kind(w, *k));
    w.len(o.ledger.contribs.len());
    for c in &o.ledger.contribs {
        write_contribution(w, c);
    }
}

fn read_outcome(r: &mut WireReader<'_>) -> Result<SessionOutcome> {
    let results = read_stream(r)?;
    let stats = read_stats(r)?;
    let final_aggregate = r.opt(|r| r.f64())?;
    let n = r.len(9 + 8)?;
    let mut final_groups = Vec::with_capacity(n);
    for _ in 0..n {
        let group = read_value(r)?;
        let value = r.f64()?;
        final_groups.push((group, value));
    }
    let n = r.len(8 * 4 + 2)?;
    let mut pending = Vec::with_capacity(n);
    for _ in 0..n {
        pending.push(PendingRefinement {
            ticket: r.u64()?,
            object_identity: r.u64()?,
            result_index: r.u64()?,
            contrib_index: r.u64()?,
            kind: read_kind(r)?,
            level: r.u8()?,
        });
    }
    let kind = r.opt(read_kind)?;
    let n = r.len(9)?;
    let mut contribs = Vec::with_capacity(n);
    for _ in 0..n {
        contribs.push(read_contribution(r)?);
    }
    Ok(SessionOutcome {
        results,
        stats,
        final_aggregate,
        final_groups,
        pending,
        ledger: RefinementLedger { kind, contribs },
    })
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

fn write_histogram(w: &mut WireWriter, h: &HistogramSnapshot) {
    w.u64(h.count());
    w.u64(h.sum());
    w.u64(h.raw_min());
    w.u64(h.max());
    let counts = h.bucket_counts();
    let nonzero = counts.iter().filter(|&&c| c != 0).count();
    w.len(nonzero);
    for (i, &c) in counts.iter().enumerate() {
        if c != 0 {
            w.u8(i as u8);
            w.u64(c);
        }
    }
}

fn read_histogram(r: &mut WireReader<'_>) -> Result<HistogramSnapshot> {
    let count = r.u64()?;
    let sum = r.u64()?;
    let raw_min = r.u64()?;
    let max = r.u64()?;
    let n = r.len(9)?;
    let mut buckets = [0u64; BUCKETS];
    for _ in 0..n {
        let idx = r.u8()? as usize;
        let c = r.u64()?;
        if idx >= BUCKETS {
            return Err(bad(format!("histogram bucket index {idx} out of range")));
        }
        buckets[idx] = c;
    }
    Ok(HistogramSnapshot::from_parts(
        buckets, count, sum, raw_min, max,
    ))
}

pub(crate) fn write_report(w: &mut WireWriter, rep: &SessionReport) {
    w.u64(rep.session_id);
    w.len(rep.outcomes.len());
    for t in &rep.outcomes {
        w.u64(t.object.0);
        write_outcome(w, &t.outcome);
    }
    w.len(rep.latencies.len());
    for l in &rep.latencies {
        w.u64(l.nanos);
        w.u64(l.touches);
        w.u64(l.max_touch_nanos);
    }
    write_histogram(w, &rep.latency_hist);
    w.u64(rep.max_touch_nanos);
    w.len(rep.epochs.len());
    for &e in &rep.epochs {
        w.u64(e);
    }
    w.u64(rep.restructures_seen);
    w.len(rep.refinement_latencies.len());
    for &l in &rep.refinement_latencies {
        w.u64(l);
    }
    w.u64(rep.refinement_blocked_nanos);
    w.len(rep.errors.len());
    for e in &rep.errors {
        w.str(e);
    }
}

pub(crate) fn read_report(r: &mut WireReader<'_>) -> Result<SessionReport> {
    let session_id = r.u64()?;
    let n = r.len(8)?;
    let mut outcomes = Vec::with_capacity(n);
    for _ in 0..n {
        let object = ObjectId(r.u64()?);
        let outcome = read_outcome(r)?;
        outcomes.push(TraceOutcome { object, outcome });
    }
    let n = r.len(24)?;
    let mut latencies = Vec::with_capacity(n);
    for _ in 0..n {
        latencies.push(LatencySample {
            nanos: r.u64()?,
            touches: r.u64()?,
            max_touch_nanos: r.u64()?,
        });
    }
    let latency_hist = read_histogram(r)?;
    let max_touch_nanos = r.u64()?;
    let n = r.len(8)?;
    let mut epochs = Vec::with_capacity(n);
    for _ in 0..n {
        epochs.push(r.u64()?);
    }
    let restructures_seen = r.u64()?;
    let n = r.len(8)?;
    let mut refinement_latencies = Vec::with_capacity(n);
    for _ in 0..n {
        refinement_latencies.push(r.u64()?);
    }
    let refinement_blocked_nanos = r.u64()?;
    let n = r.len(4)?;
    let mut errors = Vec::with_capacity(n);
    for _ in 0..n {
        errors.push(r.str()?);
    }
    Ok(SessionReport {
        session_id,
        outcomes,
        latencies,
        latency_hist,
        max_touch_nanos,
        epochs,
        restructures_seen,
        refinement_latencies,
        refinement_blocked_nanos,
        errors,
    })
}

// ---------------------------------------------------------------------------
// Request / response payloads
// ---------------------------------------------------------------------------

/// A decoded request frame.
#[derive(Debug)]
pub enum Request {
    /// Open the connection's session.
    OpenSession,
    /// Set the touch action for an object.
    SetAction(ObjectId, TouchAction),
    /// Run one gesture trace, optionally carrying the client-stamped trace
    /// context (v2; absent on v1 wires — encodes as zero extra bytes).
    RunTrace(ObjectId, GestureTrace, Option<WireTraceContext>),
    /// Barrier + copy of the session report.
    Snapshot,
    /// Close the session, returning the final report.
    CloseSession,
    /// The server's metrics snapshot as JSON text.
    Metrics,
    /// Retained span trees as Chrome trace-event JSON (v2).
    DumpTraces,
    /// The metrics snapshot as flat text exposition (v2).
    MetricsText,
}

/// A decoded response frame.
#[derive(Debug)]
pub enum Response {
    /// The session is open; carries its id.
    SessionOpened(u64),
    /// The request completed with nothing to return.
    Ack,
    /// A session report (snapshot or close).
    Report(SessionReport),
    /// Metrics snapshot, JSON text.
    MetricsJson(String),
    /// The request failed; the connection stays usable.
    Error(String),
    /// Admission control rejected the request.
    Shed {
        /// Suggested client backoff, milliseconds.
        retry_after_ms: u64,
        /// The admission signal that tripped.
        reason: String,
    },
    /// The server is draining; optionally carries the final session report.
    GoAway(Option<SessionReport>),
    /// Chrome trace-event JSON of retained span trees (v2).
    TracesJson(String),
    /// Metrics snapshot as flat text exposition (v2).
    MetricsText(String),
}

/// Encode a request into a frame payload (tag byte first).
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::OpenSession => vec![tag::OPEN_SESSION],
        Request::SetAction(object, action) => {
            let mut w = WireWriter::with_tag(tag::SET_ACTION);
            w.u64(object.0);
            write_action(&mut w, action);
            w.into_bytes()
        }
        Request::RunTrace(object, trace, ctx) => {
            let mut w = WireWriter::with_tag(tag::RUN_TRACE);
            w.u64(object.0);
            write_trace(&mut w, trace);
            // v2 trailer: absent encodes as *zero* bytes, so a context-free
            // frame is byte-identical to what a v1 peer produces and expects.
            if let Some(ctx) = ctx {
                w.u8(1);
                w.u64(ctx.trace);
                w.u64(ctx.root_span);
            }
            w.into_bytes()
        }
        Request::Snapshot => vec![tag::SNAPSHOT],
        Request::CloseSession => vec![tag::CLOSE_SESSION],
        Request::Metrics => vec![tag::METRICS],
        Request::DumpTraces => vec![tag::DUMP_TRACES],
        Request::MetricsText => vec![tag::METRICS_TEXT],
    }
}

/// Decode a request frame payload. Total: malformed bytes produce
/// [`DbTouchError::ParseError`], never a panic.
pub fn decode_request(payload: &[u8]) -> Result<Request> {
    let mut r = WireReader::new(payload);
    let req = match r.u8()? {
        tag::OPEN_SESSION => Request::OpenSession,
        tag::SET_ACTION => {
            let object = ObjectId(r.u64()?);
            let action = read_action(&mut r)?;
            Request::SetAction(object, action)
        }
        tag::RUN_TRACE => {
            let object = ObjectId(r.u64()?);
            let trace = read_trace(&mut r)?;
            // Nothing left = a v1 frame (or v2 without tracing): no context.
            let ctx = if r.remaining() == 0 {
                None
            } else {
                match r.u8()? {
                    1 => Some(WireTraceContext {
                        trace: r.u64()?,
                        root_span: r.u64()?,
                    }),
                    other => return Err(bad(format!("bad trace-context presence byte {other}"))),
                }
            };
            Request::RunTrace(object, trace, ctx)
        }
        tag::SNAPSHOT => Request::Snapshot,
        tag::CLOSE_SESSION => Request::CloseSession,
        tag::METRICS => Request::Metrics,
        tag::DUMP_TRACES => Request::DumpTraces,
        tag::METRICS_TEXT => Request::MetricsText,
        other => return Err(bad(format!("unknown request frame type 0x{other:02x}"))),
    };
    r.finish()?;
    Ok(req)
}

/// Encode a response into a frame payload (tag byte first).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::SessionOpened(id) => {
            let mut w = WireWriter::with_tag(tag::SESSION_OPENED);
            w.u64(*id);
            w.into_bytes()
        }
        Response::Ack => vec![tag::ACK],
        Response::Report(rep) => {
            let mut w = WireWriter::with_tag(tag::REPORT);
            write_report(&mut w, rep);
            w.into_bytes()
        }
        Response::MetricsJson(text) => {
            let mut w = WireWriter::with_tag(tag::METRICS_JSON);
            w.str(text);
            w.into_bytes()
        }
        Response::Error(msg) => {
            let mut w = WireWriter::with_tag(tag::ERROR);
            w.str(msg);
            w.into_bytes()
        }
        Response::Shed {
            retry_after_ms,
            reason,
        } => {
            let mut w = WireWriter::with_tag(tag::SHED);
            w.u64(*retry_after_ms);
            w.str(reason);
            w.into_bytes()
        }
        Response::GoAway(report) => {
            let mut w = WireWriter::with_tag(tag::GO_AWAY);
            w.opt(report, write_report);
            w.into_bytes()
        }
        Response::TracesJson(text) => {
            let mut w = WireWriter::with_tag(tag::TRACES_JSON);
            w.str(text);
            w.into_bytes()
        }
        Response::MetricsText(text) => {
            let mut w = WireWriter::with_tag(tag::METRICS_TEXT_REPLY);
            w.str(text);
            w.into_bytes()
        }
    }
}

/// Decode a response frame payload. Total, like [`decode_request`].
pub fn decode_response(payload: &[u8]) -> Result<Response> {
    let mut r = WireReader::new(payload);
    let resp = match r.u8()? {
        tag::SESSION_OPENED => Response::SessionOpened(r.u64()?),
        tag::ACK => Response::Ack,
        tag::REPORT => Response::Report(read_report(&mut r)?),
        tag::METRICS_JSON => Response::MetricsJson(r.str()?),
        tag::ERROR => Response::Error(r.str()?),
        tag::SHED => Response::Shed {
            retry_after_ms: r.u64()?,
            reason: r.str()?,
        },
        tag::GO_AWAY => Response::GoAway(r.opt(read_report)?),
        tag::TRACES_JSON => Response::TracesJson(r.str()?),
        tag::METRICS_TEXT_REPLY => Response::MetricsText(r.str()?),
        other => return Err(bad(format!("unknown response frame type 0x{other:02x}"))),
    };
    r.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtouch_gesture::synthesizer::GestureSynthesizer;
    use dbtouch_types::SizeCm;

    fn sample_trace() -> GestureTrace {
        let view =
            dbtouch_gesture::view::View::for_column("col", 1_000, SizeCm::new(2.0, 10.0)).unwrap();
        GestureSynthesizer::new(60.0).slide_down(&view, 0.4)
    }

    #[test]
    fn trace_roundtrip_is_exact() {
        let trace = sample_trace();
        let mut w = WireWriter::default();
        write_trace(&mut w, &trace);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let back = read_trace(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn action_roundtrip_covers_every_variant() {
        let actions = vec![
            TouchAction::Scan,
            TouchAction::Tuple,
            TouchAction::Aggregate(AggregateKind::Avg),
            TouchAction::Summary {
                half_window: Some(32),
                kind: AggregateKind::Max,
            },
            TouchAction::Summary {
                half_window: None,
                kind: AggregateKind::Count,
            },
            TouchAction::FilteredScan {
                predicate: Predicate::And(vec![
                    Predicate::compare(CompareOp::Ge, 10.0),
                    Predicate::Not(Box::new(Predicate::Between {
                        low: Value::Int(3),
                        high: Value::Int(7),
                    })),
                    Predicate::Or(vec![Predicate::compare(CompareOp::Ne, Value::Bool(true))]),
                ]),
            },
            TouchAction::FilteredAggregate {
                predicate: Predicate::compare(CompareOp::Lt, Value::Str("zz".into())),
                kind: AggregateKind::Sum,
            },
            TouchAction::GroupBy {
                group_attribute: 2,
                value_attribute: 5,
                kind: AggregateKind::Min,
            },
        ];
        for action in actions {
            let mut w = WireWriter::default();
            write_action(&mut w, &action);
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            let back = read_action(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(action, back);
        }
    }

    #[test]
    fn value_roundtrip_preserves_float_bits() {
        for v in [
            Value::Float(f64::NAN),
            Value::Float(-0.0),
            Value::Float(f64::INFINITY),
            Value::Int(i64::MIN),
            Value::Timestamp(-1),
            Value::Str("αβγ".into()),
        ] {
            let mut w = WireWriter::default();
            write_value(&mut w, &v);
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            let back = read_value(&mut r).unwrap();
            if let (Value::Float(a), Value::Float(b)) = (&v, &back) {
                assert_eq!(a.to_bits(), b.to_bits());
            } else {
                assert_eq!(v, back);
            }
        }
    }

    #[test]
    fn predicate_depth_limit_rejects_deep_nesting() {
        let mut p = Predicate::compare(CompareOp::Eq, 1.0);
        for _ in 0..(MAX_PREDICATE_DEPTH + 2) {
            p = Predicate::Not(Box::new(p));
        }
        let mut w = WireWriter::default();
        write_predicate(&mut w, &p);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(read_predicate(&mut r, 0).is_err());
    }

    #[test]
    fn histogram_roundtrip_is_exact() {
        let mut h = HistogramSnapshot::new();
        for v in [0, 1, 1, 7, 300, 1_000_000, u64::MAX / 2] {
            h.record(v);
        }
        let mut w = WireWriter::default();
        write_histogram(&mut w, &h);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let back = read_histogram(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(h, back);

        // Empty histogram too (min sentinel must survive).
        let empty = HistogramSnapshot::new();
        let mut w = WireWriter::default();
        write_histogram(&mut w, &empty);
        let bytes = w.into_bytes();
        let back = read_histogram(&mut WireReader::new(&bytes)).unwrap();
        assert_eq!(empty, back);
        assert_eq!(back.min(), None);
    }

    #[test]
    fn request_response_roundtrip() {
        let req = Request::RunTrace(ObjectId(4), sample_trace(), None);
        match decode_request(&encode_request(&req)).unwrap() {
            Request::RunTrace(object, trace, ctx) => {
                assert_eq!(object, ObjectId(4));
                assert_eq!(trace, sample_trace());
                assert_eq!(ctx, None);
            }
            other => panic!("wrong decode: {other:?}"),
        }

        let resp = Response::Shed {
            retry_after_ms: 250,
            reason: "live sessions at cap".into(),
        };
        match decode_response(&encode_response(&resp)).unwrap() {
            Response::Shed {
                retry_after_ms,
                reason,
            } => {
                assert_eq!(retry_after_ms, 250);
                assert_eq!(reason, "live sessions at cap");
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn decoder_is_total_on_malformed_bytes() {
        // Truncations of a valid frame at every length.
        let valid = encode_request(&Request::RunTrace(ObjectId(1), sample_trace(), None));
        for cut in 0..valid.len().min(200) {
            let _ = decode_request(&valid[..cut]); // must not panic
        }
        // Trailing garbage is rejected.
        let mut padded = encode_request(&Request::Snapshot);
        padded.push(0xee);
        assert!(decode_request(&padded).is_err());
        // A forged huge sequence count cannot allocate: the count exceeds
        // the remaining bytes and fails fast.
        let mut forged = vec![tag::RUN_TRACE];
        forged.extend_from_slice(&7u64.to_le_bytes());
        forged.extend_from_slice(&1u32.to_le_bytes());
        forged.push(b'c');
        forged.extend_from_slice(&u32::MAX.to_le_bytes()); // event count
        assert!(decode_request(&forged).is_err());
        // Unknown tags.
        assert!(decode_request(&[0x7f]).is_err());
        assert!(decode_response(&[0x7f]).is_err());
    }

    #[test]
    fn trace_context_roundtrips_and_absence_is_v1_identical() {
        let ctx = WireTraceContext {
            trace: dbtouch_obs::CLIENT_ID_BIT | 7,
            root_span: dbtouch_obs::CLIENT_ID_BIT | 8,
        };
        let with = encode_request(&Request::RunTrace(ObjectId(2), sample_trace(), Some(ctx)));
        match decode_request(&with).unwrap() {
            Request::RunTrace(_, _, decoded) => assert_eq!(decoded, Some(ctx)),
            other => panic!("wrong decode: {other:?}"),
        }
        // An absent context adds no bytes: the frame is exactly the v1
        // encoding, so old peers decode it unchanged.
        let without = encode_request(&Request::RunTrace(ObjectId(2), sample_trace(), None));
        assert_eq!(with.len(), without.len() + 17);
        assert_eq!(&with[..without.len()], &without[..]);
        // A corrupt presence byte is rejected, not panicked on.
        let mut forged = without.clone();
        forged.push(9);
        assert!(decode_request(&forged).is_err());

        // The v2 admin requests round-trip.
        assert!(matches!(
            decode_request(&encode_request(&Request::DumpTraces)).unwrap(),
            Request::DumpTraces
        ));
        assert!(matches!(
            decode_request(&encode_request(&Request::MetricsText)).unwrap(),
            Request::MetricsText
        ));
        match decode_response(&encode_response(&Response::TracesJson("{}".into()))).unwrap() {
            Response::TracesJson(text) => assert_eq!(text, "{}"),
            other => panic!("wrong decode: {other:?}"),
        }
        match decode_response(&encode_response(&Response::MetricsText("a 1\n".into()))).unwrap() {
            Response::MetricsText(text) => assert_eq!(text, "a 1\n"),
            other => panic!("wrong decode: {other:?}"),
        }
    }
}
