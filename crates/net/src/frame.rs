//! Frame layer: length-prefixed, checksummed binary frames over a byte
//! stream.
//!
//! Every frame on the wire is
//!
//! ```text
//! [u32 LE payload length][payload][u32 LE checksum over payload]
//! ```
//!
//! where the payload's first byte is the frame type tag and the checksum is
//! FNV-1a 64 folded to 32 bits — the same hash family the session digests
//! use, so a corrupted frame is caught at the transport boundary instead of
//! surfacing as a digest mismatch three layers up.
//!
//! The reader distinguishes the failure modes the serving layer treats
//! differently:
//!
//! * clean EOF at a frame boundary — the peer hung up, [`ReadOutcome::Eof`];
//! * EOF mid-frame — [`FrameReadError::Truncated`], the connection is dead;
//! * an oversize length prefix — [`FrameReadError::Oversize`]; the remaining
//!   stream cannot be trusted, the connection must close;
//! * a checksum mismatch — [`FrameReadError::BadChecksum`]; the full frame
//!   *was* consumed, so the stream is still in sync and the connection can
//!   carry an error response and keep serving;
//! * a read timeout before the first byte of a frame —
//!   [`FrameReadError::IdleTimeout`], the hook graceful drain polls on.
//!
//! None of these panic: every byte of the payload is attacker-controlled and
//! the decoder above this layer is likewise total.

use std::io::{ErrorKind, Read, Write};

/// Protocol name carried in the JSON handshake frame.
pub const PROTOCOL_NAME: &str = "dbtouch-net";
/// Protocol version carried in the JSON handshake frame. Version 2 adds the
/// optional trace context on `RunTrace` and the `DumpTraces`/`MetricsText`
/// requests; both sides speak `min(client, server)` after the handshake.
pub const PROTOCOL_VERSION: u64 = 2;
/// Oldest peer version still interoperable: a v1 peer simply never sees the
/// v2 additions (the trace context encodes as zero extra bytes when absent).
pub const MIN_PROTOCOL_VERSION: u64 = 1;

/// Hard cap on a handshake (Hello/HelloAck) payload.
pub const MAX_HANDSHAKE_LEN: usize = 4 << 10;
/// Hard cap on any other frame payload. Reports of long sessions are large
/// (result streams), but nothing legitimate approaches this.
pub const MAX_FRAME_LEN: usize = 256 << 20;

/// Frame type tags (first payload byte).
pub mod tag {
    /// Client → server: JSON `{"proto": "dbtouch-net", "version": 2}`.
    pub const HELLO: u8 = 0x01;
    /// Server → client: JSON echo of the accepted protocol and the
    /// *negotiated* version, `min(client, server)`.
    pub const HELLO_ACK: u8 = 0x02;

    /// Request: open one exploration session on this connection.
    pub const OPEN_SESSION: u8 = 0x10;
    /// Request: set the touch action for an object.
    pub const SET_ACTION: u8 = 0x11;
    /// Request: run one gesture trace (acked only once enqueued, so server
    /// backpressure becomes client backpressure).
    pub const RUN_TRACE: u8 = 0x12;
    /// Request: barrier + copy of the session report.
    pub const SNAPSHOT: u8 = 0x13;
    /// Request: close the session, returning its final report.
    pub const CLOSE_SESSION: u8 = 0x14;
    /// Request: the server's metrics snapshot as JSON text (debug dump).
    pub const METRICS: u8 = 0x15;
    /// Request (v2): retained span trees as Chrome trace-event JSON.
    pub const DUMP_TRACES: u8 = 0x16;
    /// Request (v2): the metrics snapshot as flat text exposition.
    pub const METRICS_TEXT: u8 = 0x17;

    /// Response: session opened, body carries the session id.
    pub const SESSION_OPENED: u8 = 0x20;
    /// Response: request done, nothing to return.
    pub const ACK: u8 = 0x21;
    /// Response: a binary-encoded [`SessionReport`].
    ///
    /// [`SessionReport`]: dbtouch_server::SessionReport
    pub const REPORT: u8 = 0x22;
    /// Response: metrics snapshot as JSON text.
    pub const METRICS_JSON: u8 = 0x23;
    /// Response: the request failed; body is the rendered error. The
    /// connection stays usable.
    pub const ERROR: u8 = 0x24;
    /// Response: admission control rejected the request; body carries
    /// `retry_after_ms` and the tripped signal.
    pub const SHED: u8 = 0x25;
    /// Response: the server is draining; body optionally carries the final
    /// session report. No further requests will be served.
    pub const GO_AWAY: u8 = 0x26;
    /// Response (v2): Chrome trace-event JSON of retained span trees.
    pub const TRACES_JSON: u8 = 0x27;
    /// Response (v2): metrics snapshot as flat text exposition.
    pub const METRICS_TEXT_REPLY: u8 = 0x28;
}

/// FNV-1a 64 folded to 32 bits — the per-frame checksum.
pub fn checksum(payload: &[u8]) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in payload {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h ^ (h >> 32)) as u32
}

/// A successfully read event from the stream.
#[derive(Debug)]
pub enum ReadOutcome {
    /// One checksum-verified frame payload (first byte is the type tag).
    Frame(Vec<u8>),
    /// Clean EOF at a frame boundary: the peer closed the connection.
    Eof,
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameReadError {
    /// EOF in the middle of a frame: the peer died mid-send.
    Truncated,
    /// The length prefix exceeds the allowed maximum. The stream position
    /// after this error is undefined — the connection must close.
    Oversize(usize),
    /// A zero-length payload (a frame must at least carry its type tag).
    /// The stream stays in sync.
    Empty,
    /// The payload was fully consumed but its checksum did not match. The
    /// stream stays in sync — the connection can answer and continue.
    BadChecksum,
    /// The read timed out before the first byte of a new frame arrived.
    /// The stream stays in sync; used to poll a drain flag between frames.
    IdleTimeout,
    /// Any other I/O failure (connection reset, …).
    Io(String),
}

impl std::fmt::Display for FrameReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameReadError::Truncated => write!(f, "connection closed mid-frame"),
            FrameReadError::Oversize(len) => write!(f, "frame length {len} exceeds maximum"),
            FrameReadError::Empty => write!(f, "empty frame payload"),
            FrameReadError::BadChecksum => write!(f, "frame checksum mismatch"),
            FrameReadError::IdleTimeout => write!(f, "idle timeout between frames"),
            FrameReadError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

/// Read exactly `buf.len()` bytes. `consumed_any` reports whether any byte of
/// the current frame was already consumed: a timeout with nothing consumed is
/// the benign [`FrameReadError::IdleTimeout`]; once inside a frame, timeouts
/// keep the read alive (a slow peer is not a protocol error).
fn read_exact_tracking(
    r: &mut impl Read,
    buf: &mut [u8],
    consumed_any: &mut bool,
) -> Result<bool, FrameReadError> {
    let mut pos = 0;
    while pos < buf.len() {
        match r.read(&mut buf[pos..]) {
            Ok(0) => return Ok(false), // EOF
            Ok(n) => {
                pos += n;
                *consumed_any = true;
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if !*consumed_any {
                    return Err(FrameReadError::IdleTimeout);
                }
                // Mid-frame timeout: keep waiting for the rest.
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameReadError::Io(e.to_string())),
        }
    }
    Ok(true)
}

/// Read one frame. Returns the number of wire bytes consumed alongside the
/// outcome so callers can account `net.bytes_in` without wrapping the stream.
pub fn read_frame(r: &mut impl Read, max_len: usize) -> Result<(ReadOutcome, u64), FrameReadError> {
    let mut consumed_any = false;
    let mut header = [0u8; 4];
    if !read_exact_tracking(r, &mut header, &mut consumed_any)? {
        return if consumed_any {
            Err(FrameReadError::Truncated)
        } else {
            Ok((ReadOutcome::Eof, 0))
        };
    }
    let len = u32::from_le_bytes(header) as usize;
    if len == 0 {
        // Consume the trailing checksum to stay in sync, then report.
        let mut trailer = [0u8; 4];
        if !read_exact_tracking(r, &mut trailer, &mut consumed_any)? {
            return Err(FrameReadError::Truncated);
        }
        return Err(FrameReadError::Empty);
    }
    if len > max_len {
        return Err(FrameReadError::Oversize(len));
    }
    let mut payload = vec![0u8; len];
    if !read_exact_tracking(r, &mut payload, &mut consumed_any)? {
        return Err(FrameReadError::Truncated);
    }
    let mut trailer = [0u8; 4];
    if !read_exact_tracking(r, &mut trailer, &mut consumed_any)? {
        return Err(FrameReadError::Truncated);
    }
    let wire_bytes = (8 + len) as u64;
    if u32::from_le_bytes(trailer) != checksum(&payload) {
        return Err(FrameReadError::BadChecksum);
    }
    Ok((ReadOutcome::Frame(payload), wire_bytes))
}

/// Write one frame; returns the number of wire bytes written.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<u64> {
    debug_assert!(!payload.is_empty(), "a frame must carry its type tag");
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&checksum(payload).to_le_bytes())?;
    w.flush()?;
    Ok((8 + payload.len()) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_one_frame() {
        let mut buf = Vec::new();
        let written = write_frame(&mut buf, &[tag::ACK, 1, 2, 3]).unwrap();
        assert_eq!(written, buf.len() as u64);
        let mut cursor = Cursor::new(buf);
        let (outcome, read) = read_frame(&mut cursor, MAX_FRAME_LEN).unwrap();
        assert_eq!(read, written);
        match outcome {
            ReadOutcome::Frame(p) => assert_eq!(p, vec![tag::ACK, 1, 2, 3]),
            other => panic!("unexpected outcome: {other:?}"),
        }
        // And a clean EOF right after.
        let (outcome, _) = read_frame(&mut cursor, MAX_FRAME_LEN).unwrap();
        assert!(matches!(outcome, ReadOutcome::Eof));
    }

    #[test]
    fn checksum_differs_on_flip() {
        let a = checksum(b"hello frames");
        let mut corrupted = b"hello frames".to_vec();
        corrupted[3] ^= 0x40;
        assert_ne!(a, checksum(&corrupted));
        assert_ne!(checksum(b""), checksum(b"\0"));
    }

    #[test]
    fn bad_checksum_keeps_stream_in_sync() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[tag::ACK, 9]).unwrap();
        let second_at = buf.len();
        write_frame(&mut buf, &[tag::ERROR, 7]).unwrap();
        buf[5] ^= 0xff; // corrupt the first frame's payload
        let mut cursor = Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor, MAX_FRAME_LEN),
            Err(FrameReadError::BadChecksum)
        ));
        // The reader consumed exactly the corrupt frame; the next one parses.
        assert_eq!(cursor.position() as usize, second_at);
        let (outcome, _) = read_frame(&mut cursor, MAX_FRAME_LEN).unwrap();
        match outcome {
            ReadOutcome::Frame(p) => assert_eq!(p, vec![tag::ERROR, 7]),
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn truncated_and_oversize_and_empty() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[tag::ACK, 1, 2, 3, 4]).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            read_frame(&mut Cursor::new(buf), MAX_FRAME_LEN),
            Err(FrameReadError::Truncated)
        ));

        let huge = (u32::MAX).to_le_bytes().to_vec();
        assert!(matches!(
            read_frame(&mut Cursor::new(huge), MAX_FRAME_LEN),
            Err(FrameReadError::Oversize(_))
        ));

        let mut empty = 0u32.to_le_bytes().to_vec();
        empty.extend_from_slice(&checksum(&[]).to_le_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(empty), MAX_FRAME_LEN),
            Err(FrameReadError::Empty)
        ));
    }
}
