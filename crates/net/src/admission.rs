//! Admission control: decide from live telemetry whether to serve or shed.
//!
//! The serving layer never queues work it cannot absorb. Before an
//! `OpenSession` or `RunTrace` is admitted, the thresholds in [`ShedConfig`]
//! are checked against the *live* [`metrics_snapshot`] signals — the same
//! numbers an operator sees on the dashboard:
//!
//! * `server.sessions_opened - server.sessions_closed` — live sessions,
//!   gating new sessions;
//! * `remote_exec.backlog` — the remote executor's queued refinements,
//!   gating all traffic;
//! * `server.touch_nanos` p99 — the per-touch latency distribution, the
//!   paper's interactivity ceiling turned into an admission signal.
//!
//! A tripped threshold produces a [`Verdict::Shed`] that the connection
//! handler turns into an explicit `Shed` frame with a suggested backoff —
//! the client sees *why* it was rejected and when to retry, instead of an
//! unbounded queue silently eating its latency budget.
//!
//! [`metrics_snapshot`]: dbtouch_server::ExplorationServer::metrics_snapshot

use dbtouch_server::{ServerMetricsSnapshot, ShedConfig};

/// The admission decision for one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Serve the request.
    Admit,
    /// Reject the request up front.
    Shed {
        /// Suggested client backoff, milliseconds.
        retry_after_ms: u64,
        /// The signal that tripped, human-readable.
        reason: String,
    },
}

impl Verdict {
    /// True when the request was admitted.
    pub fn is_admit(&self) -> bool {
        matches!(self, Verdict::Admit)
    }
}

/// Stateless evaluator of [`ShedConfig`] thresholds against a metrics
/// snapshot.
#[derive(Debug, Clone)]
pub struct Admission {
    shed: ShedConfig,
}

impl Admission {
    pub fn new(shed: ShedConfig) -> Admission {
        Admission { shed }
    }

    fn shed_with(&self, reason: String) -> Verdict {
        Verdict::Shed {
            retry_after_ms: self.shed.retry_after_ms,
            reason,
        }
    }

    /// Pressure checks shared by every request kind: remote-executor backlog
    /// and the server-wide per-touch p99.
    fn check_pressure(&self, snapshot: &ServerMetricsSnapshot) -> Verdict {
        if let Some(max) = self.shed.max_remote_backlog {
            let backlog = snapshot.scalar("remote_exec.backlog").unwrap_or(0);
            if backlog >= max {
                return self.shed_with(format!(
                    "remote executor backlog {backlog} at or above limit {max}"
                ));
            }
        }
        if let Some(max) = self.shed.max_touch_p99_nanos {
            if let Some(hist) = snapshot.histogram("server.touch_nanos") {
                if hist.count() > 0 {
                    let p99 = hist.quantile(99.0);
                    if p99 > max {
                        return self
                            .shed_with(format!("per-touch p99 {p99}ns above limit {max}ns"));
                    }
                }
            }
        }
        Verdict::Admit
    }

    /// Decide whether a new session may open.
    pub fn admit_open(&self, snapshot: &ServerMetricsSnapshot) -> Verdict {
        if let Some(max) = self.shed.max_live_sessions {
            let opened = snapshot.scalar("server.sessions_opened").unwrap_or(0);
            let closed = snapshot.scalar("server.sessions_closed").unwrap_or(0);
            let live = opened.saturating_sub(closed);
            if live >= max {
                return self.shed_with(format!("{live} live sessions at or above limit {max}"));
            }
        }
        self.check_pressure(snapshot)
    }

    /// Decide whether a trace submission may proceed.
    pub fn admit_trace(&self, snapshot: &ServerMetricsSnapshot) -> Verdict {
        self.check_pressure(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtouch_core::catalog::SharedCatalog;
    use dbtouch_server::{ExplorationServer, ServerConfig};
    use dbtouch_types::KernelConfig;
    use std::sync::Arc;

    fn server() -> ExplorationServer {
        let catalog = Arc::new(SharedCatalog::new(KernelConfig::default()));
        ExplorationServer::serve(ServerConfig::with_workers(1).with_catalog(catalog)).unwrap()
    }

    #[test]
    fn unlimited_config_admits_everything() {
        let server = server();
        let admission = Admission::new(ShedConfig::default());
        let snap = server.metrics_snapshot();
        assert!(admission.admit_open(&snap).is_admit());
        assert!(admission.admit_trace(&snap).is_admit());
        server.shutdown();
    }

    #[test]
    fn live_session_cap_sheds_opens_but_not_traces() {
        let server = server();
        let admission = Admission::new(ShedConfig {
            max_live_sessions: Some(1),
            retry_after_ms: 42,
            ..ShedConfig::default()
        });
        let session = server.open_session();
        let snap = server.metrics_snapshot();
        match admission.admit_open(&snap) {
            Verdict::Shed {
                retry_after_ms,
                reason,
            } => {
                assert_eq!(retry_after_ms, 42);
                assert!(reason.contains("live sessions"), "reason: {reason}");
            }
            Verdict::Admit => panic!("expected shed at the session cap"),
        }
        // The cap gates new sessions only; existing traffic still flows.
        assert!(admission.admit_trace(&snap).is_admit());
        session.close().unwrap();
        // With the session closed, opens are admitted again.
        let snap = server.metrics_snapshot();
        assert!(admission.admit_open(&snap).is_admit());
        server.shutdown();
    }

    #[test]
    fn zero_backlog_limit_sheds_all_traffic() {
        let server = server();
        let admission = Admission::new(ShedConfig {
            max_remote_backlog: Some(0),
            ..ShedConfig::default()
        });
        let snap = server.metrics_snapshot();
        assert!(!admission.admit_trace(&snap).is_admit());
        assert!(!admission.admit_open(&snap).is_admit());
        server.shutdown();
    }
}
