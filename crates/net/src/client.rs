//! The TCP transport of the [`ExplorationClient`] API.
//!
//! [`TcpClient`] is the network twin of the in-process
//! [`ExplorationServer`]: the same two traits, so any driver written against
//! [`ExplorationClient`]/[`ClientSession`] (e.g.
//! `dbtouch_workload::drive_plans_over`) runs unchanged over the wire. Each
//! [`TcpSession`] owns one connection — the server serves one session per
//! connection, so the session's ordering and backpressure guarantees map
//! one-to-one onto the TCP stream.
//!
//! Load shedding surfaces as [`DbTouchError::Overloaded`] with the server's
//! suggested backoff; a graceful server drain surfaces as
//! [`DbTouchError::Remote`], with the final session report (delivered in
//! the server's `GoAway`) retrievable via [`TcpSession::take_goaway_report`]
//! so no completed work is lost.
//!
//! [`ExplorationServer`]: dbtouch_server::ExplorationServer
//! [`ExplorationClient`]: dbtouch_server::ExplorationClient
//! [`ClientSession`]: dbtouch_server::ClientSession

use crate::codec::{decode_response, encode_request, Request, Response};
use crate::frame::{read_frame, write_frame, FrameReadError, ReadOutcome, MAX_FRAME_LEN};
use crate::server::client_handshake;
use dbtouch_core::kernel::{ObjectId, TouchAction};
use dbtouch_gesture::trace::GestureTrace;
use dbtouch_obs::{WireTraceContext, CLIENT_ID_BIT};
use dbtouch_server::{ClientSession, ExplorationClient, SessionId, SessionReport};
use dbtouch_types::json::{self, Json};
use dbtouch_types::{DbTouchError, Result};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Process-wide sequence for client-minted trace and span ids. The high bit
/// ([`CLIENT_ID_BIT`]) marks ids minted on this side of the wire, so they can
/// never collide with the server's own trace counter.
static CLIENT_ID_SEQ: AtomicU64 = AtomicU64::new(1);

fn mint_client_id() -> u64 {
    CLIENT_ID_SEQ.fetch_add(1, Ordering::Relaxed) | CLIENT_ID_BIT
}

/// A client of a remote exploration server. Holds only the address; every
/// [`open_session`](ExplorationClient::open_session) and
/// [`metrics_json`](ExplorationClient::metrics_json) dials its own
/// connection.
#[derive(Debug, Clone)]
pub struct TcpClient {
    addr: String,
}

impl TcpClient {
    /// A client for `addr` (e.g. `"127.0.0.1:7411"`). No I/O happens until a
    /// session is opened.
    pub fn new(addr: impl Into<String>) -> TcpClient {
        TcpClient { addr: addr.into() }
    }

    /// The server address this client dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Dial and complete the version handshake, retrying until `timeout`
    /// elapses — lets a client race a server that is still binding (the
    /// two-process smoke test) without an external sleep.
    pub fn wait_ready(&self, timeout: Duration) -> Result<()> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.dial() {
                Ok(_) => return Ok(()),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }

    fn dial(&self) -> Result<(TcpStream, u64)> {
        let mut stream = TcpStream::connect(&self.addr)
            .map_err(|e| DbTouchError::Io(format!("connect {}: {e}", self.addr)))?;
        let _ = stream.set_nodelay(true);
        let version = client_handshake(&mut stream)?;
        Ok((stream, version))
    }

    /// Fetch the server's retained span trees as Chrome trace-event JSON
    /// (loadable in Perfetto / `chrome://tracing`). Requires a v2 server.
    pub fn dump_traces(&self) -> Result<Json> {
        let (mut stream, version) = self.dial()?;
        if version < 2 {
            return Err(DbTouchError::Remote(format!(
                "server speaks protocol v{version}; DumpTraces needs v2"
            )));
        }
        match request(&mut stream, &Request::DumpTraces)? {
            Response::TracesJson(text) => {
                json::parse(&text).map_err(|e| DbTouchError::Remote(format!("bad trace JSON: {e}")))
            }
            Response::Error(msg) => Err(DbTouchError::Remote(msg)),
            other => Err(unexpected("TracesJson", &other)),
        }
    }

    /// Fetch the metrics snapshot in Prometheus-style text exposition.
    /// Requires a v2 server.
    pub fn metrics_text(&self) -> Result<String> {
        let (mut stream, version) = self.dial()?;
        if version < 2 {
            return Err(DbTouchError::Remote(format!(
                "server speaks protocol v{version}; MetricsText needs v2"
            )));
        }
        match request(&mut stream, &Request::MetricsText)? {
            Response::MetricsText(text) => Ok(text),
            Response::Error(msg) => Err(DbTouchError::Remote(msg)),
            other => Err(unexpected("MetricsText", &other)),
        }
    }
}

/// One exploration session over one TCP connection.
#[derive(Debug)]
pub struct TcpSession {
    stream: TcpStream,
    id: SessionId,
    /// Protocol version both sides agreed to speak in the handshake.
    version: u64,
    /// Trace ids this session stamped into `RunTrace` frames, in send order.
    stamped_traces: Vec<u64>,
    /// The final report delivered by a server `GoAway` during drain.
    goaway_report: Option<SessionReport>,
}

/// Send one request and read its response.
fn request(stream: &mut TcpStream, req: &Request) -> Result<Response> {
    write_frame(stream, &encode_request(req))
        .map_err(|e| DbTouchError::Io(format!("send: {e}")))?;
    loop {
        match read_frame(stream, MAX_FRAME_LEN) {
            Ok((ReadOutcome::Frame(p), _)) => return decode_response(&p),
            Ok((ReadOutcome::Eof, _)) => {
                return Err(DbTouchError::Io("connection closed by server".into()))
            }
            // The client keeps blocking reads; a timeout only appears if the
            // caller configured one — treat it as "keep waiting".
            Err(FrameReadError::IdleTimeout) => continue,
            Err(e) => return Err(DbTouchError::Io(format!("receive: {e}"))),
        }
    }
}

impl TcpSession {
    /// Dispatch one request, translating the error-ish responses: `Shed` →
    /// [`DbTouchError::Overloaded`], `Error` → [`DbTouchError::Remote`],
    /// `GoAway` → [`DbTouchError::Remote`] with the final report stashed.
    fn call(&mut self, req: &Request) -> Result<Response> {
        match request(&mut self.stream, req)? {
            Response::Shed {
                retry_after_ms,
                reason,
            } => Err(DbTouchError::Overloaded {
                retry_after_ms,
                reason,
            }),
            Response::Error(msg) => Err(DbTouchError::Remote(msg)),
            Response::GoAway(report) => {
                self.goaway_report = report;
                Err(DbTouchError::Remote(
                    "server is draining; final report delivered via GoAway".into(),
                ))
            }
            other => Ok(other),
        }
    }

    /// The final [`SessionReport`] a draining server delivered in its
    /// `GoAway`, if one arrived. The session closed server-side; every trace
    /// acknowledged before the drain is reflected in this report.
    pub fn take_goaway_report(&mut self) -> Option<SessionReport> {
        self.goaway_report.take()
    }

    /// Protocol version negotiated with the server (min of both sides).
    pub fn protocol_version(&self) -> u64 {
        self.version
    }

    /// Trace ids this session stamped into its `RunTrace` frames, in send
    /// order. All carry [`CLIENT_ID_BIT`]; server-side span trees for those
    /// gestures carry these exact ids. Empty on a v1 connection.
    pub fn stamped_trace_ids(&self) -> &[u64] {
        &self.stamped_traces
    }
}

impl ClientSession for TcpSession {
    fn id(&self) -> SessionId {
        self.id
    }

    fn set_action(&mut self, object: ObjectId, action: TouchAction) -> Result<()> {
        match self.call(&Request::SetAction(object, action))? {
            Response::Ack => Ok(()),
            other => Err(unexpected("Ack", &other)),
        }
    }

    fn run_trace(&mut self, object: ObjectId, trace: GestureTrace) -> Result<()> {
        // v2 peers get a client-minted trace context so the server's span
        // tree carries an id the client can correlate; v1 frames stay
        // byte-identical to the old encoding.
        let ctx = (self.version >= 2).then(|| {
            let wire = WireTraceContext {
                trace: mint_client_id(),
                root_span: mint_client_id(),
            };
            self.stamped_traces.push(wire.trace);
            wire
        });
        match self.call(&Request::RunTrace(object, trace, ctx))? {
            Response::Ack => Ok(()),
            other => Err(unexpected("Ack", &other)),
        }
    }

    fn snapshot(&mut self) -> Result<SessionReport> {
        match self.call(&Request::Snapshot)? {
            Response::Report(report) => Ok(report),
            other => Err(unexpected("Report", &other)),
        }
    }

    fn close(mut self) -> Result<SessionReport> {
        match self.call(&Request::CloseSession) {
            Ok(Response::Report(report)) => Ok(report),
            Ok(other) => Err(unexpected("Report", &other)),
            // A drain raced the close: the server closed the session for us
            // and delivered the final report in its GoAway.
            Err(e) => match self.goaway_report.take() {
                Some(report) => Ok(report),
                None => Err(e),
            },
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> DbTouchError {
    let got = match got {
        Response::SessionOpened(_) => "SessionOpened",
        Response::Ack => "Ack",
        Response::Report(_) => "Report",
        Response::MetricsJson(_) => "MetricsJson",
        Response::MetricsText(_) => "MetricsText",
        Response::TracesJson(_) => "TracesJson",
        Response::Error(_) => "Error",
        Response::Shed { .. } => "Shed",
        Response::GoAway(_) => "GoAway",
    };
    DbTouchError::Remote(format!("expected {wanted} response, got {got}"))
}

impl ExplorationClient for TcpClient {
    type Session = TcpSession;

    fn open_session(&self) -> Result<TcpSession> {
        let (mut stream, version) = self.dial()?;
        match request(&mut stream, &Request::OpenSession)? {
            Response::SessionOpened(id) => Ok(TcpSession {
                stream,
                id,
                version,
                stamped_traces: Vec::new(),
                goaway_report: None,
            }),
            Response::Shed {
                retry_after_ms,
                reason,
            } => Err(DbTouchError::Overloaded {
                retry_after_ms,
                reason,
            }),
            Response::Error(msg) => Err(DbTouchError::Remote(msg)),
            Response::GoAway(_) => Err(DbTouchError::Remote("server is draining".into())),
            other => Err(unexpected("SessionOpened", &other)),
        }
    }

    fn metrics_json(&self) -> Result<Json> {
        let (mut stream, _) = self.dial()?;
        match request(&mut stream, &Request::Metrics)? {
            Response::MetricsJson(text) => json::parse(&text)
                .map_err(|e| DbTouchError::Remote(format!("bad metrics JSON: {e}"))),
            Response::Error(msg) => Err(DbTouchError::Remote(msg)),
            other => Err(unexpected("MetricsJson", &other)),
        }
    }
}
