//! The runtime value model.
//!
//! A [`Value`] is a single cell as delivered to the user: when a touch is mapped
//! to a tuple identifier, the kernel reads the underlying fixed-width field and
//! materializes it as a `Value` that the front-end can display (and fade out).

use crate::datatype::DataType;
use crate::error::{DbTouchError, Result};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A single materialized cell value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// UTF-8 string (already stripped of fixed-width padding).
    Str(String),
    /// Timestamp in milliseconds since an arbitrary epoch.
    Timestamp(i64),
}

impl Value {
    /// The data type this value most naturally belongs to. `FixedStr` width is
    /// reported as the string's byte length.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int64,
            Value::Float(_) => DataType::Float64,
            Value::Bool(_) => DataType::Bool,
            Value::Str(s) => DataType::FixedStr(s.len().min(u16::MAX as usize) as u16),
            Value::Timestamp(_) => DataType::TimestampMillis,
        }
    }

    /// Interpret the value as a double, which is how running aggregates are
    /// accumulated. Strings and booleans are not numeric.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Int(v) => Ok(*v as f64),
            Value::Float(v) => Ok(*v),
            Value::Timestamp(v) => Ok(*v as f64),
            other => Err(DbTouchError::TypeMismatch {
                expected: "numeric".to_string(),
                found: other.data_type().name(),
            }),
        }
    }

    /// Interpret the value as an integer, truncating floats.
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            Value::Float(v) => Ok(*v as i64),
            Value::Timestamp(v) => Ok(*v),
            other => Err(DbTouchError::TypeMismatch {
                expected: "integer".to_string(),
                found: other.data_type().name(),
            }),
        }
    }

    /// True if the value is numeric (int, float or timestamp).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_) | Value::Timestamp(_))
    }

    /// Total ordering used by filters and group-by on mixed numeric values.
    /// Numeric values compare by their `f64` interpretation; other comparisons
    /// fall back to type-then-value ordering so that sorting is always defined.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self.as_f64(), other.as_f64()) {
            (Ok(a), Ok(b)) => a.total_cmp(&b),
            _ => match (self, other) {
                (Value::Str(a), Value::Str(b)) => a.cmp(b),
                (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
                _ => self.type_rank().cmp(&other.type_rank()),
            },
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Bool(_) => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 2,
            Value::Timestamp(_) => 3,
            Value::Str(_) => 4,
        }
    }

    /// Encode into a fixed-width byte buffer of exactly `dt.width_bytes()` bytes.
    /// Used by the storage layer to build dense matrixes.
    pub fn encode(&self, dt: DataType) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; dt.width_bytes()];
        match (self, dt) {
            (Value::Int(v), DataType::Int64) => buf.copy_from_slice(&v.to_le_bytes()),
            (Value::Timestamp(v), DataType::TimestampMillis) => {
                buf.copy_from_slice(&v.to_le_bytes())
            }
            (Value::Float(v), DataType::Float64) => buf.copy_from_slice(&v.to_le_bytes()),
            (Value::Bool(v), DataType::Bool) => buf[0] = u8::from(*v),
            (Value::Str(s), DataType::FixedStr(w)) => {
                let bytes = s.as_bytes();
                if bytes.len() > w as usize {
                    return Err(DbTouchError::TypeMismatch {
                        expected: format!("str{w}"),
                        found: format!("str of {} bytes", bytes.len()),
                    });
                }
                buf[..bytes.len()].copy_from_slice(bytes);
            }
            (v, dt) => {
                return Err(DbTouchError::TypeMismatch {
                    expected: dt.name(),
                    found: v.data_type().name(),
                })
            }
        }
        Ok(buf)
    }

    /// Decode a fixed-width byte buffer previously produced by [`Value::encode`].
    pub fn decode(bytes: &[u8], dt: DataType) -> Result<Value> {
        if bytes.len() != dt.width_bytes() {
            return Err(DbTouchError::Internal(format!(
                "decode: expected {} bytes for {dt}, got {}",
                dt.width_bytes(),
                bytes.len()
            )));
        }
        Ok(match dt {
            DataType::Int64 => Value::Int(i64::from_le_bytes(bytes.try_into().unwrap())),
            DataType::TimestampMillis => {
                Value::Timestamp(i64::from_le_bytes(bytes.try_into().unwrap()))
            }
            DataType::Float64 => Value::Float(f64::from_le_bytes(bytes.try_into().unwrap())),
            DataType::Bool => Value::Bool(bytes[0] != 0),
            DataType::FixedStr(_) => {
                let end = bytes.iter().position(|&b| b == 0).unwrap_or(bytes.len());
                Value::Str(String::from_utf8_lossy(&bytes[..end]).into_owned())
            }
        })
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
            Value::Timestamp(v) => write!(f, "@{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn as_f64_numeric() {
        assert_eq!(Value::Int(4).as_f64().unwrap(), 4.0);
        assert_eq!(Value::Float(2.5).as_f64().unwrap(), 2.5);
        assert_eq!(Value::Timestamp(7).as_f64().unwrap(), 7.0);
        assert!(Value::Str("x".into()).as_f64().is_err());
        assert!(Value::Bool(true).as_f64().is_err());
    }

    #[test]
    fn as_i64_truncates_floats() {
        assert_eq!(Value::Float(2.9).as_i64().unwrap(), 2);
        assert_eq!(Value::Int(-3).as_i64().unwrap(), -3);
        assert!(Value::Bool(false).as_i64().is_err());
    }

    #[test]
    fn encode_decode_int_round_trip() {
        let v = Value::Int(-123456789);
        let bytes = v.encode(DataType::Int64).unwrap();
        assert_eq!(bytes.len(), 8);
        assert_eq!(Value::decode(&bytes, DataType::Int64).unwrap(), v);
    }

    #[test]
    fn encode_decode_float_round_trip() {
        let v = Value::Float(3.25);
        let bytes = v.encode(DataType::Float64).unwrap();
        assert_eq!(Value::decode(&bytes, DataType::Float64).unwrap(), v);
    }

    #[test]
    fn encode_decode_str_round_trip_with_padding() {
        let v = Value::Str("hi".into());
        let bytes = v.encode(DataType::FixedStr(8)).unwrap();
        assert_eq!(bytes.len(), 8);
        assert_eq!(
            Value::decode(&bytes, DataType::FixedStr(8)).unwrap(),
            Value::Str("hi".into())
        );
    }

    #[test]
    fn encode_str_too_long_fails() {
        let v = Value::Str("toolongvalue".into());
        assert!(v.encode(DataType::FixedStr(4)).is_err());
    }

    #[test]
    fn encode_type_mismatch_fails() {
        assert!(Value::Int(1).encode(DataType::Float64).is_err());
        assert!(Value::Bool(true).encode(DataType::Int64).is_err());
    }

    #[test]
    fn decode_wrong_width_fails() {
        assert!(Value::decode(&[0u8; 4], DataType::Int64).is_err());
    }

    #[test]
    fn total_cmp_mixed_numeric() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).total_cmp(&Value::Int(3)), Ordering::Equal);
        assert_eq!(
            Value::Str("b".into()).total_cmp(&Value::Str("a".into())),
            Ordering::Greater
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Str("abc".into()).to_string(), "abc");
        assert_eq!(Value::Timestamp(9).to_string(), "@9");
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Value::from(1i64), Value::Int(1));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
    }

    #[test]
    fn bool_encode_decode() {
        for b in [true, false] {
            let v = Value::Bool(b);
            let bytes = v.encode(DataType::Bool).unwrap();
            assert_eq!(Value::decode(&bytes, DataType::Bool).unwrap(), v);
        }
    }
}
