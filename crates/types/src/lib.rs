//! # dbtouch-types
//!
//! Shared foundation types for the dbTouch reproduction: the value and data-type
//! model used by the storage engine, tuple identifiers, screen geometry expressed
//! in centimetres (the paper describes data objects by their physical size on the
//! touch screen), timestamps, configuration, and the common error type.
//!
//! Everything in this crate is deliberately small and dependency-free so that the
//! substrates (`dbtouch-storage`, `dbtouch-gesture`) and the kernel
//! (`dbtouch-core`) can share vocabulary without cyclic dependencies.

pub mod config;
pub mod datatype;
pub mod error;
pub mod geometry;
pub mod json;
pub mod rowid;
pub mod time;
pub mod value;

pub use config::{KernelConfig, RemoteSplitConfig};
pub use datatype::DataType;
pub use error::{DbTouchError, Result};
pub use geometry::{Centimeters, Orientation, PointCm, Rect, SizeCm};
pub use rowid::{RowId, RowRange};
pub use time::{Millis, Timestamp};
pub use value::Value;
