//! Tuple identifiers and row ranges.
//!
//! Section 2.4 of the paper ("From Touch to Tuple Identifiers") defines the core
//! translation: a touch at location `t` over an object of size `o` representing
//! `n` tuples addresses tuple identifier `id = n * t / o` (the Rule of Three).
//! `RowId` is the result of that mapping; `RowRange` captures the `[id-k, id+k]`
//! windows used by interactive summaries and the regions used by the cache and
//! prefetcher.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Range;

/// A tuple identifier (0-based position in a column or table).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct RowId(pub u64);

impl RowId {
    /// The zero row id.
    pub const ZERO: RowId = RowId(0);

    /// Underlying index as `usize` for slice indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Saturating addition: never exceeds `u64::MAX`.
    pub fn saturating_add(self, delta: u64) -> RowId {
        RowId(self.0.saturating_add(delta))
    }

    /// Saturating subtraction: never goes below zero.
    pub fn saturating_sub(self, delta: u64) -> RowId {
        RowId(self.0.saturating_sub(delta))
    }

    /// Clamp the row id to `[0, len)`. Returns `None` if `len == 0`.
    pub fn clamp_to(self, len: u64) -> Option<RowId> {
        if len == 0 {
            None
        } else {
            Some(RowId(self.0.min(len - 1)))
        }
    }

    /// Absolute distance (in rows) between two row ids.
    pub fn distance(self, other: RowId) -> u64 {
        self.0.abs_diff(other.0)
    }
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u64> for RowId {
    fn from(v: u64) -> Self {
        RowId(v)
    }
}

impl From<usize> for RowId {
    fn from(v: usize) -> Self {
        RowId(v as u64)
    }
}

/// A half-open range of row identifiers `[start, end)`.
///
/// Used for interactive-summary windows, cache regions and prefetch requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RowRange {
    /// First row in the range.
    pub start: u64,
    /// One past the last row in the range.
    pub end: u64,
}

impl RowRange {
    /// Create a new range; if `start > end` the range is normalized to empty at
    /// `start`.
    pub fn new(start: u64, end: u64) -> RowRange {
        if start > end {
            RowRange { start, end: start }
        } else {
            RowRange { start, end }
        }
    }

    /// An empty range positioned at `at`.
    pub fn empty(at: u64) -> RowRange {
        RowRange { start: at, end: at }
    }

    /// The centred window `[center-k, center+k]` (inclusive of both ends),
    /// clamped to `[0, len)`. This is exactly the interactive-summary window of
    /// Section 2.7. Returns an empty range when `len == 0`.
    pub fn window(center: RowId, k: u64, len: u64) -> RowRange {
        if len == 0 {
            return RowRange::empty(0);
        }
        let c = center.0.min(len - 1);
        let start = c.saturating_sub(k);
        let end = (c.saturating_add(k).saturating_add(1)).min(len);
        RowRange { start, end }
    }

    /// Number of rows covered.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True if no rows are covered.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// True if the row lies inside the range.
    pub fn contains(&self, row: RowId) -> bool {
        row.0 >= self.start && row.0 < self.end
    }

    /// True if the two ranges share at least one row.
    pub fn overlaps(&self, other: &RowRange) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Intersection of two ranges (possibly empty).
    pub fn intersect(&self, other: &RowRange) -> RowRange {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        RowRange::new(start, end)
    }

    /// Smallest range covering both inputs.
    pub fn union_hull(&self, other: &RowRange) -> RowRange {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        RowRange::new(self.start.min(other.start), self.end.max(other.end))
    }

    /// Clamp the range to `[0, len)`.
    pub fn clamp_to(&self, len: u64) -> RowRange {
        RowRange::new(self.start.min(len), self.end.min(len))
    }

    /// Iterate over the row ids in the range.
    pub fn iter(&self) -> impl Iterator<Item = RowId> {
        (self.start..self.end).map(RowId)
    }

    /// Convert to a `std::ops::Range<usize>` for slicing.
    pub fn as_usize_range(&self) -> Range<usize> {
        self.start as usize..self.end as usize
    }
}

impl fmt::Display for RowRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

impl From<Range<u64>> for RowRange {
    fn from(r: Range<u64>) -> Self {
        RowRange::new(r.start, r.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rowid_saturating_math() {
        assert_eq!(RowId(5).saturating_sub(10), RowId(0));
        assert_eq!(RowId(u64::MAX).saturating_add(1), RowId(u64::MAX));
        assert_eq!(RowId(3).saturating_add(4), RowId(7));
    }

    #[test]
    fn rowid_clamp() {
        assert_eq!(RowId(10).clamp_to(5), Some(RowId(4)));
        assert_eq!(RowId(2).clamp_to(5), Some(RowId(2)));
        assert_eq!(RowId(0).clamp_to(0), None);
    }

    #[test]
    fn rowid_distance_symmetric() {
        assert_eq!(RowId(3).distance(RowId(10)), 7);
        assert_eq!(RowId(10).distance(RowId(3)), 7);
        assert_eq!(RowId(4).distance(RowId(4)), 0);
    }

    #[test]
    fn range_normalizes_inverted() {
        let r = RowRange::new(10, 5);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn window_centred() {
        // center 10, k 2, len 100 -> [8, 13)
        let w = RowRange::window(RowId(10), 2, 100);
        assert_eq!(w, RowRange::new(8, 13));
        assert_eq!(w.len(), 5);
    }

    #[test]
    fn window_clamped_at_start_and_end() {
        assert_eq!(RowRange::window(RowId(1), 5, 100), RowRange::new(0, 7));
        assert_eq!(RowRange::window(RowId(99), 5, 100), RowRange::new(94, 100));
        // center beyond len clamps to the last row
        assert_eq!(RowRange::window(RowId(500), 2, 100), RowRange::new(97, 100));
    }

    #[test]
    fn window_empty_data() {
        assert!(RowRange::window(RowId(3), 2, 0).is_empty());
    }

    #[test]
    fn contains_and_overlaps() {
        let r = RowRange::new(5, 10);
        assert!(r.contains(RowId(5)));
        assert!(r.contains(RowId(9)));
        assert!(!r.contains(RowId(10)));
        assert!(r.overlaps(&RowRange::new(9, 20)));
        assert!(!r.overlaps(&RowRange::new(10, 20)));
        assert!(!r.overlaps(&RowRange::new(0, 5)));
    }

    #[test]
    fn intersect_and_union() {
        let a = RowRange::new(0, 10);
        let b = RowRange::new(5, 15);
        assert_eq!(a.intersect(&b), RowRange::new(5, 10));
        assert_eq!(a.union_hull(&b), RowRange::new(0, 15));
        let empty = RowRange::empty(3);
        assert_eq!(empty.union_hull(&a), a);
        assert_eq!(a.union_hull(&empty), a);
    }

    #[test]
    fn iter_yields_all_rows() {
        let rows: Vec<u64> = RowRange::new(3, 6).iter().map(|r| r.0).collect();
        assert_eq!(rows, vec![3, 4, 5]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(RowId(7).to_string(), "#7");
        assert_eq!(RowRange::new(1, 4).to_string(), "[1, 4)");
    }
}
