//! A small self-contained JSON reader/writer shared by the workspace.
//!
//! The gesture-trace codec, the persistent catalog manifest and the benchmark
//! result files all serialize structured data. The build environment is
//! offline, so instead of `serde_json` they use this dependency-free module: a
//! standard recursive-descent parser into a [`Json`] value tree plus a
//! pretty-printer. It covers the full JSON grammar (objects, arrays, strings
//! with escapes, numbers, booleans, null), not just one schema, so every
//! format built on it can evolve without touching the parser. Numbers are held
//! as `f64`; `f64` values round-trip exactly (Rust's shortest-representation
//! `Display`), and integers are exact up to 2^53 — every producer in this
//! workspace stays within that range.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (held as f64; the trace schema stays within 2^53).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap) so output is deterministic.
    Object(BTreeMap<String, Json>),
}

/// Build a [`Json::Object`] from `(key, value)` pairs. Keys end up sorted
/// (BTreeMap), so rendering is deterministic — manifests and bench artifacts
/// are byte-stable for identical contents.
pub fn object<K: Into<String>>(entries: impl IntoIterator<Item = (K, Json)>) -> Json {
    Json::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.into(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

impl Json {
    /// Member of an object, if this is an object containing `key`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as u64, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation (matches the style the
    /// harnesses previously got from `serde_json::to_string_pretty`).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Number(n) => write_number(out, *n),
            Json::String(s) => write_string(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in map.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Trailing non-whitespace input is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at offset {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}",
                byte as char, self.pos
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!(
                "unexpected character '{}' at offset {}",
                c as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4(self.pos + 1)?;
                            self.pos += 4;
                            if (0xD800..=0xDBFF).contains(&code) {
                                // UTF-16 surrogate pair: a second \uXXXX low
                                // surrogate must follow (standard encoders
                                // emit non-BMP characters this way).
                                if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 2) != Some(&b'u')
                                {
                                    return Err("unpaired high surrogate in \\u escape".to_string());
                                }
                                let low = self.hex4(self.pos + 3)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err("invalid low surrogate in \\u escape".to_string());
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                out.push(
                                    char::from_u32(combined)
                                        .ok_or_else(|| "invalid \\u code point".to_string())?,
                                );
                                self.pos += 6;
                            } else if (0xDC00..=0xDFFF).contains(&code) {
                                return Err("unpaired low surrogate in \\u escape".to_string());
                            } else {
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| "invalid \\u code point".to_string())?,
                                );
                            }
                        }
                        _ => return Err(format!("invalid escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&self, at: usize) -> Result<u32, String> {
        let end = at + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[at..end])
            .map_err(|_| "invalid \\u escape".to_string())?;
        u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape".to_string())
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| format!("invalid number '{text}' at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested() {
        let mut obj = BTreeMap::new();
        obj.insert("name".to_string(), Json::String("a \"b\"\n".to_string()));
        obj.insert(
            "xs".to_string(),
            Json::Array(vec![Json::Number(1.5), Json::Number(-3.0), Json::Null]),
        );
        obj.insert("ok".to_string(), Json::Bool(true));
        let v = Json::Object(obj);
        let text = v.pretty();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{not json").is_err());
        assert!(parse("").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""aA\t\\périscope""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "aA\t\\périscope");
    }

    #[test]
    fn parses_surrogate_pairs() {
        // Non-BMP characters escape as UTF-16 surrogate pairs (what standard
        // JSON encoders emit in ASCII mode).
        let v = parse(r#""col 😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "col \u{1F600}");
        assert!(parse(r#""\ud83d""#).is_err()); // unpaired high
        assert!(parse(r#""\ud83dxx""#).is_err()); // high not followed by \u
        assert!(parse(r#""\ude00""#).is_err()); // lone low
        assert!(parse(r#""\ud83dA""#).is_err()); // low out of range
    }

    #[test]
    fn numbers() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5").unwrap().as_f64(), Some(-1.5));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert!(parse("1.").unwrap().as_f64().is_some());
        assert!(parse("--3").is_err());
    }
}
