//! Screen geometry in physical units.
//!
//! The paper reasons about data objects by their physical size on the touch
//! screen ("a column of a height of only a few centimeters may represent an
//! attribute with several millions of tuples", "the height of the object is 10
//! centimeters"). Physical size matters because the number of distinguishable
//! touch locations — and therefore the number of tuples one slide can address —
//! is bounded by the object size and the finger/touch resolution.
//!
//! All geometry here is expressed in centimetres as `f64`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// A length in centimetres.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Centimeters(pub f64);

impl Centimeters {
    /// Zero length.
    pub const ZERO: Centimeters = Centimeters(0.0);

    /// Construct, returning `None` for NaN or negative lengths.
    pub fn checked(v: f64) -> Option<Centimeters> {
        if v.is_finite() && v >= 0.0 {
            Some(Centimeters(v))
        } else {
            None
        }
    }

    /// Raw value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// True if this is a usable (finite, strictly positive) extent.
    pub fn is_positive(self) -> bool {
        self.0.is_finite() && self.0 > 0.0
    }

    /// Clamp into `[lo, hi]`.
    pub fn clamp(self, lo: Centimeters, hi: Centimeters) -> Centimeters {
        Centimeters(self.0.clamp(lo.0, hi.0))
    }
}

impl fmt::Display for Centimeters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}cm", self.0)
    }
}

impl Add for Centimeters {
    type Output = Centimeters;
    fn add(self, rhs: Centimeters) -> Centimeters {
        Centimeters(self.0 + rhs.0)
    }
}

impl Sub for Centimeters {
    type Output = Centimeters;
    fn sub(self, rhs: Centimeters) -> Centimeters {
        Centimeters(self.0 - rhs.0)
    }
}

impl Mul<f64> for Centimeters {
    type Output = Centimeters;
    fn mul(self, rhs: f64) -> Centimeters {
        Centimeters(self.0 * rhs)
    }
}

impl Div<f64> for Centimeters {
    type Output = Centimeters;
    fn div(self, rhs: f64) -> Centimeters {
        Centimeters(self.0 / rhs)
    }
}

impl From<f64> for Centimeters {
    fn from(v: f64) -> Self {
        Centimeters(v)
    }
}

/// A point within a view, in centimetres from the view's top-left corner.
///
/// `x` grows to the right; `y` grows downward (matching touch-OS view
/// coordinates, where a top-to-bottom slide has increasing `y`).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PointCm {
    /// Horizontal offset from the left edge.
    pub x: f64,
    /// Vertical offset from the top edge.
    pub y: f64,
}

impl PointCm {
    /// Construct a point.
    pub fn new(x: f64, y: f64) -> PointCm {
        PointCm { x, y }
    }

    /// Origin (top-left corner).
    pub const ORIGIN: PointCm = PointCm { x: 0.0, y: 0.0 };

    /// Euclidean distance to another point, in centimetres.
    pub fn distance(&self, other: &PointCm) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Component-wise linear interpolation: `t = 0` gives `self`, `t = 1` gives
    /// `other`.
    pub fn lerp(&self, other: &PointCm, t: f64) -> PointCm {
        PointCm {
            x: self.x + (other.x - self.x) * t,
            y: self.y + (other.y - self.y) * t,
        }
    }

    /// True if both coordinates are finite.
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for PointCm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})cm", self.x, self.y)
    }
}

/// The size of a view, in centimetres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SizeCm {
    /// Width.
    pub width: f64,
    /// Height.
    pub height: f64,
}

impl SizeCm {
    /// Construct a size.
    pub fn new(width: f64, height: f64) -> SizeCm {
        SizeCm { width, height }
    }

    /// True if both dimensions are finite and strictly positive.
    pub fn is_valid(&self) -> bool {
        self.width.is_finite() && self.height.is_finite() && self.width > 0.0 && self.height > 0.0
    }

    /// Area in square centimetres.
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// Scale both dimensions by a factor (used by zoom gestures).
    pub fn scaled(&self, factor: f64) -> SizeCm {
        SizeCm {
            width: self.width * factor,
            height: self.height * factor,
        }
    }

    /// Swap width and height (used when an object is rotated by 90 degrees).
    pub fn transposed(&self) -> SizeCm {
        SizeCm {
            width: self.height,
            height: self.width,
        }
    }

    /// The extent along the given orientation's scroll axis: height when the
    /// object stands vertically, width when it lies horizontally.
    pub fn extent_along(&self, orientation: Orientation) -> f64 {
        match orientation {
            Orientation::Vertical => self.height,
            Orientation::Horizontal => self.width,
        }
    }
}

impl fmt::Display for SizeCm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}x{:.2}cm", self.width, self.height)
    }
}

/// An axis-aligned rectangle inside a master view (origin is its top-left
/// corner, in the master view's coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Rect {
    /// Top-left corner in the parent's coordinate space.
    pub origin: PointCm,
    /// Extent of the rectangle.
    pub size: SizeCm,
}

impl Rect {
    /// Construct from origin and size.
    pub fn new(origin: PointCm, size: SizeCm) -> Rect {
        Rect { origin, size }
    }

    /// Construct from raw coordinates.
    pub fn from_xywh(x: f64, y: f64, w: f64, h: f64) -> Rect {
        Rect::new(PointCm::new(x, y), SizeCm::new(w, h))
    }

    /// True if the point (in the parent's coordinates) falls inside this rect.
    pub fn contains(&self, p: PointCm) -> bool {
        p.x >= self.origin.x
            && p.x < self.origin.x + self.size.width
            && p.y >= self.origin.y
            && p.y < self.origin.y + self.size.height
    }

    /// Translate a point from the parent's coordinates to this rect's local
    /// coordinates (its own top-left becomes the origin).
    pub fn to_local(&self, p: PointCm) -> PointCm {
        PointCm::new(p.x - self.origin.x, p.y - self.origin.y)
    }

    /// Translate a local point back to the parent's coordinates.
    pub fn to_parent(&self, p: PointCm) -> PointCm {
        PointCm::new(p.x + self.origin.x, p.y + self.origin.y)
    }

    /// The centre of the rectangle, in parent coordinates.
    pub fn center(&self) -> PointCm {
        PointCm::new(
            self.origin.x + self.size.width / 2.0,
            self.origin.y + self.size.height / 2.0,
        )
    }
}

/// The orientation of a data object on screen.
///
/// Columns are rendered vertically by default; the rotate gesture (or rotating
/// the tablet itself) flips them. The orientation decides which touch dimension
/// drives the tuple-identifier mapping (Section 2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Orientation {
    /// The object stands vertically: the `y` coordinate addresses tuples.
    #[default]
    Vertical,
    /// The object lies horizontally: the `x` coordinate addresses tuples.
    Horizontal,
}

impl Orientation {
    /// The orientation after a 90-degree rotation.
    pub fn rotated(self) -> Orientation {
        match self {
            Orientation::Vertical => Orientation::Horizontal,
            Orientation::Horizontal => Orientation::Vertical,
        }
    }

    /// Pick the coordinate of `p` along the scroll axis for this orientation.
    pub fn scroll_coordinate(self, p: PointCm) -> f64 {
        match self {
            Orientation::Vertical => p.y,
            Orientation::Horizontal => p.x,
        }
    }

    /// Pick the coordinate of `p` across the scroll axis (used to select the
    /// attribute when sliding over a multi-column table).
    pub fn cross_coordinate(self, p: PointCm) -> f64 {
        match self {
            Orientation::Vertical => p.x,
            Orientation::Horizontal => p.y,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centimeters_checked_rejects_bad_values() {
        assert!(Centimeters::checked(f64::NAN).is_none());
        assert!(Centimeters::checked(-1.0).is_none());
        assert!(Centimeters::checked(f64::INFINITY).is_none());
        assert_eq!(Centimeters::checked(2.0), Some(Centimeters(2.0)));
    }

    #[test]
    fn centimeters_arithmetic() {
        assert_eq!((Centimeters(2.0) + Centimeters(3.0)).value(), 5.0);
        assert_eq!((Centimeters(5.0) - Centimeters(3.0)).value(), 2.0);
        assert_eq!((Centimeters(2.0) * 3.0).value(), 6.0);
        assert_eq!((Centimeters(6.0) / 2.0).value(), 3.0);
    }

    #[test]
    fn point_distance_and_lerp() {
        let a = PointCm::new(0.0, 0.0);
        let b = PointCm::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        let mid = a.lerp(&b, 0.5);
        assert!((mid.x - 1.5).abs() < 1e-12);
        assert!((mid.y - 2.0).abs() < 1e-12);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
    }

    #[test]
    fn size_validity_and_scaling() {
        assert!(SizeCm::new(2.0, 10.0).is_valid());
        assert!(!SizeCm::new(0.0, 10.0).is_valid());
        assert!(!SizeCm::new(2.0, f64::NAN).is_valid());
        let s = SizeCm::new(2.0, 10.0).scaled(2.0);
        assert_eq!(s, SizeCm::new(4.0, 20.0));
        assert_eq!(s.transposed(), SizeCm::new(20.0, 4.0));
        assert_eq!(s.area(), 80.0);
    }

    #[test]
    fn size_extent_along_orientation() {
        let s = SizeCm::new(2.0, 10.0);
        assert_eq!(s.extent_along(Orientation::Vertical), 10.0);
        assert_eq!(s.extent_along(Orientation::Horizontal), 2.0);
    }

    #[test]
    fn rect_contains_and_coordinate_transforms() {
        let r = Rect::from_xywh(1.0, 2.0, 3.0, 4.0);
        assert!(r.contains(PointCm::new(1.0, 2.0)));
        assert!(r.contains(PointCm::new(3.9, 5.9)));
        assert!(!r.contains(PointCm::new(4.0, 5.0)));
        assert!(!r.contains(PointCm::new(0.5, 3.0)));
        let local = r.to_local(PointCm::new(2.0, 4.0));
        assert_eq!(local, PointCm::new(1.0, 2.0));
        assert_eq!(r.to_parent(local), PointCm::new(2.0, 4.0));
        assert_eq!(r.center(), PointCm::new(2.5, 4.0));
    }

    #[test]
    fn orientation_rotation_is_involutive() {
        assert_eq!(Orientation::Vertical.rotated(), Orientation::Horizontal);
        assert_eq!(
            Orientation::Vertical.rotated().rotated(),
            Orientation::Vertical
        );
    }

    #[test]
    fn orientation_coordinate_selection() {
        let p = PointCm::new(1.0, 7.0);
        assert_eq!(Orientation::Vertical.scroll_coordinate(p), 7.0);
        assert_eq!(Orientation::Horizontal.scroll_coordinate(p), 1.0);
        assert_eq!(Orientation::Vertical.cross_coordinate(p), 1.0);
        assert_eq!(Orientation::Horizontal.cross_coordinate(p), 7.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Centimeters(1.5).to_string(), "1.50cm");
        assert_eq!(PointCm::new(1.0, 2.0).to_string(), "(1.00, 2.00)cm");
        assert_eq!(SizeCm::new(2.0, 10.0).to_string(), "2.00x10.00cm");
    }
}
