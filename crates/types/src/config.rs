//! Kernel configuration.
//!
//! The paper leaves most policy parameters open ("parameter k can be defined by
//! the users according to their exploration requirements as well as by system
//! parameters"). `KernelConfig` gathers every tunable in one place so the figure
//! harnesses can sweep them and the examples can show sensible defaults.

use crate::error::{DbTouchError, Result};
use serde::{Deserialize, Serialize};

/// Configuration of the device/cloud storage split (Section 4, "Remote
/// Processing"): the device keeps the coarse sample levels of every column
/// (levels `>= local_min_level`), the simulated cloud server keeps everything,
/// and summary touches that need a finer level than the device holds are
/// served over a modelled network link.
///
/// With `overlapped` set (the default), fine-level requests go through the
/// asynchronous remote executor: the session answers immediately from the
/// coarsest local level and the refinement lands later, patched into the
/// outcome when the completion queue is drained. With `overlapped` off, the
/// session blocks inline for the simulated round trip — the baseline the
/// `remote_overlap` benchmark compares against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemoteSplitConfig {
    /// Coarsest sample level resident on the device: levels `>=` this are
    /// local, finer levels live on the simulated server. Clamped per object
    /// to its hierarchy depth, so an object with fewer levels is simply
    /// all-local.
    pub local_min_level: u8,
    /// Round-trip latency per remote request, in microseconds.
    pub round_trip_micros: u64,
    /// Transfer throughput of the link, in rows per millisecond (0 models a
    /// latency-only link).
    pub rows_per_milli: u64,
    /// When `true`, remote fetches run asynchronously on the I/O executor and
    /// overlap with touch processing; when `false` every remote fetch blocks
    /// the session inline for the simulated latency.
    pub overlapped: bool,
    /// I/O threads of the remote executor (overlapped mode only).
    pub io_threads: usize,
    /// Bound of the executor's submission queue: a session submitting faster
    /// than the I/O pool drains blocks (backpressure) instead of queueing
    /// without bound.
    pub queue_depth: usize,
}

impl Default for RemoteSplitConfig {
    fn default() -> Self {
        RemoteSplitConfig {
            local_min_level: 4,
            // The same "reasonable WAN" as `NetworkModel::default` in core:
            // 40ms round trip, ~2000 rows (16KB of int64) per ms.
            round_trip_micros: 40_000,
            rows_per_milli: 2_000,
            overlapped: true,
            io_threads: 4,
            queue_depth: 256,
        }
    }
}

impl RemoteSplitConfig {
    /// Validate the split parameters.
    pub fn validate(&self) -> Result<()> {
        if self.local_min_level == 0 {
            return Err(DbTouchError::InvalidConfig(
                "remote_split.local_min_level must be >= 1 (level 0 local means no split)".into(),
            ));
        }
        if self.overlapped && self.io_threads == 0 {
            return Err(DbTouchError::InvalidConfig(
                "remote_split.io_threads must be > 0 in overlapped mode".into(),
            ));
        }
        if self.overlapped && self.queue_depth == 0 {
            return Err(DbTouchError::InvalidConfig(
                "remote_split.queue_depth must be > 0 in overlapped mode".into(),
            ));
        }
        Ok(())
    }

    /// Builder-style setter for the blocking/overlapped mode.
    pub fn with_overlapped(mut self, on: bool) -> Self {
        self.overlapped = on;
        self
    }

    /// Builder-style setter for the device-resident level range.
    pub fn with_local_min_level(mut self, level: u8) -> Self {
        self.local_min_level = level;
        self
    }

    /// Builder-style setter for the network model parameters.
    pub fn with_network(mut self, round_trip_micros: u64, rows_per_milli: u64) -> Self {
        self.round_trip_micros = round_trip_micros;
        self.rows_per_milli = rows_per_milli;
        self
    }
}

/// Configuration of a dbTouch kernel instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelConfig {
    /// Touch sampling rate of the (simulated) touch OS, in events per second.
    /// iOS-class devices register roughly 60 touch samples per second, which is
    /// the default. Figure 4(a) depends directly on this rate: a slower gesture
    /// lasts longer and therefore registers more touch samples.
    pub touch_sample_rate_hz: f64,

    /// Minimum on-screen distance between two successive touch locations that
    /// the kernel treats as distinct, in centimetres. This models the physical
    /// limit the paper mentions: "for each possible size of a visual object,
    /// there is a limited amount of touch locations which can be registered".
    pub touch_resolution_cm: f64,

    /// Default half-window `k` for interactive summaries (Section 2.7): each
    /// touch aggregates the tuple-identifier range `[id - k, id + k]`.
    pub summary_half_window: u64,

    /// Number of sample levels to build per column (level 0 is base data, level
    /// `i` keeps every 2^i-th row). Section 2.6 "Sample-based Storage".
    pub sample_levels: u8,

    /// Capacity of the region cache in rows (across all cached regions).
    pub cache_capacity_rows: u64,

    /// How many rows ahead of the gesture the prefetcher fetches when it
    /// extrapolates the gesture movement (Section 2.6 "Prefetching Data").
    pub prefetch_horizon_rows: u64,

    /// Maximum time the kernel may spend answering one touch, in microseconds.
    /// Section 4: "There should always be a maximum possible wait time for a
    /// single touch regardless of the query and the data sizes."
    pub touch_budget_micros: u64,

    /// Milliseconds a result value stays fully visible before it starts fading.
    pub result_fade_after_ms: u64,

    /// Milliseconds a fading result takes to disappear completely.
    pub result_fade_duration_ms: u64,

    /// Rows converted per step when a layout rotation is performed
    /// incrementally (Section 2.8).
    pub rotation_chunk_rows: u64,

    /// When `true`, the kernel picks the sample level adaptively from the
    /// gesture speed and object size; when `false` it always reads base data.
    pub adaptive_sampling: bool,

    /// When `true`, the prefetcher runs during pauses/slowdowns.
    pub prefetch_enabled: bool,

    /// When `true`, touched regions are cached for re-examination.
    pub cache_enabled: bool,

    /// When `true`, sessions of the same catalog share a cross-session result
    /// cache of summary-window aggregates, keyed by immutable-object identity
    /// (a catalog restructure mints a new identity, so stale entries can never
    /// be served). The cache is result-transparent: hits return the exact
    /// tuple a recomputation would.
    pub shared_cache_enabled: bool,

    /// Capacity of the shared result cache in entries (ignored when
    /// `shared_cache_enabled` is `false`).
    pub shared_cache_capacity: usize,

    /// Page size in bytes used when *creating* a persistent catalog store
    /// (an existing store is always opened with the page size recorded in
    /// its manifest).
    pub page_size_bytes: usize,

    /// Capacity of the persistent store's buffer pool, in pages. This bounds
    /// the memory resident for paged-backed catalogs: a reopened catalog
    /// larger than `buffer_pool_pages * page_size` streams under exploration
    /// instead of loading fully.
    pub buffer_pool_pages: usize,

    /// How many epoch manifests a persistent catalog directory retains. One
    /// would suffice for clean shutdowns; a small window means a torn or
    /// rotted newest epoch costs one epoch of history instead of the whole
    /// catalog. Must be at least 1.
    pub manifest_keep: usize,

    /// The device/cloud storage split, `None` for an all-local kernel (the
    /// default). See [`RemoteSplitConfig`].
    pub remote_split: Option<RemoteSplitConfig>,

    /// When `true` (the default), the kernel records live telemetry: sharded
    /// counters, latency histograms, and the gesture-lifecycle event trace.
    /// Telemetry observes execution without steering it — results and session
    /// digests are bit-identical either way.
    pub telemetry_enabled: bool,

    /// How many trace events the telemetry event ring retains (older events
    /// are evicted). 0 keeps counting events without storing any.
    pub telemetry_ring_capacity: usize,

    /// Sampling stride for hot-path trace events (touch received, shared-cache
    /// hit/miss): every Nth is recorded. 1 records all of them; rare lifecycle
    /// events are always recorded regardless.
    pub telemetry_hot_sample: u32,

    /// Scan worker threads a large touch may fan out over (the submitting
    /// worker included). 1 — the default — keeps every touch on the
    /// single-threaded path; N > 1 starts a pool of N-1 scan helpers that
    /// steal segment morsels from a shared queue. Results are bit-identical
    /// at any setting: segment decomposition depends only on
    /// [`segment_rows`](Self::segment_rows), and partial aggregates merge by
    /// exact arithmetic in segment order.
    #[serde(default)]
    pub scan_parallelism: usize,

    /// Rows per scan segment when a summary window fans out over the morsel
    /// queue. Windows no longer than this stay on the sequential path; longer
    /// windows split into `segment_rows`-sized morsels. The default (65536)
    /// is a multiple of the zone-map block size (4096 rows), so interior
    /// segments align to whole zone blocks and can be answered from the
    /// index without touching data.
    #[serde(default)]
    pub segment_rows: u64,

    /// Whether persists pack columns with per-page RLE/dictionary encodings
    /// (the default). Selection is per page and falls back to raw whenever
    /// nothing actually shrinks, so turning this off only changes bytes on
    /// disk — never results: encoded scans are bit-identical to raw ones.
    #[serde(default)]
    pub encoding_enabled: bool,

    /// Most distinct values a page span may hold and still choose the
    /// dictionary encoding. Codes are one byte, so the ceiling is 256; the
    /// default (64) keeps dictionaries small enough that code-counting scans
    /// stay cache-resident.
    #[serde(default)]
    pub dict_max_cardinality: u16,

    /// When `true` (the default), the kernel additionally captures
    /// hierarchical span trees per gesture trace — queue-wait vs service
    /// decomposition, per-segment scan spans, late remote refinements —
    /// tail-sampled into a bounded ring (see the `trace_*` knobs). Requires
    /// telemetry; like the rest of telemetry, tracing observes execution
    /// without steering it, so digests are bit-identical either way.
    #[serde(default)]
    pub tracing_enabled: bool,

    /// Tail-sampling threshold in microseconds: any finished trace whose
    /// root (end-to-end touch) latency reaches this keeps its full span
    /// tree. The default (10 000 µs = 10 ms) captures traces that breach the
    /// paper's interactivity contract by ~5x.
    #[serde(default)]
    pub trace_tail_threshold_micros: u64,

    /// Baseline head sampling: additionally retain every Nth finished trace
    /// regardless of latency, so the tail has something typical to diff
    /// against. 0 disables the baseline.
    #[serde(default)]
    pub trace_head_sample_every: u64,

    /// Completed span trees retained; the oldest is evicted beyond this.
    #[serde(default)]
    pub trace_retained_capacity: usize,

    /// Per-trace span cap: spans past this are counted as truncated rather
    /// than stored, bounding memory under pathological fan-out.
    #[serde(default)]
    pub trace_max_spans: usize,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            touch_sample_rate_hz: 60.0,
            touch_resolution_cm: 0.05,
            summary_half_window: 5,
            sample_levels: 8,
            cache_capacity_rows: 1 << 20,
            prefetch_horizon_rows: 4096,
            touch_budget_micros: 2_000,
            result_fade_after_ms: 400,
            result_fade_duration_ms: 800,
            rotation_chunk_rows: 65_536,
            adaptive_sampling: true,
            prefetch_enabled: true,
            cache_enabled: true,
            shared_cache_enabled: true,
            shared_cache_capacity: 1 << 16,
            page_size_bytes: 8192,
            buffer_pool_pages: 4096,
            manifest_keep: 8,
            remote_split: None,
            telemetry_enabled: true,
            telemetry_ring_capacity: 8192,
            telemetry_hot_sample: 64,
            scan_parallelism: 1,
            segment_rows: 65_536,
            encoding_enabled: true,
            dict_max_cardinality: 64,
            tracing_enabled: true,
            trace_tail_threshold_micros: 10_000,
            trace_head_sample_every: 64,
            trace_retained_capacity: 64,
            trace_max_spans: 512,
        }
    }
}

impl KernelConfig {
    /// Validate the configuration, returning a descriptive error for the first
    /// out-of-range field found.
    pub fn validate(&self) -> Result<()> {
        if !(self.touch_sample_rate_hz.is_finite() && self.touch_sample_rate_hz > 0.0) {
            return Err(DbTouchError::InvalidConfig(
                "touch_sample_rate_hz must be finite and > 0".into(),
            ));
        }
        if !(self.touch_resolution_cm.is_finite() && self.touch_resolution_cm >= 0.0) {
            return Err(DbTouchError::InvalidConfig(
                "touch_resolution_cm must be finite and >= 0".into(),
            ));
        }
        if self.sample_levels == 0 {
            return Err(DbTouchError::InvalidConfig(
                "sample_levels must be at least 1 (level 0 is base data)".into(),
            ));
        }
        if self.rotation_chunk_rows == 0 {
            return Err(DbTouchError::InvalidConfig(
                "rotation_chunk_rows must be > 0".into(),
            ));
        }
        if self.touch_budget_micros == 0 {
            return Err(DbTouchError::InvalidConfig(
                "touch_budget_micros must be > 0".into(),
            ));
        }
        if self.shared_cache_enabled && self.shared_cache_capacity == 0 {
            return Err(DbTouchError::InvalidConfig(
                "shared_cache_capacity must be > 0 when the shared cache is enabled".into(),
            ));
        }
        // 32 bytes = page header + one widest (8-byte) numeric row; the
        // storage layer re-validates against its exact header size.
        if self.page_size_bytes < 32 {
            return Err(DbTouchError::InvalidConfig(
                "page_size_bytes must be at least 32".into(),
            ));
        }
        if self.buffer_pool_pages == 0 {
            return Err(DbTouchError::InvalidConfig(
                "buffer_pool_pages must be > 0".into(),
            ));
        }
        if self.manifest_keep == 0 {
            return Err(DbTouchError::InvalidConfig(
                "manifest_keep must be at least 1 (the newest manifest)".into(),
            ));
        }
        if let Some(split) = &self.remote_split {
            split.validate()?;
        }
        if self.telemetry_enabled && self.telemetry_hot_sample == 0 {
            return Err(DbTouchError::InvalidConfig(
                "telemetry_hot_sample must be >= 1 when telemetry is enabled".into(),
            ));
        }
        if self.scan_parallelism == 0 {
            return Err(DbTouchError::InvalidConfig(
                "scan_parallelism must be >= 1 (1 means single-threaded scans)".into(),
            ));
        }
        if self.segment_rows == 0 {
            return Err(DbTouchError::InvalidConfig(
                "segment_rows must be > 0".into(),
            ));
        }
        if !(1..=256).contains(&self.dict_max_cardinality) {
            return Err(DbTouchError::InvalidConfig(
                "dict_max_cardinality must be in 1..=256 (codes are one byte)".into(),
            ));
        }
        if self.tracing_enabled {
            if self.trace_max_spans == 0 {
                return Err(DbTouchError::InvalidConfig(
                    "trace_max_spans must be >= 1 when tracing is enabled".into(),
                ));
            }
            if self.trace_retained_capacity == 0 {
                return Err(DbTouchError::InvalidConfig(
                    "trace_retained_capacity must be >= 1 when tracing is enabled".into(),
                ));
            }
        }
        Ok(())
    }

    /// Configuration used by the paper's Figure 4 experiments: interactive
    /// summaries averaging 10 entries per summary over a 10^7-integer column.
    /// The paper uses "10 data entries for each summary", which we model as a
    /// half-window of 5 (the touched row plus ~5 on each side, clamped).
    pub fn figure4() -> Self {
        KernelConfig {
            summary_half_window: 5,
            ..KernelConfig::default()
        }
    }

    /// A configuration with every adaptive optimization disabled; used by the
    /// ablation benchmarks as the "naive" kernel.
    pub fn naive() -> Self {
        KernelConfig {
            adaptive_sampling: false,
            prefetch_enabled: false,
            cache_enabled: false,
            shared_cache_enabled: false,
            ..KernelConfig::default()
        }
    }

    /// Builder-style setter for the summary half-window.
    pub fn with_summary_half_window(mut self, k: u64) -> Self {
        self.summary_half_window = k;
        self
    }

    /// Builder-style setter for the touch sampling rate.
    pub fn with_touch_sample_rate(mut self, hz: f64) -> Self {
        self.touch_sample_rate_hz = hz;
        self
    }

    /// Builder-style setter for the number of sample levels.
    pub fn with_sample_levels(mut self, levels: u8) -> Self {
        self.sample_levels = levels;
        self
    }

    /// Builder-style toggles for the adaptive features.
    pub fn with_adaptive_sampling(mut self, on: bool) -> Self {
        self.adaptive_sampling = on;
        self
    }

    /// Builder-style toggle for prefetching.
    pub fn with_prefetch(mut self, on: bool) -> Self {
        self.prefetch_enabled = on;
        self
    }

    /// Builder-style toggle for the region cache.
    pub fn with_cache(mut self, on: bool) -> Self {
        self.cache_enabled = on;
        self
    }

    /// Builder-style toggle for the shared cross-session result cache.
    pub fn with_shared_cache(mut self, on: bool) -> Self {
        self.shared_cache_enabled = on;
        self
    }

    /// Builder-style setter for the persistent store's buffer-pool capacity
    /// (in pages).
    pub fn with_buffer_pool_pages(mut self, pages: usize) -> Self {
        self.buffer_pool_pages = pages;
        self
    }

    /// Builder-style setter for the page size used when creating a
    /// persistent catalog store.
    pub fn with_page_size(mut self, bytes: usize) -> Self {
        self.page_size_bytes = bytes;
        self
    }

    /// Builder-style setter for the manifest retention window of persistent
    /// catalog directories.
    pub fn with_manifest_keep(mut self, keep: usize) -> Self {
        self.manifest_keep = keep;
        self
    }

    /// Builder-style setter for the device/cloud split (`None` disables
    /// remote processing).
    pub fn with_remote_split(mut self, split: Option<RemoteSplitConfig>) -> Self {
        self.remote_split = split;
        self
    }

    /// Builder-style toggle for live telemetry recording.
    pub fn with_telemetry(mut self, on: bool) -> Self {
        self.telemetry_enabled = on;
        self
    }

    /// Builder-style setter for the trace-event ring capacity.
    pub fn with_telemetry_ring_capacity(mut self, events: usize) -> Self {
        self.telemetry_ring_capacity = events;
        self
    }

    /// Builder-style setter for the hot-event sampling stride (1 = record
    /// every hot event).
    pub fn with_telemetry_hot_sample(mut self, stride: u32) -> Self {
        self.telemetry_hot_sample = stride;
        self
    }

    /// Builder-style setter for the scan fan-out degree (1 = single-threaded).
    pub fn with_scan_parallelism(mut self, workers: usize) -> Self {
        self.scan_parallelism = workers;
        self
    }

    /// Builder-style setter for the scan segment size in rows.
    pub fn with_segment_rows(mut self, rows: u64) -> Self {
        self.segment_rows = rows;
        self
    }

    /// Builder-style toggle for page-span compression at persist time.
    pub fn with_encoding(mut self, on: bool) -> Self {
        self.encoding_enabled = on;
        self
    }

    /// Builder-style setter for the dictionary-encoding cardinality ceiling.
    pub fn with_dict_max_cardinality(mut self, values: u16) -> Self {
        self.dict_max_cardinality = values;
        self
    }

    /// Builder-style toggle for hierarchical span tracing.
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing_enabled = on;
        self
    }

    /// Builder-style setter for the tail-sampling latency threshold (µs).
    pub fn with_trace_tail_threshold_micros(mut self, micros: u64) -> Self {
        self.trace_tail_threshold_micros = micros;
        self
    }

    /// Builder-style setter for the head-sampled baseline stride (0 = off).
    pub fn with_trace_head_sample_every(mut self, every: u64) -> Self {
        self.trace_head_sample_every = every;
        self
    }

    /// Builder-style setter for the retained span-tree ring capacity.
    pub fn with_trace_retained_capacity(mut self, trees: usize) -> Self {
        self.trace_retained_capacity = trees;
        self
    }

    /// Builder-style setter for the per-trace span cap.
    pub fn with_trace_max_spans(mut self, spans: usize) -> Self {
        self.trace_max_spans = spans;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(KernelConfig::default().validate().is_ok());
        assert!(KernelConfig::figure4().validate().is_ok());
        assert!(KernelConfig::naive().validate().is_ok());
    }

    #[test]
    fn invalid_sample_rate_rejected() {
        let c = KernelConfig {
            touch_sample_rate_hz: 0.0,
            ..KernelConfig::default()
        };
        assert!(c.validate().is_err());
        let c = KernelConfig {
            touch_sample_rate_hz: f64::NAN,
            ..KernelConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn invalid_sample_levels_rejected() {
        let c = KernelConfig::default().with_sample_levels(0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn invalid_rotation_chunk_rejected() {
        let c = KernelConfig {
            rotation_chunk_rows: 0,
            ..KernelConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn invalid_budget_rejected() {
        let c = KernelConfig {
            touch_budget_micros: 0,
            ..KernelConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn naive_disables_adaptivity() {
        let c = KernelConfig::naive();
        assert!(!c.adaptive_sampling);
        assert!(!c.prefetch_enabled);
        assert!(!c.cache_enabled);
        assert!(!c.shared_cache_enabled);
    }

    #[test]
    fn invalid_shared_cache_capacity_rejected() {
        let c = KernelConfig {
            shared_cache_capacity: 0,
            ..KernelConfig::default()
        };
        assert!(c.validate().is_err());
        // A zero capacity is fine while the shared cache is off.
        let c = KernelConfig {
            shared_cache_capacity: 0,
            ..KernelConfig::default()
        }
        .with_shared_cache(false);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builders_chain() {
        let c = KernelConfig::default()
            .with_summary_half_window(9)
            .with_touch_sample_rate(120.0)
            .with_adaptive_sampling(false)
            .with_prefetch(false)
            .with_cache(false);
        assert_eq!(c.summary_half_window, 9);
        assert_eq!(c.touch_sample_rate_hz, 120.0);
        assert!(!c.adaptive_sampling && !c.prefetch_enabled && !c.cache_enabled);
    }

    #[test]
    fn invalid_manifest_keep_rejected() {
        let c = KernelConfig::default().with_manifest_keep(0);
        assert!(c.validate().is_err());
        assert!(KernelConfig::default()
            .with_manifest_keep(1)
            .validate()
            .is_ok());
    }

    #[test]
    fn remote_split_validation() {
        // Default split is valid once attached.
        let c = KernelConfig::default().with_remote_split(Some(RemoteSplitConfig::default()));
        assert!(c.validate().is_ok());
        // Level 0 local means nothing is remote: rejected as a misconfiguration.
        let c = KernelConfig::default()
            .with_remote_split(Some(RemoteSplitConfig::default().with_local_min_level(0)));
        assert!(c.validate().is_err());
        // Overlapped mode needs an I/O pool and a bounded queue...
        let no_pool = RemoteSplitConfig {
            io_threads: 0,
            ..RemoteSplitConfig::default()
        };
        assert!(KernelConfig::default()
            .with_remote_split(Some(no_pool))
            .validate()
            .is_err());
        let split = RemoteSplitConfig {
            queue_depth: 0,
            ..RemoteSplitConfig::default()
        };
        assert!(KernelConfig::default()
            .with_remote_split(Some(split.clone()))
            .validate()
            .is_err());
        // ...but blocking mode does not touch the executor.
        assert!(KernelConfig::default()
            .with_remote_split(Some(split.with_overlapped(false)))
            .validate()
            .is_ok());
        // A zero-bandwidth link is a valid latency-only model.
        assert!(KernelConfig::default()
            .with_remote_split(Some(RemoteSplitConfig::default().with_network(1_000, 0)))
            .validate()
            .is_ok());
    }

    #[test]
    fn telemetry_knobs_validate_and_chain() {
        let c = KernelConfig::default();
        assert!(c.telemetry_enabled);
        let c = KernelConfig::default().with_telemetry_hot_sample(0);
        assert!(c.validate().is_err());
        // A zero stride is fine while telemetry is off.
        assert!(KernelConfig::default()
            .with_telemetry_hot_sample(0)
            .with_telemetry(false)
            .validate()
            .is_ok());
        let c = KernelConfig::default()
            .with_telemetry_ring_capacity(128)
            .with_telemetry_hot_sample(1);
        assert!(c.validate().is_ok());
        assert_eq!(c.telemetry_ring_capacity, 128);
        assert_eq!(c.telemetry_hot_sample, 1);
    }

    #[test]
    fn tracing_knobs_validate_and_chain() {
        let c = KernelConfig::default();
        assert!(c.tracing_enabled);
        assert_eq!(c.trace_tail_threshold_micros, 10_000);
        assert_eq!(c.trace_head_sample_every, 64);
        assert!(KernelConfig::default()
            .with_trace_max_spans(0)
            .validate()
            .is_err());
        assert!(KernelConfig::default()
            .with_trace_retained_capacity(0)
            .validate()
            .is_err());
        // Zero caps are fine while tracing is off.
        assert!(KernelConfig::default()
            .with_trace_max_spans(0)
            .with_trace_retained_capacity(0)
            .with_tracing(false)
            .validate()
            .is_ok());
        let c = KernelConfig::default()
            .with_trace_tail_threshold_micros(500)
            .with_trace_head_sample_every(0)
            .with_trace_retained_capacity(8)
            .with_trace_max_spans(32);
        assert!(c.validate().is_ok());
        assert_eq!(c.trace_tail_threshold_micros, 500);
        assert_eq!(c.trace_head_sample_every, 0);
        assert_eq!(c.trace_retained_capacity, 8);
        assert_eq!(c.trace_max_spans, 32);
    }

    #[test]
    fn scan_knobs_validate_and_chain() {
        let c = KernelConfig::default();
        assert_eq!(c.scan_parallelism, 1);
        assert_eq!(c.segment_rows, 65_536);
        assert!(KernelConfig::default()
            .with_scan_parallelism(0)
            .validate()
            .is_err());
        assert!(KernelConfig::default()
            .with_segment_rows(0)
            .validate()
            .is_err());
        let c = KernelConfig::default()
            .with_scan_parallelism(8)
            .with_segment_rows(4096);
        assert!(c.validate().is_ok());
        assert_eq!(c.scan_parallelism, 8);
        assert_eq!(c.segment_rows, 4096);
    }

    #[test]
    fn encoding_knobs_validate_and_chain() {
        let c = KernelConfig::default();
        assert!(c.encoding_enabled);
        assert_eq!(c.dict_max_cardinality, 64);
        assert!(KernelConfig::default()
            .with_dict_max_cardinality(0)
            .validate()
            .is_err());
        assert!(KernelConfig::default()
            .with_dict_max_cardinality(257)
            .validate()
            .is_err());
        let c = KernelConfig::default()
            .with_encoding(false)
            .with_dict_max_cardinality(256);
        assert!(c.validate().is_ok());
        assert!(!c.encoding_enabled);
        assert_eq!(c.dict_max_cardinality, 256);
        // Even with encoding off the cardinality knob stays range-checked —
        // it is persisted and may be re-enabled later.
        assert!(KernelConfig::default()
            .with_encoding(false)
            .with_dict_max_cardinality(0)
            .validate()
            .is_err());
    }

    #[test]
    fn figure4_uses_ten_entry_summaries() {
        // half-window 5 -> 11 rows max per summary, ~10 as in the paper's setup
        assert_eq!(KernelConfig::figure4().summary_half_window, 5);
    }
}
