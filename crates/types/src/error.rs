//! Error type shared by every dbTouch crate.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, DbTouchError>;

/// Errors produced by the dbTouch kernel and its substrates.
///
/// The kernel is interactive: most conditions that a batch database would treat
/// as query failures (e.g. touching outside an object) are simply ignored by the
/// front-end. The error type therefore focuses on genuine programming or
/// catalog-level mistakes.
#[derive(Debug, Clone, PartialEq)]
pub enum DbTouchError {
    /// A column, table, or data object name was not found in the catalog.
    NotFound(String),
    /// An object with the same name already exists.
    AlreadyExists(String),
    /// The requested operation does not match the data type of the target
    /// (e.g. numeric aggregation over a string column).
    TypeMismatch { expected: String, found: String },
    /// A tuple identifier lies outside the bounds of its column or table.
    RowOutOfBounds { row: u64, len: u64 },
    /// Columns of mismatched length were combined into one table/matrix.
    LengthMismatch { expected: u64, found: u64 },
    /// A touch location or view size was invalid (negative, NaN, zero-sized view).
    InvalidGeometry(String),
    /// A gesture trace or session was malformed (e.g. touches out of time order).
    InvalidGesture(String),
    /// The requested sample level does not exist in the sample hierarchy.
    InvalidSampleLevel { level: u8, max: u8 },
    /// A configuration value was out of its accepted range.
    InvalidConfig(String),
    /// The query/session pipeline was used incorrectly (e.g. join without a
    /// second input bound).
    InvalidPlan(String),
    /// Parsing a baseline query failed.
    ParseError(String),
    /// A filesystem operation of the persistent catalog store failed. Carries
    /// the operation and the rendered `std::io::Error` (kept as a string so
    /// the error type stays `Clone + PartialEq`).
    Io(String),
    /// Persisted data failed validation: a page checksum mismatched, a
    /// manifest was malformed, or an extent pointed outside the page file.
    Corrupt(String),
    /// The server is shedding load: the request was rejected up front
    /// instead of queueing without bound. Carries the backoff the client
    /// should apply before retrying.
    Overloaded {
        /// Suggested client backoff before retrying, in milliseconds.
        retry_after_ms: u64,
        /// Which admission signal tripped (human-readable).
        reason: String,
    },
    /// The remote end of a network connection reported a failure. Carries
    /// the rendered error as the server sent it.
    Remote(String),
    /// An internal invariant was violated; indicates a bug in this library.
    Internal(String),
}

impl fmt::Display for DbTouchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbTouchError::NotFound(name) => write!(f, "object not found: {name}"),
            DbTouchError::AlreadyExists(name) => write!(f, "object already exists: {name}"),
            DbTouchError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            DbTouchError::RowOutOfBounds { row, len } => {
                write!(f, "row {row} out of bounds for length {len}")
            }
            DbTouchError::LengthMismatch { expected, found } => {
                write!(f, "length mismatch: expected {expected}, found {found}")
            }
            DbTouchError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            DbTouchError::InvalidGesture(msg) => write!(f, "invalid gesture: {msg}"),
            DbTouchError::InvalidSampleLevel { level, max } => {
                write!(
                    f,
                    "invalid sample level {level}, hierarchy has {max} levels"
                )
            }
            DbTouchError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            DbTouchError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            DbTouchError::ParseError(msg) => write!(f, "parse error: {msg}"),
            DbTouchError::Io(msg) => write!(f, "io error: {msg}"),
            DbTouchError::Corrupt(msg) => write!(f, "corrupt catalog store: {msg}"),
            DbTouchError::Overloaded {
                retry_after_ms,
                reason,
            } => write!(
                f,
                "server overloaded, retry after {retry_after_ms} ms: {reason}"
            ),
            DbTouchError::Remote(msg) => write!(f, "remote error: {msg}"),
            DbTouchError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for DbTouchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_not_found() {
        let e = DbTouchError::NotFound("lineitem".into());
        assert_eq!(e.to_string(), "object not found: lineitem");
    }

    #[test]
    fn display_row_out_of_bounds() {
        let e = DbTouchError::RowOutOfBounds { row: 10, len: 5 };
        assert!(e.to_string().contains("row 10"));
        assert!(e.to_string().contains("length 5"));
    }

    #[test]
    fn display_type_mismatch() {
        let e = DbTouchError::TypeMismatch {
            expected: "Int64".into(),
            found: "Float64".into(),
        };
        assert!(e.to_string().contains("Int64"));
        assert!(e.to_string().contains("Float64"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&DbTouchError::Internal("x".into()));
    }

    #[test]
    fn errors_compare_equal() {
        assert_eq!(
            DbTouchError::NotFound("a".into()),
            DbTouchError::NotFound("a".into())
        );
        assert_ne!(
            DbTouchError::NotFound("a".into()),
            DbTouchError::NotFound("b".into())
        );
    }
}
