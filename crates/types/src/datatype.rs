//! Data types supported by the dbTouch storage engine.
//!
//! The paper's prototype stores data in "fixed-width dense arrays or matrixes":
//! fixed-width fields per attribute make the touch-location → tuple-identifier
//! mapping a pure arithmetic operation (no slotted-page metadata lookups). We
//! therefore support only fixed-width types; variable-length strings are stored
//! as fixed-width, padded byte arrays with a per-column width.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The physical data type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE-754 floating point.
    Float64,
    /// Boolean stored as one byte.
    Bool,
    /// Fixed-width UTF-8 string padded with zero bytes; the parameter is the
    /// width in bytes.
    FixedStr(u16),
    /// Timestamp in milliseconds since an arbitrary epoch, stored as `i64`.
    TimestampMillis,
}

impl DataType {
    /// Width of one value of this type in bytes. Because every type is
    /// fixed-width, the byte offset of row `i` in a dense column is simply
    /// `i * width_bytes()`.
    pub fn width_bytes(&self) -> usize {
        match self {
            DataType::Int64 | DataType::Float64 | DataType::TimestampMillis => 8,
            DataType::Bool => 1,
            DataType::FixedStr(w) => *w as usize,
        }
    }

    /// True if values of this type can participate in numeric aggregation
    /// (sum/avg/min/max over numbers).
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            DataType::Int64 | DataType::Float64 | DataType::TimestampMillis
        )
    }

    /// True if the type is an integer-like type.
    pub fn is_integer(&self) -> bool {
        matches!(self, DataType::Int64 | DataType::TimestampMillis)
    }

    /// Short lowercase name used in catalog listings and error messages.
    pub fn name(&self) -> String {
        match self {
            DataType::Int64 => "int64".to_string(),
            DataType::Float64 => "float64".to_string(),
            DataType::Bool => "bool".to_string(),
            DataType::FixedStr(w) => format!("str{w}"),
            DataType::TimestampMillis => "timestamp".to_string(),
        }
    }

    /// Inverse of [`name`](DataType::name): parse a catalog/manifest type name
    /// back into a `DataType`.
    pub fn parse_name(name: &str) -> crate::Result<DataType> {
        match name {
            "int64" => Ok(DataType::Int64),
            "float64" => Ok(DataType::Float64),
            "bool" => Ok(DataType::Bool),
            "timestamp" => Ok(DataType::TimestampMillis),
            _ => match name.strip_prefix("str").and_then(|w| w.parse().ok()) {
                Some(w) => Ok(DataType::FixedStr(w)),
                None => Err(crate::DbTouchError::ParseError(format!(
                    "unknown data type name {name:?}"
                ))),
            },
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_are_fixed() {
        assert_eq!(DataType::Int64.width_bytes(), 8);
        assert_eq!(DataType::Float64.width_bytes(), 8);
        assert_eq!(DataType::TimestampMillis.width_bytes(), 8);
        assert_eq!(DataType::Bool.width_bytes(), 1);
        assert_eq!(DataType::FixedStr(16).width_bytes(), 16);
        assert_eq!(DataType::FixedStr(0).width_bytes(), 0);
    }

    #[test]
    fn numeric_classification() {
        assert!(DataType::Int64.is_numeric());
        assert!(DataType::Float64.is_numeric());
        assert!(DataType::TimestampMillis.is_numeric());
        assert!(!DataType::Bool.is_numeric());
        assert!(!DataType::FixedStr(8).is_numeric());
    }

    #[test]
    fn integer_classification() {
        assert!(DataType::Int64.is_integer());
        assert!(!DataType::Float64.is_integer());
    }

    #[test]
    fn display_names() {
        assert_eq!(DataType::Int64.to_string(), "int64");
        assert_eq!(DataType::FixedStr(32).to_string(), "str32");
        assert_eq!(DataType::TimestampMillis.to_string(), "timestamp");
    }

    #[test]
    fn serde_round_trip() {
        let t = DataType::FixedStr(12);
        let s = serde_json_like(&t);
        assert!(s.contains("FixedStr"));
    }

    /// Minimal check that serde derives exist without depending on serde_json here.
    fn serde_json_like(t: &DataType) -> String {
        format!("{t:?}")
    }
}
