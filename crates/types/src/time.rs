//! Timestamps and durations for gesture traces and result streams.
//!
//! Touch events carry timestamps relative to the start of an exploration
//! session. Using plain milliseconds keeps gesture traces serializable,
//! deterministic and independent of wall-clock time, which matters for the
//! reproducible figure harnesses.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};
use std::time::Duration;

/// A duration in milliseconds.
pub type Millis = u64;

/// A timestamp in milliseconds since the start of the session.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Session start.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Build a timestamp from milliseconds.
    pub fn from_millis(ms: u64) -> Timestamp {
        Timestamp(ms)
    }

    /// Build a timestamp from whole seconds.
    pub fn from_secs(secs: u64) -> Timestamp {
        Timestamp(secs * 1000)
    }

    /// Build a timestamp from fractional seconds (negative values clamp to 0).
    pub fn from_secs_f64(secs: f64) -> Timestamp {
        if secs.is_finite() && secs > 0.0 {
            Timestamp((secs * 1000.0).round() as u64)
        } else {
            Timestamp(0)
        }
    }

    /// Milliseconds since session start.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since session start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Elapsed time since an earlier timestamp; saturates at zero if `earlier`
    /// is actually later.
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration::from_millis(self.0.saturating_sub(earlier.0))
    }

    /// The later of two timestamps.
    pub fn max(self, other: Timestamp) -> Timestamp {
        Timestamp(self.0.max(other.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.as_millis() as u64)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    fn sub(self, rhs: Timestamp) -> Duration {
        self.since(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Timestamp::from_millis(1500).as_millis(), 1500);
        assert_eq!(Timestamp::from_secs(2).as_millis(), 2000);
        assert_eq!(Timestamp::from_secs_f64(1.5).as_millis(), 1500);
        assert_eq!(Timestamp::from_secs_f64(-4.0).as_millis(), 0);
        assert_eq!(Timestamp::from_secs_f64(f64::NAN).as_millis(), 0);
    }

    #[test]
    fn as_secs_round_trip() {
        let t = Timestamp::from_secs_f64(3.25);
        assert!((t.as_secs_f64() - 3.25).abs() < 1e-9);
    }

    #[test]
    fn since_saturates() {
        let a = Timestamp::from_millis(100);
        let b = Timestamp::from_millis(400);
        assert_eq!(b.since(a), Duration::from_millis(300));
        assert_eq!(a.since(b), Duration::ZERO);
        assert_eq!(b - a, Duration::from_millis(300));
    }

    #[test]
    fn add_duration() {
        let a = Timestamp::from_millis(100);
        assert_eq!((a + Duration::from_millis(50)).as_millis(), 150);
    }

    #[test]
    fn ordering_and_max() {
        let a = Timestamp::from_millis(100);
        let b = Timestamp::from_millis(200);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display() {
        assert_eq!(Timestamp::from_millis(42).to_string(), "42ms");
    }
}
