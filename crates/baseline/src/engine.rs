//! The blocking executor.
//!
//! The engine is intentionally monolithic: every query scans whole columns,
//! filters the full candidate set, aggregates everything that qualifies and
//! only then returns. There is no notion of partial results, sampling or user
//! steering — exactly the behaviour the paper contrasts dbTouch against
//! ("resulting in correct answers but slow response times").
//!
//! [`ExecStats`] reports the rows and bytes a query touched so the exploration
//! contest can compare "data touched until the pattern was found" across the
//! two systems.

use crate::ops;
use crate::query::{Query, SelectItem};
use dbtouch_storage::table::Table;
use dbtouch_types::{DbTouchError, Result, RowId, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Instant;

/// A matched row pair: a left row and (after a join) its right-side match.
type RowPair = (RowId, Option<RowId>);
/// Grouped row pairs keyed by an optional group value.
type GroupedRows = Vec<(Option<Value>, Vec<RowPair>)>;

/// Execution statistics of one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Rows read from storage (per column read).
    pub rows_scanned: u64,
    /// Bytes read from storage.
    pub bytes_scanned: u64,
    /// Output rows produced.
    pub rows_returned: u64,
    /// Wall-clock execution time in nanoseconds.
    pub elapsed_nanos: u64,
}

/// The result of one query: a header, rows, and execution statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// Output column labels.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<Value>>,
    /// Execution statistics.
    pub stats: ExecStats,
}

impl QueryResult {
    /// The single scalar of a one-row, one-column result (aggregates).
    pub fn scalar(&self) -> Option<&Value> {
        if self.rows.len() == 1 && self.rows[0].len() == 1 {
            self.rows[0].first()
        } else {
            None
        }
    }
}

/// An in-memory database of named tables with a blocking executor.
///
/// ```
/// use dbtouch_baseline::engine::Database;
/// use dbtouch_storage::{column::Column, table::Table};
///
/// let mut db = Database::new();
/// db.register(Table::from_columns(
///     "events",
///     vec![
///         Column::from_i64("id", (0..1000).collect()),
///         Column::from_f64("value", (0..1000).map(|i| i as f64).collect()),
///     ],
/// ).unwrap()).unwrap();
///
/// let result = db.run_sql("select avg(value) from events where id < 100").unwrap();
/// assert_eq!(result.scalar().unwrap().as_f64().unwrap(), 49.5);
/// // Blocking behaviour: the filter column was scanned in full.
/// assert!(result.stats.rows_scanned >= 1000);
/// ```
#[derive(Debug, Default)]
pub struct Database {
    tables: HashMap<String, Table>,
    /// Cumulative statistics across all queries run so far.
    total: ExecStats,
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Register a table; its name must be unique.
    pub fn register(&mut self, table: Table) -> Result<()> {
        let name = table.name().to_string();
        if self.tables.contains_key(&name) {
            return Err(DbTouchError::AlreadyExists(name));
        }
        self.tables.insert(name, table);
        Ok(())
    }

    /// The registered table names, sorted.
    pub fn catalog(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// A registered table by name.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| DbTouchError::NotFound(format!("table {name}")))
    }

    /// Cumulative statistics across all queries run through this database.
    pub fn total_stats(&self) -> ExecStats {
        self.total
    }

    /// Parse and run a SQL-ish query string.
    pub fn run_sql(&mut self, sql: &str) -> Result<QueryResult> {
        let query = crate::parser::parse_query(sql)?;
        self.run(&query)
    }

    /// Run a query.
    pub fn run(&mut self, query: &Query) -> Result<QueryResult> {
        let started = Instant::now();
        if query.select.is_empty() {
            return Err(DbTouchError::InvalidPlan("empty select list".into()));
        }
        let table = self.table(&query.from)?;
        let mut stats = ExecStats::default();

        // 1. Full scan + filters over the FROM table (blocking).
        let mut rows = ops::all_rows(table.row_count());
        for cond in &query.filters {
            // Conditions that reference the joined table are applied later.
            if table.column(&cond.column).is_err() {
                continue;
            }
            let col = table.column(&cond.column)?;
            Self::charge_scan(&mut stats, col.len(), col.data_type().width_bytes());
            rows = ops::filter_column(col, cond, Some(&rows))?;
        }

        // 2. Optional equi-join (blocking hash join over full inputs).
        let joined: Option<(Vec<(RowId, RowId)>, &Table)> = match &query.join {
            Some(j) => {
                let right = self.table(&j.table)?;
                let left_key = table.column(&j.left_column)?;
                let right_key = right.column(&j.right_column)?;
                let right_rows = ops::all_rows(right.row_count());
                Self::charge_scan(
                    &mut stats,
                    left_key.len(),
                    left_key.data_type().width_bytes(),
                );
                Self::charge_scan(
                    &mut stats,
                    right_key.len(),
                    right_key.data_type().width_bytes(),
                );
                let pairs = ops::hash_join(left_key, &rows, right_key, &right_rows)?;
                Some((pairs, right))
            }
            None => None,
        };

        // Helper resolving a column either from the FROM table or the joined one.
        let resolve = |name: &str| -> Result<(&Table, bool)> {
            if table.column(name).is_ok() {
                Ok((table, false))
            } else if let Some((_, right)) = &joined {
                if right.column(name).is_ok() {
                    return Ok((*right, true));
                }
                Err(DbTouchError::NotFound(format!("column {name}")))
            } else {
                Err(DbTouchError::NotFound(format!("column {name}")))
            }
        };

        // Materialize the effective row set as pairs (left row, optional right row).
        let effective: Vec<(RowId, Option<RowId>)> = match &joined {
            Some((pairs, right)) => {
                // Apply remaining filters that reference the joined table.
                let mut pairs: Vec<(RowId, Option<RowId>)> =
                    pairs.iter().map(|(l, r)| (*l, Some(*r))).collect();
                for cond in &query.filters {
                    if table.column(&cond.column).is_ok() {
                        continue;
                    }
                    let col = right.column(&cond.column)?;
                    Self::charge_scan(
                        &mut stats,
                        pairs.len() as u64,
                        col.data_type().width_bytes(),
                    );
                    pairs.retain(|(_, r)| {
                        r.map(|r| col.get(r).map(|v| cond.matches(&v)).unwrap_or(false))
                            .unwrap_or(false)
                    });
                }
                pairs
            }
            None => rows.iter().map(|r| (*r, None)).collect(),
        };

        // 3. Aggregation / projection.
        let columns: Vec<String> = query.select.iter().map(SelectItem::label).collect();
        let mut out_rows: Vec<Vec<Value>> = Vec::new();

        let read_value = |item_col: &str, pair: &(RowId, Option<RowId>)| -> Result<Value> {
            let (tbl, is_right) = resolve(item_col)?;
            let row = if is_right {
                pair.1.ok_or_else(|| {
                    DbTouchError::InvalidPlan(format!("column {item_col} needs a join"))
                })?
            } else {
                pair.0
            };
            tbl.column(item_col)?.get(row)
        };

        if query.is_aggregate_query() || query.group_by.is_some() {
            // Group rows (a single implicit group when no GROUP BY).
            let groups: GroupedRows = match &query.group_by {
                Some(gcol) => {
                    let (tbl, is_right) = resolve(gcol)?;
                    let col = tbl.column(gcol)?;
                    Self::charge_scan(
                        &mut stats,
                        effective.len() as u64,
                        col.data_type().width_bytes(),
                    );
                    let mut map: HashMap<String, (Value, Vec<RowPair>)> = HashMap::new();
                    for pair in &effective {
                        let row = if is_right {
                            pair.1.unwrap_or(pair.0)
                        } else {
                            pair.0
                        };
                        let v = col.get(row)?;
                        let key = match v.as_f64() {
                            Ok(n) => format!("n:{n}"),
                            Err(_) => format!("s:{v}"),
                        };
                        map.entry(key)
                            .or_insert_with(|| (v.clone(), Vec::new()))
                            .1
                            .push(*pair);
                    }
                    let mut gs: GroupedRows =
                        map.into_values().map(|(v, rows)| (Some(v), rows)).collect();
                    gs.sort_by(|a, b| a.0.as_ref().unwrap().total_cmp(b.0.as_ref().unwrap()));
                    gs
                }
                None => vec![(None, effective.clone())],
            };

            for (group_value, pairs) in groups {
                let mut row_out = Vec::with_capacity(query.select.len());
                for item in &query.select {
                    match item {
                        SelectItem::Column(c) => {
                            // In an aggregate query a plain column must be the group key.
                            if Some(c) == query.group_by.as_ref() {
                                row_out.push(group_value.clone().unwrap_or(Value::Int(0)));
                            } else {
                                return Err(DbTouchError::InvalidPlan(format!(
                                    "column {c} must appear in group by"
                                )));
                            }
                        }
                        SelectItem::Aggregate { func, column } => {
                            let value = match column {
                                None => Value::Int(pairs.len() as i64),
                                Some(c) => {
                                    let (tbl, is_right) = resolve(c)?;
                                    let col = tbl.column(c)?;
                                    Self::charge_scan(
                                        &mut stats,
                                        pairs.len() as u64,
                                        col.data_type().width_bytes(),
                                    );
                                    let rows: Vec<RowId> = pairs
                                        .iter()
                                        .map(|p| if is_right { p.1.unwrap_or(p.0) } else { p.0 })
                                        .collect();
                                    ops::aggregate_rows(*func, Some(col), &rows, rows.len() as u64)?
                                }
                            };
                            row_out.push(value);
                        }
                    }
                }
                out_rows.push(row_out);
            }
        } else {
            // Plain projection.
            for pair in &effective {
                let mut row_out = Vec::with_capacity(query.select.len());
                for item in &query.select {
                    match item {
                        SelectItem::Column(c) => row_out.push(read_value(c, pair)?),
                        SelectItem::Aggregate { .. } => unreachable!("handled above"),
                    }
                }
                out_rows.push(row_out);
                if let Some(limit) = query.limit {
                    if out_rows.len() as u64 >= limit {
                        break;
                    }
                }
            }
            // Charge the projection scans (whole qualifying set per projected column).
            for item in &query.select {
                if let SelectItem::Column(c) = item {
                    if let Ok((tbl, _)) = resolve(c) {
                        if let Ok(col) = tbl.column(c) {
                            Self::charge_scan(
                                &mut stats,
                                effective.len() as u64,
                                col.data_type().width_bytes(),
                            );
                        }
                    }
                }
            }
        }

        if let Some(limit) = query.limit {
            out_rows.truncate(limit as usize);
        }

        stats.rows_returned = out_rows.len() as u64;
        stats.elapsed_nanos = started.elapsed().as_nanos() as u64;
        self.total.rows_scanned += stats.rows_scanned;
        self.total.bytes_scanned += stats.bytes_scanned;
        self.total.rows_returned += stats.rows_returned;
        self.total.elapsed_nanos += stats.elapsed_nanos;

        Ok(QueryResult {
            columns,
            rows: out_rows,
            stats,
        })
    }

    fn charge_scan(stats: &mut ExecStats, rows: u64, width: usize) {
        stats.rows_scanned += rows;
        stats.bytes_scanned += rows * width as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{AggFunc, Condition, ConditionOp, JoinClause};
    use dbtouch_storage::column::Column;

    fn db() -> Database {
        let mut db = Database::new();
        db.register(
            Table::from_columns(
                "events",
                vec![
                    Column::from_i64("id", (0..1000).collect()),
                    Column::from_f64("value", (0..1000).map(|i| (i % 100) as f64).collect()),
                    Column::from_i64("kind", (0..1000).map(|i| i % 4).collect()),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db.register(
            Table::from_columns(
                "kinds",
                vec![
                    Column::from_i64("kind_id", vec![0, 1, 2, 3]),
                    Column::from_strings("name", 8, &["alpha", "beta", "gamma", "delta"]).unwrap(),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn catalog_and_duplicate_registration() {
        let mut db = db();
        assert_eq!(
            db.catalog(),
            vec!["events".to_string(), "kinds".to_string()]
        );
        let dup = Table::from_columns("events", vec![Column::from_i64("x", vec![1])]).unwrap();
        assert!(db.register(dup).is_err());
        assert!(db.table("missing").is_err());
    }

    #[test]
    fn projection_with_filter_and_limit() {
        let mut db = db();
        let q = Query::from_table("events")
            .select_column("id")
            .select_column("value")
            .filter(Condition::new("value", ConditionOp::Ge, 98i64))
            .limit(5);
        let r = db.run(&q).unwrap();
        assert_eq!(r.columns, vec!["id".to_string(), "value".to_string()]);
        assert_eq!(r.rows.len(), 5);
        for row in &r.rows {
            assert!(row[1].as_f64().unwrap() >= 98.0);
        }
        // the filter scanned the whole value column: blocking behaviour
        assert!(r.stats.rows_scanned >= 1000);
        assert!(r.stats.bytes_scanned >= 8000);
    }

    #[test]
    fn scalar_aggregate() {
        let mut db = db();
        let q = Query::from_table("events").select_aggregate(AggFunc::Avg, Some("value"));
        let r = db.run(&q).unwrap();
        let avg = r.scalar().unwrap().as_f64().unwrap();
        assert!((avg - 49.5).abs() < 1e-9);
        assert_eq!(r.stats.rows_returned, 1);
    }

    #[test]
    fn count_star() {
        let mut db = db();
        let q = Query::from_table("events").select_aggregate(AggFunc::Count, None);
        let r = db.run(&q).unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Int(1000));
    }

    #[test]
    fn group_by_aggregation() {
        let mut db = db();
        let q = Query::from_table("events")
            .select_column("kind")
            .select_aggregate(AggFunc::Count, None)
            .select_aggregate(AggFunc::Avg, Some("value"))
            .group_by("kind");
        let r = db.run(&q).unwrap();
        assert_eq!(r.rows.len(), 4);
        assert_eq!(r.rows[0][0], Value::Int(0));
        assert_eq!(r.rows[0][1], Value::Int(250));
        // selecting a non-group column in an aggregate query fails
        let bad = Query::from_table("events")
            .select_column("id")
            .select_aggregate(AggFunc::Count, None)
            .group_by("kind");
        assert!(db.run(&bad).is_err());
    }

    #[test]
    fn join_query() {
        let mut db = db();
        let q = Query::from_table("events")
            .select_column("id")
            .select_column("name")
            .join(JoinClause {
                table: "kinds".into(),
                left_column: "kind".into(),
                right_column: "kind_id".into(),
            })
            .filter(Condition::new("name", ConditionOp::Eq, "alpha"))
            .limit(3);
        let r = db.run(&q).unwrap();
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            assert_eq!(row[1], Value::Str("alpha".into()));
            // kind 0 rows are ids divisible by 4
            assert_eq!(row[0].as_i64().unwrap() % 4, 0);
        }
    }

    #[test]
    fn aggregate_over_join() {
        let mut db = db();
        let q = Query::from_table("events")
            .select_column("name")
            .select_aggregate(AggFunc::Count, None)
            .join(JoinClause {
                table: "kinds".into(),
                left_column: "kind".into(),
                right_column: "kind_id".into(),
            })
            .group_by("name");
        let r = db.run(&q).unwrap();
        assert_eq!(r.rows.len(), 4);
        let total: i64 = r.rows.iter().map(|row| row[1].as_i64().unwrap()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn empty_select_rejected_and_unknown_table() {
        let mut db = db();
        assert!(db.run(&Query::from_table("events")).is_err());
        assert!(db
            .run(&Query::from_table("missing").select_column("x"))
            .is_err());
    }

    #[test]
    fn total_stats_accumulate() {
        let mut db = db();
        let q = Query::from_table("events").select_aggregate(AggFunc::Sum, Some("value"));
        db.run(&q).unwrap();
        db.run(&q).unwrap();
        assert!(db.total_stats().rows_scanned >= 2000);
    }

    #[test]
    fn run_sql_end_to_end() {
        let mut db = db();
        let r = db
            .run_sql("select avg(value) from events where kind = 2")
            .unwrap();
        let avg = r.scalar().unwrap().as_f64().unwrap();
        assert!(avg > 0.0 && avg < 100.0);
    }
}
