//! A small SQL-ish parser for the baseline query model.
//!
//! Supports exactly the grammar the exploration-contest scenarios need:
//!
//! ```text
//! SELECT item (, item)*
//! FROM table
//! [JOIN table ON col = col]
//! [WHERE cond (AND cond)*]
//! [GROUP BY col]
//! [LIMIT n]
//!
//! item  := col | count(*) | count(col) | sum(col) | avg(col) | min(col) | max(col)
//! cond  := col op literal | col BETWEEN literal AND literal
//! op    := = | != | <> | < | <= | > | >=
//! literal := integer | float | 'string'
//! ```
//!
//! Keywords are case-insensitive; identifiers are case-sensitive.

use crate::query::{AggFunc, Condition, ConditionOp, JoinClause, Query, SelectItem};
use dbtouch_types::{DbTouchError, Result, Value};

/// Parse a query string into a [`Query`].
pub fn parse_query(sql: &str) -> Result<Query> {
    Parser::new(sql).parse()
}

struct Parser {
    tokens: Vec<String>,
    pos: usize,
}

impl Parser {
    fn new(sql: &str) -> Parser {
        Parser {
            tokens: tokenize(sql),
            pos: 0,
        }
    }

    fn err(&self, msg: impl Into<String>) -> DbTouchError {
        DbTouchError::ParseError(format!("{} (near token {})", msg.into(), self.pos))
    }

    fn peek(&self) -> Option<&str> {
        self.tokens.get(self.pos).map(String::as_str)
    }

    fn next(&mut self) -> Option<String> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.next() {
            Some(t) if t.eq_ignore_ascii_case(kw) => Ok(()),
            Some(t) => Err(self.err(format!("expected {kw}, found {t}"))),
            None => Err(self.err(format!("expected {kw}, found end of input"))),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.eq_ignore_ascii_case(kw))
    }

    fn parse(mut self) -> Result<Query> {
        self.expect_keyword("select")?;
        let select = self.parse_select_list()?;
        self.expect_keyword("from")?;
        let from = self.next().ok_or_else(|| self.err("expected table name"))?;
        let mut query = Query {
            select,
            from,
            join: None,
            filters: Vec::new(),
            group_by: None,
            limit: None,
        };
        if self.peek_keyword("join") {
            self.next();
            let table = self.next().ok_or_else(|| self.err("expected join table"))?;
            self.expect_keyword("on")?;
            let left = self
                .next()
                .ok_or_else(|| self.err("expected join column"))?;
            self.expect_keyword("=")?;
            let right = self
                .next()
                .ok_or_else(|| self.err("expected join column"))?;
            query.join = Some(JoinClause {
                table,
                left_column: left,
                right_column: right,
            });
        }
        if self.peek_keyword("where") {
            self.next();
            loop {
                query.filters.push(self.parse_condition()?);
                if self.peek_keyword("and") {
                    self.next();
                } else {
                    break;
                }
            }
        }
        if self.peek_keyword("group") {
            self.next();
            self.expect_keyword("by")?;
            query.group_by = Some(
                self.next()
                    .ok_or_else(|| self.err("expected group column"))?,
            );
        }
        if self.peek_keyword("limit") {
            self.next();
            let n = self
                .next()
                .ok_or_else(|| self.err("expected limit value"))?;
            query.limit = Some(
                n.parse::<u64>()
                    .map_err(|_| self.err(format!("invalid limit {n}")))?,
            );
        }
        if let Some(extra) = self.peek() {
            return Err(self.err(format!("unexpected trailing token {extra}")));
        }
        if query.select.is_empty() {
            return Err(self.err("empty select list"));
        }
        Ok(query)
    }

    fn parse_select_list(&mut self) -> Result<Vec<SelectItem>> {
        let mut items = Vec::new();
        loop {
            items.push(self.parse_select_item()?);
            if self.peek() == Some(",") {
                self.next();
            } else {
                break;
            }
        }
        Ok(items)
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        let token = self
            .next()
            .ok_or_else(|| self.err("expected select item"))?;
        let func = match token.to_ascii_lowercase().as_str() {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "avg" => Some(AggFunc::Avg),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            _ => None,
        };
        match func {
            Some(func) if self.peek() == Some("(") => {
                self.next(); // (
                let arg = self
                    .next()
                    .ok_or_else(|| self.err("expected aggregate argument"))?;
                if self.next().as_deref() != Some(")") {
                    return Err(self.err("expected )"));
                }
                let column = if arg == "*" {
                    if func != AggFunc::Count {
                        return Err(self.err("only count(*) may use *"));
                    }
                    None
                } else {
                    Some(arg)
                };
                Ok(SelectItem::Aggregate { func, column })
            }
            _ => Ok(SelectItem::Column(token)),
        }
    }

    fn parse_condition(&mut self) -> Result<Condition> {
        let column = self.next().ok_or_else(|| self.err("expected column"))?;
        let op_token = self.next().ok_or_else(|| self.err("expected operator"))?;
        if op_token.eq_ignore_ascii_case("between") {
            let low = self.parse_literal()?;
            self.expect_keyword("and")?;
            let high = self.parse_literal()?;
            return Ok(Condition {
                column,
                op: ConditionOp::Between,
                value: low,
                upper: Some(high),
            });
        }
        let op = match op_token.as_str() {
            "=" => ConditionOp::Eq,
            "!=" | "<>" => ConditionOp::Ne,
            "<" => ConditionOp::Lt,
            "<=" => ConditionOp::Le,
            ">" => ConditionOp::Gt,
            ">=" => ConditionOp::Ge,
            other => return Err(self.err(format!("unknown operator {other}"))),
        };
        let value = self.parse_literal()?;
        Ok(Condition {
            column,
            op,
            value,
            upper: None,
        })
    }

    fn parse_literal(&mut self) -> Result<Value> {
        let token = self.next().ok_or_else(|| self.err("expected literal"))?;
        if let Some(stripped) = token.strip_prefix('\'') {
            let s = stripped.strip_suffix('\'').unwrap_or(stripped);
            return Ok(Value::Str(s.to_string()));
        }
        if let Ok(i) = token.parse::<i64>() {
            return Ok(Value::Int(i));
        }
        if let Ok(f) = token.parse::<f64>() {
            return Ok(Value::Float(f));
        }
        Err(self.err(format!("invalid literal {token}")))
    }
}

/// Split a query string into tokens: identifiers/numbers, quoted strings,
/// punctuation and multi-character operators.
fn tokenize(sql: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = sql.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c == '\'' {
            // quoted string literal, kept with its quotes
            let mut j = i + 1;
            while j < chars.len() && chars[j] != '\'' {
                j += 1;
            }
            let end = (j + 1).min(chars.len());
            tokens.push(chars[i..end].iter().collect());
            i = end;
        } else if c == '(' || c == ')' || c == ',' || c == '*' || c == '=' {
            tokens.push(c.to_string());
            i += 1;
        } else if c == '<' || c == '>' || c == '!' {
            if i + 1 < chars.len() && (chars[i + 1] == '=' || (c == '<' && chars[i + 1] == '>')) {
                tokens.push(chars[i..=i + 1].iter().collect());
                i += 2;
            } else {
                tokens.push(c.to_string());
                i += 1;
            }
        } else {
            let mut j = i;
            while j < chars.len() && !chars[j].is_whitespace() && !"(),*=<>!'".contains(chars[j]) {
                j += 1;
            }
            tokens.push(chars[i..j].iter().collect());
            i = j;
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_splits_operators_and_strings() {
        assert_eq!(
            tokenize("a>=5 and b='x y'"),
            vec!["a", ">=", "5", "and", "b", "=", "'x y'"]
        );
        assert_eq!(tokenize("count(*)"), vec!["count", "(", "*", ")"]);
        assert_eq!(tokenize("a <> 3"), vec!["a", "<>", "3"]);
    }

    #[test]
    fn parse_simple_projection() {
        let q = parse_query("select id, value from events limit 10").unwrap();
        assert_eq!(q.from, "events");
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.limit, Some(10));
        assert!(q.filters.is_empty());
    }

    #[test]
    fn parse_aggregates_and_group_by() {
        let q = parse_query("SELECT kind, COUNT(*), AVG(value) FROM events GROUP BY kind").unwrap();
        assert_eq!(q.select.len(), 3);
        assert!(q.is_aggregate_query());
        assert_eq!(q.group_by.as_deref(), Some("kind"));
        assert_eq!(
            q.select[1],
            SelectItem::Aggregate {
                func: AggFunc::Count,
                column: None
            }
        );
        assert_eq!(
            q.select[2],
            SelectItem::Aggregate {
                func: AggFunc::Avg,
                column: Some("value".into())
            }
        );
    }

    #[test]
    fn parse_where_conditions() {
        let q = parse_query(
            "select id from events where value >= 10.5 and kind != 2 and name = 'alpha'",
        )
        .unwrap();
        assert_eq!(q.filters.len(), 3);
        assert_eq!(q.filters[0].op, ConditionOp::Ge);
        assert_eq!(q.filters[0].value, Value::Float(10.5));
        assert_eq!(q.filters[1].op, ConditionOp::Ne);
        assert_eq!(q.filters[2].value, Value::Str("alpha".into()));
    }

    #[test]
    fn parse_between() {
        let q = parse_query("select id from events where value between 5 and 9").unwrap();
        assert_eq!(q.filters.len(), 1);
        assert_eq!(q.filters[0].op, ConditionOp::Between);
        assert_eq!(q.filters[0].value, Value::Int(5));
        assert_eq!(q.filters[0].upper, Some(Value::Int(9)));
    }

    #[test]
    fn parse_join() {
        let q = parse_query(
            "select id, name from events join kinds on kind = kind_id where name = 'beta'",
        )
        .unwrap();
        let j = q.join.unwrap();
        assert_eq!(j.table, "kinds");
        assert_eq!(j.left_column, "kind");
        assert_eq!(j.right_column, "kind_id");
    }

    #[test]
    fn parse_errors() {
        assert!(parse_query("selekt x from t").is_err());
        assert!(parse_query("select from t").is_err());
        assert!(parse_query("select x t").is_err());
        assert!(parse_query("select x from t where").is_err());
        assert!(parse_query("select x from t where a ~ 3").is_err());
        assert!(parse_query("select x from t limit ten").is_err());
        assert!(parse_query("select sum(*) from t").is_err());
        assert!(parse_query("select x from t garbage").is_err());
    }

    #[test]
    fn round_trip_display_reparses() {
        let original = parse_query(
            "select kind, avg(value) from events where value > 10 group by kind limit 5",
        )
        .unwrap();
        let reparsed = parse_query(&original.to_string()).unwrap();
        assert_eq!(original, reparsed);
    }
}
