//! # dbtouch-baseline
//!
//! A small, traditional, blocking column-store executor used as the comparison
//! system for dbTouch.
//!
//! The paper contrasts dbTouch with "state-of-the-art database systems" in two
//! places: conceptually throughout Section 2 ("In traditional systems, once a
//! query is posed, the database controls the data flow"), and concretely in the
//! Appendix A demo, where one participant explores data through dbTouch on a
//! tablet while another fires SQL at "the open-source column store DBMS" on a
//! laptop. This crate is that laptop system, reduced to what the comparison
//! needs:
//!
//! * [`query`] — a tiny query model: projections, aggregates, a WHERE
//!   condition, GROUP BY, an equi-join and LIMIT.
//! * [`parser`] — a small SQL-ish text front end for that model, so the
//!   "exploration contest" can literally fire query strings.
//! * [`ops`] — the blocking operators: full-column scans, filters, hash
//!   aggregation and a build-then-probe hash join.
//! * [`engine`] — the executor: it always consumes entire columns before
//!   producing a result (the monolithic behaviour dbTouch is designed to
//!   avoid), and reports how many rows and bytes each query touched.

pub mod engine;
pub mod ops;
pub mod parser;
pub mod query;

pub use engine::{Database, ExecStats, QueryResult};
pub use parser::parse_query;
pub use query::{AggFunc, Condition, ConditionOp, JoinClause, Query, SelectItem};
