//! Blocking operators of the baseline executor.
//!
//! Everything here consumes its entire input before producing output — that is
//! the defining property the dbTouch kernel moves away from. The operators work
//! over row-id selections so the engine can compose scan → filter → join →
//! aggregate in the classical way.

use crate::query::{AggFunc, Condition};
use dbtouch_storage::column::Column;
use dbtouch_types::{DbTouchError, Result, RowId, Value};
use std::collections::HashMap;

/// Apply one condition over a column, returning the qualifying row ids from the
/// candidate set (or all rows when `candidates` is `None`). Scans every
/// candidate row — no indexes, no early exit.
pub fn filter_column(
    column: &Column,
    condition: &Condition,
    candidates: Option<&[RowId]>,
) -> Result<Vec<RowId>> {
    let mut out = Vec::new();
    match candidates {
        Some(rows) => {
            for &row in rows {
                if condition.matches(&column.get(row)?) {
                    out.push(row);
                }
            }
        }
        None => {
            for i in 0..column.len() {
                let row = RowId(i);
                if condition.matches(&column.get(row)?) {
                    out.push(row);
                }
            }
        }
    }
    Ok(out)
}

/// Compute one aggregate over the given rows of a column. `column = None` is
/// only valid for `Count` (i.e. `count(*)`), in which case `row_count` is used.
pub fn aggregate_rows(
    func: AggFunc,
    column: Option<&Column>,
    rows: &[RowId],
    row_count: u64,
) -> Result<Value> {
    match (func, column) {
        (AggFunc::Count, None) => Ok(Value::Int(row_count as i64)),
        (AggFunc::Count, Some(_)) => Ok(Value::Int(rows.len() as i64)),
        (_, None) => Err(DbTouchError::InvalidPlan(format!(
            "{} requires a column",
            func.name()
        ))),
        (func, Some(col)) => {
            let mut count = 0u64;
            let mut sum = 0.0;
            let mut min: Option<f64> = None;
            let mut max: Option<f64> = None;
            for &row in rows {
                let x = col.f64_at(row)?;
                count += 1;
                sum += x;
                min = Some(min.map_or(x, |m| m.min(x)));
                max = Some(max.map_or(x, |m| m.max(x)));
            }
            Ok(match func {
                AggFunc::Sum => Value::Float(sum),
                AggFunc::Avg => {
                    if count == 0 {
                        Value::Float(f64::NAN)
                    } else {
                        Value::Float(sum / count as f64)
                    }
                }
                AggFunc::Min => Value::Float(min.unwrap_or(f64::NAN)),
                AggFunc::Max => Value::Float(max.unwrap_or(f64::NAN)),
                AggFunc::Count => unreachable!("handled above"),
            })
        }
    }
}

/// Group the given rows by the values of `group_column`, returning
/// `(group value, rows of that group)` pairs sorted by group value.
pub fn group_rows(group_column: &Column, rows: &[RowId]) -> Result<Vec<(Value, Vec<RowId>)>> {
    let mut groups: HashMap<String, (Value, Vec<RowId>)> = HashMap::new();
    for &row in rows {
        let v = group_column.get(row)?;
        let key = match v.as_f64() {
            Ok(n) => format!("n:{n}"),
            Err(_) => format!("s:{v}"),
        };
        groups
            .entry(key)
            .or_insert_with(|| (v.clone(), Vec::new()))
            .1
            .push(row);
    }
    let mut out: Vec<(Value, Vec<RowId>)> = groups.into_values().collect();
    out.sort_by(|a, b| a.0.total_cmp(&b.0));
    Ok(out)
}

/// A classical build-then-probe equi-join over two columns. Returns pairs of
/// `(left row, right row)` with equal keys. The whole build side is consumed
/// before any output is produced.
pub fn hash_join(
    left_key: &Column,
    left_rows: &[RowId],
    right_key: &Column,
    right_rows: &[RowId],
) -> Result<Vec<(RowId, RowId)>> {
    let mut table: HashMap<String, Vec<RowId>> = HashMap::new();
    for &row in left_rows {
        let v = left_key.get(row)?;
        let key = match v.as_f64() {
            Ok(n) => format!("n:{n}"),
            Err(_) => format!("s:{v}"),
        };
        table.entry(key).or_default().push(row);
    }
    let mut out = Vec::new();
    for &row in right_rows {
        let v = right_key.get(row)?;
        let key = match v.as_f64() {
            Ok(n) => format!("n:{n}"),
            Err(_) => format!("s:{v}"),
        };
        if let Some(matches) = table.get(&key) {
            for &l in matches {
                out.push((l, row));
            }
        }
    }
    Ok(out)
}

/// All row ids of a column (the full-scan candidate set).
pub fn all_rows(len: u64) -> Vec<RowId> {
    (0..len).map(RowId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ConditionOp;

    fn col() -> Column {
        Column::from_i64("v", vec![5, 1, 9, 3, 7, 1])
    }

    #[test]
    fn filter_full_and_candidates() {
        let c = col();
        let cond = Condition::new("v", ConditionOp::Gt, 3i64);
        let all = filter_column(&c, &cond, None).unwrap();
        assert_eq!(all, vec![RowId(0), RowId(2), RowId(4)]);
        let subset = filter_column(&c, &cond, Some(&[RowId(0), RowId(1)])).unwrap();
        assert_eq!(subset, vec![RowId(0)]);
    }

    #[test]
    fn aggregates() {
        let c = col();
        let rows = all_rows(c.len());
        assert_eq!(
            aggregate_rows(AggFunc::Count, None, &rows, c.len()).unwrap(),
            Value::Int(6)
        );
        assert_eq!(
            aggregate_rows(AggFunc::Sum, Some(&c), &rows, c.len()).unwrap(),
            Value::Float(26.0)
        );
        assert_eq!(
            aggregate_rows(AggFunc::Min, Some(&c), &rows, c.len()).unwrap(),
            Value::Float(1.0)
        );
        assert_eq!(
            aggregate_rows(AggFunc::Max, Some(&c), &rows, c.len()).unwrap(),
            Value::Float(9.0)
        );
        let avg = aggregate_rows(AggFunc::Avg, Some(&c), &rows, c.len()).unwrap();
        assert_eq!(avg, Value::Float(26.0 / 6.0));
        assert!(aggregate_rows(AggFunc::Sum, None, &rows, c.len()).is_err());
    }

    #[test]
    fn empty_rows_aggregate() {
        let c = col();
        assert_eq!(
            aggregate_rows(AggFunc::Count, Some(&c), &[], c.len()).unwrap(),
            Value::Int(0)
        );
        match aggregate_rows(AggFunc::Avg, Some(&c), &[], c.len()).unwrap() {
            Value::Float(v) => assert!(v.is_nan()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn grouping() {
        let groups_col = Column::from_strings("g", 4, &["a", "b", "a", "b", "a"]).unwrap();
        let rows = all_rows(groups_col.len());
        let groups = group_rows(&groups_col, &rows).unwrap();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, Value::Str("a".into()));
        assert_eq!(groups[0].1.len(), 3);
        assert_eq!(groups[1].1.len(), 2);
    }

    #[test]
    fn join_produces_all_pairs() {
        let left = Column::from_i64("k", vec![1, 2, 3, 2]);
        let right = Column::from_i64("k", vec![2, 2, 4]);
        let pairs =
            hash_join(&left, &all_rows(left.len()), &right, &all_rows(right.len())).unwrap();
        // left rows 1 and 3 have key 2; right rows 0 and 1 have key 2 -> 4 pairs
        assert_eq!(pairs.len(), 4);
        assert!(pairs.contains(&(RowId(1), RowId(0))));
        assert!(pairs.contains(&(RowId(3), RowId(1))));
    }

    #[test]
    fn join_numeric_keys_across_types() {
        let left = Column::from_i64("k", vec![1, 2]);
        let right = Column::from_f64("k", vec![2.0]);
        let pairs = hash_join(&left, &all_rows(2), &right, &all_rows(1)).unwrap();
        assert_eq!(pairs, vec![(RowId(1), RowId(0))]);
    }
}
