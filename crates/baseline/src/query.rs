//! The baseline system's query model.
//!
//! A deliberately small subset of SQL: enough for the exploration-contest
//! scenarios (point probes, range filters, aggregates, group-bys and a simple
//! equi-join) without growing into a full planner.

use dbtouch_types::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregate functions supported by the baseline executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    /// `count(*)` / `count(col)`.
    Count,
    /// `sum(col)`.
    Sum,
    /// `avg(col)`.
    Avg,
    /// `min(col)`.
    Min,
    /// `max(col)`.
    Max,
}

impl AggFunc {
    /// Lowercase SQL name.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectItem {
    /// A plain column reference.
    Column(String),
    /// An aggregate over a column; `column = None` means `count(*)`.
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// The aggregated column (`None` only for `count(*)`).
        column: Option<String>,
    },
}

impl SelectItem {
    /// Display name used as the output column header.
    pub fn label(&self) -> String {
        match self {
            SelectItem::Column(c) => c.clone(),
            SelectItem::Aggregate { func, column } => match column {
                Some(c) => format!("{}({c})", func.name()),
                None => format!("{}(*)", func.name()),
            },
        }
    }

    /// True if this item is an aggregate.
    pub fn is_aggregate(&self) -> bool {
        matches!(self, SelectItem::Aggregate { .. })
    }
}

/// Comparison operators of WHERE conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConditionOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `BETWEEN low AND high`
    Between,
}

/// A WHERE condition over one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Condition {
    /// The restricted column.
    pub column: String,
    /// The comparison operator.
    pub op: ConditionOp,
    /// The comparison constant (the lower bound for `Between`).
    pub value: Value,
    /// The upper bound for `Between`, unused otherwise.
    pub upper: Option<Value>,
}

impl Condition {
    /// Build a simple comparison condition.
    pub fn new(column: impl Into<String>, op: ConditionOp, value: impl Into<Value>) -> Condition {
        Condition {
            column: column.into(),
            op,
            value: value.into(),
            upper: None,
        }
    }

    /// Build a BETWEEN condition.
    pub fn between(
        column: impl Into<String>,
        low: impl Into<Value>,
        high: impl Into<Value>,
    ) -> Condition {
        Condition {
            column: column.into(),
            op: ConditionOp::Between,
            value: low.into(),
            upper: Some(high.into()),
        }
    }

    /// Evaluate the condition against a value of the restricted column.
    pub fn matches(&self, v: &Value) -> bool {
        use std::cmp::Ordering::*;
        match self.op {
            ConditionOp::Eq => v.total_cmp(&self.value) == Equal,
            ConditionOp::Ne => v.total_cmp(&self.value) != Equal,
            ConditionOp::Lt => v.total_cmp(&self.value) == Less,
            ConditionOp::Le => v.total_cmp(&self.value) != Greater,
            ConditionOp::Gt => v.total_cmp(&self.value) == Greater,
            ConditionOp::Ge => v.total_cmp(&self.value) != Less,
            ConditionOp::Between => {
                let upper = self.upper.as_ref().unwrap_or(&self.value);
                v.total_cmp(&self.value) != Less && v.total_cmp(upper) != Greater
            }
        }
    }
}

/// An equi-join clause: `JOIN <table> ON <left_column> = <right_column>`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinClause {
    /// The right-hand table.
    pub table: String,
    /// Join column of the FROM table.
    pub left_column: String,
    /// Join column of the joined table.
    pub right_column: String,
}

/// A query over the baseline database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// The SELECT list (never empty).
    pub select: Vec<SelectItem>,
    /// The FROM table.
    pub from: String,
    /// Optional equi-join.
    pub join: Option<JoinClause>,
    /// Optional WHERE conditions (conjunction).
    pub filters: Vec<Condition>,
    /// Optional GROUP BY column.
    pub group_by: Option<String>,
    /// Optional LIMIT on the produced rows.
    pub limit: Option<u64>,
}

impl Query {
    /// Start building a query over a table.
    pub fn from_table(table: impl Into<String>) -> Query {
        Query {
            select: Vec::new(),
            from: table.into(),
            join: None,
            filters: Vec::new(),
            group_by: None,
            limit: None,
        }
    }

    /// Add a plain column to the SELECT list.
    pub fn select_column(mut self, column: impl Into<String>) -> Query {
        self.select.push(SelectItem::Column(column.into()));
        self
    }

    /// Add an aggregate to the SELECT list.
    pub fn select_aggregate(mut self, func: AggFunc, column: Option<&str>) -> Query {
        self.select.push(SelectItem::Aggregate {
            func,
            column: column.map(str::to_string),
        });
        self
    }

    /// Add a WHERE condition (conditions are ANDed).
    pub fn filter(mut self, condition: Condition) -> Query {
        self.filters.push(condition);
        self
    }

    /// Set the GROUP BY column.
    pub fn group_by(mut self, column: impl Into<String>) -> Query {
        self.group_by = Some(column.into());
        self
    }

    /// Set an equi-join.
    pub fn join(mut self, clause: JoinClause) -> Query {
        self.join = Some(clause);
        self
    }

    /// Set the LIMIT.
    pub fn limit(mut self, n: u64) -> Query {
        self.limit = Some(n);
        self
    }

    /// True if the query has any aggregate select item.
    pub fn is_aggregate_query(&self) -> bool {
        self.select.iter().any(SelectItem::is_aggregate)
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let select: Vec<String> = self.select.iter().map(SelectItem::label).collect();
        write!(f, "select {} from {}", select.join(", "), self.from)?;
        if let Some(j) = &self.join {
            write!(
                f,
                " join {} on {} = {}",
                j.table, j.left_column, j.right_column
            )?;
        }
        if !self.filters.is_empty() {
            let conds: Vec<String> = self
                .filters
                .iter()
                .map(|c| match c.op {
                    ConditionOp::Between => format!(
                        "{} between {} and {}",
                        c.column,
                        c.value,
                        c.upper.as_ref().unwrap_or(&c.value)
                    ),
                    _ => format!("{} {} {}", c.column, op_symbol(c.op), c.value),
                })
                .collect();
            write!(f, " where {}", conds.join(" and "))?;
        }
        if let Some(g) = &self.group_by {
            write!(f, " group by {g}")?;
        }
        if let Some(l) = self.limit {
            write!(f, " limit {l}")?;
        }
        Ok(())
    }
}

fn op_symbol(op: ConditionOp) -> &'static str {
    match op {
        ConditionOp::Eq => "=",
        ConditionOp::Ne => "!=",
        ConditionOp::Lt => "<",
        ConditionOp::Le => "<=",
        ConditionOp::Gt => ">",
        ConditionOp::Ge => ">=",
        ConditionOp::Between => "between",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_display() {
        let q = Query::from_table("events")
            .select_column("kind")
            .select_aggregate(AggFunc::Avg, Some("value"))
            .filter(Condition::new("value", ConditionOp::Gt, 10i64))
            .group_by("kind")
            .limit(5);
        assert!(q.is_aggregate_query());
        assert_eq!(
            q.to_string(),
            "select kind, avg(value) from events where value > 10 group by kind limit 5"
        );
    }

    #[test]
    fn select_item_labels() {
        assert_eq!(SelectItem::Column("x".into()).label(), "x");
        assert_eq!(
            SelectItem::Aggregate {
                func: AggFunc::Count,
                column: None
            }
            .label(),
            "count(*)"
        );
        assert_eq!(
            SelectItem::Aggregate {
                func: AggFunc::Max,
                column: Some("v".into())
            }
            .label(),
            "max(v)"
        );
    }

    #[test]
    fn condition_matching() {
        let c = Condition::new("v", ConditionOp::Ge, 10i64);
        assert!(c.matches(&Value::Int(10)));
        assert!(c.matches(&Value::Int(11)));
        assert!(!c.matches(&Value::Int(9)));
        let b = Condition::between("v", 5i64, 7i64);
        assert!(b.matches(&Value::Int(5)));
        assert!(b.matches(&Value::Int(7)));
        assert!(!b.matches(&Value::Int(8)));
        let ne = Condition::new("v", ConditionOp::Ne, 3i64);
        assert!(ne.matches(&Value::Int(4)));
        assert!(!ne.matches(&Value::Int(3)));
    }

    #[test]
    fn join_display() {
        let q = Query::from_table("a")
            .select_column("a.x")
            .join(JoinClause {
                table: "b".into(),
                left_column: "id".into(),
                right_column: "a_id".into(),
            });
        assert!(q.to_string().contains("join b on id = a_id"));
    }
}
