//! # dbtouch-storage
//!
//! The storage substrate of the dbTouch reproduction.
//!
//! The paper (Section 2.6) prescribes a storage design tailored to touch-driven
//! exploration:
//!
//! * **Fixed-width dense arrays / matrixes** — every attribute is stored with a
//!   fixed width so that mapping a touch location to a tuple identifier (and the
//!   identifier to a byte offset) is pure arithmetic. See [`column`] and
//!   [`matrix`].
//! * **Row-store, column-store and hybrid layouts** with **incremental
//!   rotation** between them, driven by the rotate gesture (Section 2.8). See
//!   [`layout`] and [`rotation`].
//! * **Sample-based storage** — a hierarchy of progressively coarser samples of
//!   each column so that coarse-granularity slides read the matched sample level
//!   instead of the full base data. See [`sample`].
//! * **Caching** of touched regions and **prefetching** of the regions the
//!   gesture is extrapolated to reach next. See [`cache`] and [`prefetch`].
//! * A **shared cross-session result cache** of summary-window aggregates,
//!   keyed by immutable-object identity so catalog restructures invalidate
//!   naturally. See [`shared_cache`].
//! * **Persistent paged storage** — a fixed-size-page on-disk column format
//!   with checksummed page headers ([`page`]), a bounded buffer pool that
//!   faults pages on first touch ([`pager`]), and an append-then-atomic-rename
//!   manifest protocol that keeps a catalog directory recoverable to its last
//!   published epoch ([`persist`]).
//! * **Per-sample-level indexing** (zone maps) so that a slide over an indexed
//!   column becomes the equivalent of an index scan. See [`index`].
//! * **Fixed-row segments** — a summary window planned into partitions at
//!   absolute row boundaries, each yielding exact, mergeable partial
//!   aggregates so parallel scans stay bit-identical to sequential ones. See
//!   [`segment`].
//! * **Page-span compression** — run-length and dictionary encodings chosen
//!   per page at persist time (raw whenever nothing actually shrinks), with
//!   scan kernels that aggregate encoded data directly. See [`encoding`].
//!
//! The adaptive *policies* that decide when to use which mechanism live in
//! `dbtouch-core`; this crate provides the mechanisms.

pub mod cache;
pub mod column;
pub mod encoding;
pub mod index;
pub mod layout;
pub mod matrix;
pub mod page;
pub mod pager;
pub mod persist;
pub mod prefetch;
pub mod rotation;
pub mod sample;
pub mod segment;
pub mod shared_cache;
pub mod stats;
pub mod table;

pub use cache::{CacheStats, RegionCache};
pub use column::Column;
pub use encoding::{Encoding, EncodingPolicy, EncodingStats};
pub use index::ZoneMapIndex;
pub use layout::Layout;
pub use matrix::Matrix;
pub use page::DEFAULT_PAGE_SIZE;
pub use pager::{ColumnExtent, PagedColumn, Pager, PagerStats};
pub use persist::{CatalogStore, ObjectRecord, StoreManifest};
pub use prefetch::{PrefetchStats, Prefetcher};
pub use rotation::RotationTask;
pub use sample::SampleHierarchy;
pub use segment::{plan_segments, Segment, SegmentStats, SegmentSum};
pub use shared_cache::{
    next_object_identity, RangeAggregate, SharedCacheStats, SharedResultCache, SummaryKey,
};
pub use stats::ColumnStats;
pub use table::Table;
