//! Tables: named collections of equal-length columns.
//!
//! A table is visualized as a "fat rectangle" in dbTouch. A single tap over a
//! table reveals a full tuple; a vertical slide scans tuples; a horizontal slide
//! walks the attributes of one tuple (Section 2.4). Users can also break tables
//! apart (drag a column out) or build them up (drop columns into a table
//! placeholder), which is supported here by [`Table::remove_column`] and
//! [`Table::add_column`].

use crate::column::Column;
use dbtouch_types::{DataType, DbTouchError, Result, RowId, Value};
use serde::{Deserialize, Serialize};

/// A named collection of equal-length columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    name: String,
    columns: Vec<Column>,
}

impl Table {
    /// Create an empty table with no columns.
    pub fn new(name: impl Into<String>) -> Table {
        Table {
            name: name.into(),
            columns: Vec::new(),
        }
    }

    /// Create a table from columns, validating that all lengths match.
    pub fn from_columns(name: impl Into<String>, columns: Vec<Column>) -> Result<Table> {
        let mut t = Table::new(name);
        for c in columns {
            t.add_column(c)?;
        }
        Ok(t)
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows (0 for a table with no columns).
    pub fn row_count(&self) -> u64 {
        self.columns.first().map_or(0, |c| c.len())
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Schema as `(name, type)` pairs.
    pub fn schema(&self) -> Vec<(String, DataType)> {
        self.columns
            .iter()
            .map(|c| (c.name().to_string(), c.data_type()))
            .collect()
    }

    /// Look up a column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        self.columns
            .iter()
            .find(|c| c.name() == name)
            .ok_or_else(|| DbTouchError::NotFound(format!("column {name}")))
    }

    /// Look up a column by position.
    pub fn column_at(&self, index: usize) -> Result<&Column> {
        self.columns
            .get(index)
            .ok_or_else(|| DbTouchError::NotFound(format!("column index {index}")))
    }

    /// Position of a column by name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name() == name)
            .ok_or_else(|| DbTouchError::NotFound(format!("column {name}")))
    }

    /// Add a column. Its length must match the table's row count (unless the
    /// table has no columns yet) and its name must be unique.
    pub fn add_column(&mut self, column: Column) -> Result<()> {
        if self.columns.iter().any(|c| c.name() == column.name()) {
            return Err(DbTouchError::AlreadyExists(column.name().to_string()));
        }
        if !self.columns.is_empty() && column.len() != self.row_count() {
            return Err(DbTouchError::LengthMismatch {
                expected: self.row_count(),
                found: column.len(),
            });
        }
        self.columns.push(column);
        Ok(())
    }

    /// Remove a column and return it (the "drag a column out of a fat table"
    /// gesture of Section 2.8).
    pub fn remove_column(&mut self, name: &str) -> Result<Column> {
        let idx = self.column_index(name)?;
        Ok(self.columns.remove(idx))
    }

    /// Materialize a full tuple (one value per column) at `row`. This is what a
    /// single tap over a table object reveals.
    pub fn row(&self, row: RowId) -> Result<Vec<Value>> {
        if row.0 >= self.row_count() {
            return Err(DbTouchError::RowOutOfBounds {
                row: row.0,
                len: self.row_count(),
            });
        }
        self.columns.iter().map(|c| c.get(row)).collect()
    }

    /// Total size of the table's data in bytes.
    pub fn byte_size(&self) -> u64 {
        self.columns.iter().map(|c| c.byte_size()).sum()
    }

    /// Width of one row in bytes (sum of the fixed widths of all columns).
    pub fn row_width_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(|c| c.data_type().width_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_table() -> Table {
        Table::from_columns(
            "t",
            vec![
                Column::from_i64("id", vec![1, 2, 3]),
                Column::from_f64("price", vec![1.5, 2.5, 3.5]),
                Column::from_strings("tag", 4, &["a", "bb", "ccc"]).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_schema() {
        let t = demo_table();
        assert_eq!(t.name(), "t");
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.column_count(), 3);
        assert_eq!(
            t.schema(),
            vec![
                ("id".to_string(), DataType::Int64),
                ("price".to_string(), DataType::Float64),
                ("tag".to_string(), DataType::FixedStr(4)),
            ]
        );
        assert_eq!(t.row_width_bytes(), 8 + 8 + 4);
        assert_eq!(t.byte_size(), 3 * (8 + 8 + 4) as u64);
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut t = Table::new("t");
        t.add_column(Column::from_i64("a", vec![1, 2, 3])).unwrap();
        let err = t.add_column(Column::from_i64("b", vec![1, 2]));
        assert!(matches!(
            err,
            Err(DbTouchError::LengthMismatch {
                expected: 3,
                found: 2
            })
        ));
    }

    #[test]
    fn duplicate_column_rejected() {
        let mut t = Table::new("t");
        t.add_column(Column::from_i64("a", vec![1])).unwrap();
        assert!(matches!(
            t.add_column(Column::from_i64("a", vec![2])),
            Err(DbTouchError::AlreadyExists(_))
        ));
    }

    #[test]
    fn lookup_by_name_and_index() {
        let t = demo_table();
        assert_eq!(t.column("price").unwrap().data_type(), DataType::Float64);
        assert!(t.column("missing").is_err());
        assert_eq!(t.column_at(0).unwrap().name(), "id");
        assert!(t.column_at(9).is_err());
        assert_eq!(t.column_index("tag").unwrap(), 2);
    }

    #[test]
    fn row_materialization() {
        let t = demo_table();
        let row = t.row(RowId(1)).unwrap();
        assert_eq!(
            row,
            vec![Value::Int(2), Value::Float(2.5), Value::Str("bb".into())]
        );
        assert!(t.row(RowId(3)).is_err());
    }

    #[test]
    fn remove_column_drag_out() {
        let mut t = demo_table();
        let c = t.remove_column("price").unwrap();
        assert_eq!(c.name(), "price");
        assert_eq!(t.column_count(), 2);
        assert!(t.column("price").is_err());
        assert!(t.remove_column("price").is_err());
    }

    #[test]
    fn empty_table_has_zero_rows() {
        let t = Table::new("empty");
        assert_eq!(t.row_count(), 0);
        assert_eq!(t.byte_size(), 0);
        assert!(t.row(RowId(0)).is_err());
    }
}
