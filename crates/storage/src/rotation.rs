//! Incremental layout rotation.
//!
//! Section 2.8: "Changing the layout can be done in steps as it is in general an
//! expensive operation, requiring a full copy of the data. Depending on the size
//! of the current object, dbTouch should choose to create the new format for
//! only a sample of the data, giving back to the user a quick response and new
//! data object(s) to query. When and if the user requests for more detail within
//! the new object [...] then more data can be retrieved from the old layout."
//!
//! [`RotationTask`] converts a matrix to the rotated layout chunk by chunk. The
//! partially converted matrix is queryable at any point: rows that have already
//! been converted are served from the new layout, the rest from the old one.

use crate::layout::Layout;
use crate::matrix::Matrix;
use dbtouch_types::{Result, RowId, RowRange, Value};
use std::sync::Arc;

/// A chunk-at-a-time conversion of a matrix to the rotated layout.
///
/// The source is held behind `Arc`, so starting a rotation never copies the
/// source data: peak memory is the (shared) source plus the incrementally
/// built target plus one in-flight chunk — never two full copies of the
/// source at once.
#[derive(Debug, Clone)]
pub struct RotationTask {
    source: Arc<Matrix>,
    target: Matrix,
    target_layout: Layout,
    converted_rows: u64,
    chunk_rows: u64,
}

impl RotationTask {
    /// Start rotating `source` to the opposite layout, converting `chunk_rows`
    /// rows per [`RotationTask::step`]. A chunk size of 0 is treated as 1.
    pub fn new(source: Matrix, chunk_rows: u64) -> RotationTask {
        RotationTask::over(Arc::new(source), chunk_rows)
    }

    /// Start rotating an already-shared matrix without copying it. This is
    /// the bounded-memory entry point sessions use: the catalog's matrix stays
    /// shared while only the rotated target is built, chunk by chunk.
    pub fn over(source: Arc<Matrix>, chunk_rows: u64) -> RotationTask {
        let target_layout = source.layout().rotated();
        let target = source.empty_like(target_layout);
        RotationTask {
            source,
            target,
            target_layout,
            converted_rows: 0,
            chunk_rows: chunk_rows.max(1),
        }
    }

    /// The layout being converted to.
    pub fn target_layout(&self) -> Layout {
        self.target_layout
    }

    /// Rows already converted.
    pub fn converted_rows(&self) -> u64 {
        self.converted_rows
    }

    /// Total rows to convert.
    pub fn total_rows(&self) -> u64 {
        self.source.row_count()
    }

    /// Fraction of the conversion completed in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        if self.total_rows() == 0 {
            1.0
        } else {
            self.converted_rows as f64 / self.total_rows() as f64
        }
    }

    /// True once every row has been converted.
    pub fn is_complete(&self) -> bool {
        self.converted_rows >= self.total_rows()
    }

    /// Convert the next chunk. Returns the number of rows converted by this
    /// step (0 once complete).
    pub fn step(&mut self) -> Result<u64> {
        if self.is_complete() {
            return Ok(0);
        }
        let start = self.converted_rows;
        let end = (start + self.chunk_rows).min(self.total_rows());
        let chunk = self
            .source
            .converted_range(self.target_layout, RowRange::new(start, end))?;
        self.target.append(&chunk)?;
        self.converted_rows = end;
        Ok(end - start)
    }

    /// Run the conversion to completion and return the fully rotated matrix.
    pub fn finish(mut self) -> Result<Matrix> {
        while !self.is_complete() {
            self.step()?;
        }
        Ok(self.target)
    }

    /// Read a cell of the logical matrix during conversion: already-converted
    /// rows are served from the new layout, the rest from the old layout. This
    /// is what keeps the object queryable while the rotation proceeds in steps.
    pub fn get(&self, row: RowId, column: usize) -> Result<Value> {
        if row.0 < self.converted_rows {
            self.target.get(row, column)
        } else {
            self.source.get(row, column)
        }
    }

    /// Borrow the partially built target matrix (rows `[0, converted_rows)`).
    pub fn partial_target(&self) -> &Matrix {
        &self.target
    }

    /// Borrow the source matrix.
    pub fn source(&self) -> &Matrix {
        &self.source
    }

    /// The shared handle to the source matrix (pointer-identical to the one
    /// passed to [`RotationTask::over`]; no copy is ever made).
    pub fn source_arc(&self) -> &Arc<Matrix> {
        &self.source
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::table::Table;

    fn demo_matrix() -> Matrix {
        Matrix::from_table(
            Table::from_columns(
                "t",
                vec![
                    Column::from_i64("id", (0..100).collect()),
                    Column::from_f64("v", (0..100).map(|i| i as f64 / 2.0).collect()),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn full_rotation_preserves_data() {
        let m = demo_matrix();
        let rotated = RotationTask::new(m.clone(), 7).finish().unwrap();
        assert_eq!(rotated.layout(), Layout::RowMajor);
        assert_eq!(rotated.row_count(), 100);
        for row in [0u64, 33, 99] {
            assert_eq!(
                rotated.get_row(RowId(row)).unwrap(),
                m.get_row(RowId(row)).unwrap()
            );
        }
    }

    #[test]
    fn step_counts_and_progress() {
        let m = demo_matrix();
        let mut task = RotationTask::new(m, 40);
        assert_eq!(task.total_rows(), 100);
        assert_eq!(task.progress(), 0.0);
        assert_eq!(task.step().unwrap(), 40);
        assert_eq!(task.step().unwrap(), 40);
        assert!((task.progress() - 0.8).abs() < 1e-12);
        assert_eq!(task.step().unwrap(), 20);
        assert!(task.is_complete());
        assert_eq!(task.step().unwrap(), 0);
        assert_eq!(task.progress(), 1.0);
    }

    #[test]
    fn queryable_during_rotation() {
        let m = demo_matrix();
        let mut task = RotationTask::new(m.clone(), 30);
        task.step().unwrap();
        // converted region served from the new layout
        assert_eq!(
            task.get(RowId(10), 0).unwrap(),
            m.get(RowId(10), 0).unwrap()
        );
        // unconverted region served from the old layout
        assert_eq!(
            task.get(RowId(90), 1).unwrap(),
            m.get(RowId(90), 1).unwrap()
        );
        assert_eq!(task.partial_target().row_count(), 30);
        assert_eq!(task.source().row_count(), 100);
    }

    #[test]
    fn double_rotation_round_trips() {
        let m = demo_matrix();
        let once = RotationTask::new(m.clone(), 13).finish().unwrap();
        let twice = RotationTask::new(once, 13).finish().unwrap();
        assert_eq!(twice.layout(), Layout::ColumnMajor);
        for row in [0u64, 50, 99] {
            assert_eq!(
                twice.get_row(RowId(row)).unwrap(),
                m.get_row(RowId(row)).unwrap()
            );
        }
    }

    #[test]
    fn zero_chunk_treated_as_one() {
        let m = demo_matrix();
        let mut task = RotationTask::new(m, 0);
        assert_eq!(task.step().unwrap(), 1);
    }

    #[test]
    fn over_shares_the_source_without_copying() {
        // A large-ish matrix: the task must read through the shared Arc, not a
        // private deep copy, so rotating doubles memory only by the target.
        let m = Arc::new(Matrix::from_column(Column::from_i64(
            "big",
            (0..200_000).collect(),
        )));
        let task = RotationTask::over(Arc::clone(&m), 4096);
        assert!(Arc::ptr_eq(task.source_arc(), &m));
        assert_eq!(task.source() as *const Matrix, Arc::as_ptr(&m));
        // Only the two handles exist — no hidden clone took a third.
        assert_eq!(Arc::strong_count(&m), 2);
        let rotated = task.finish().unwrap();
        assert_eq!(rotated.layout(), Layout::RowMajor);
        assert_eq!(rotated.row_count(), 200_000);
        assert_eq!(rotated.get(RowId(123_456), 0).unwrap(), Value::Int(123_456));
        // The shared source is untouched and still column-major.
        assert_eq!(m.layout(), Layout::ColumnMajor);
    }

    #[test]
    fn finish_honors_chunk_granularity() {
        let m = demo_matrix();
        let mut task = RotationTask::new(m.clone(), 9);
        let mut steps = 0;
        while !task.is_complete() {
            let converted = task.step().unwrap();
            assert!(converted <= 9, "chunk overshot: {converted}");
            steps += 1;
        }
        assert_eq!(steps, 100_u64.div_ceil(9));
        let rotated = task.finish().unwrap();
        assert_eq!(
            rotated.get_row(RowId(50)).unwrap(),
            m.get_row(RowId(50)).unwrap()
        );
    }

    #[test]
    fn empty_matrix_rotation() {
        let m = Matrix::from_column(Column::from_i64("x", vec![]));
        let task = RotationTask::new(m, 10);
        assert!(task.is_complete());
        assert_eq!(task.progress(), 1.0);
        let rotated = task.finish().unwrap();
        assert_eq!(rotated.row_count(), 0);
        assert_eq!(rotated.layout(), Layout::RowMajor);
    }
}
