//! Shared cross-session result cache for summary/aggregate windows.
//!
//! Concurrent explorers of the same object recompute identical summary
//! windows: every session that slides over the same region at the same
//! granularity aggregates the same `[start, end)` range of the same sample
//! level. Under the "room of analysts" workload this is pure waste — the
//! loaded data is immutable, so the aggregate of a window can be computed
//! once and served to every session.
//!
//! [`SharedResultCache`] is that cache: a sharded concurrent map of
//!
//! ```text
//! (object identity, attribute, sample level, window, action kind) → (count, sum, min, max)
//! ```
//!
//! **Invalidation by identity.** The cache never observes catalog mutations.
//! Instead, every immutable object build (load or restructure) is stamped
//! with a fresh generation from [`next_object_identity`]; a catalog
//! restructure (`drag_column_out`, `group_into_table`) builds new object data
//! with a new identity, so entries computed against the pre-restructure data
//! can never be returned for the rebuilt object — no coordination, no epochs,
//! no locks on the touch path beyond one shard read-lock. Stale entries of a
//! dead identity age out when their shard flushes at capacity (a restructure
//! may also [`SharedResultCache::invalidate_object`] eagerly to free memory).
//!
//! **Result transparency.** The cached value is the raw `(count, sum, min,
//! max)` tuple the storage layer would have computed, so a hit produces
//! bit-identical results *and* bit-identical logical accounting to a miss;
//! only the recomputation is saved. `tests/concurrent_sessions.rs` proves
//! sequential-replay digests are unchanged by the cache.

use dbtouch_obs::{MetricSource, MetricValue};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Generation source for object identities. Starts at 1 so 0 can mean
/// "no identity" in debugging output.
static NEXT_OBJECT_IDENTITY: AtomicU64 = AtomicU64::new(1);

/// Mint a fresh, process-unique identity for one immutable object build.
///
/// Identities are never reused, which makes them safe cache keys: unlike raw
/// `Arc` pointer addresses, a freed object's identity cannot be recycled for
/// a new allocation (no ABA).
pub fn next_object_identity() -> u64 {
    NEXT_OBJECT_IDENTITY.fetch_add(1, Ordering::Relaxed)
}

/// Key of one cached window aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SummaryKey {
    /// Identity of the immutable object build (see [`next_object_identity`]).
    pub object: u64,
    /// Attribute index within the object.
    pub attribute: u32,
    /// Sample-hierarchy level the window addresses.
    pub level: u8,
    /// Discriminant of the touch-action kind the result feeds.
    pub kind: u8,
    /// Window start row (inclusive), in level-local row ids.
    pub start: u64,
    /// Window end row (exclusive), in level-local row ids.
    pub end: u64,
}

/// The cached aggregate of one window: exactly what
/// `Column::numeric_range_stats` returns, so a hit is indistinguishable from
/// recomputing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeAggregate {
    /// Number of rows in the window.
    pub count: u64,
    /// Sum of the window's values.
    pub sum: f64,
    /// Minimum value, `None` for an empty window.
    pub min: Option<f64>,
    /// Maximum value, `None` for an empty window.
    pub max: Option<f64>,
}

/// Counters accumulated by a [`SharedResultCache`] across all sessions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Lookups that found their window.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Entries inserted.
    pub inserts: u64,
    /// Shard flushes performed to respect the capacity bound.
    pub flushes: u64,
    /// Entries dropped by explicit object invalidation.
    pub invalidated: u64,
}

impl SharedCacheStats {
    /// Hit rate in `[0, 1]`; 0 when no lookups have happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const SHARD_COUNT: usize = 16;

/// A concurrent, capacity-bounded map of window aggregates shared by every
/// session of a catalog.
///
/// Sharded by key hash: a lookup takes one shard read-lock, an insert one
/// shard write-lock, so sessions touching different windows rarely contend.
/// When a shard reaches its capacity slice it is flushed wholesale (epoch
/// eviction) — cheap, bounded, and harmless because the cache is purely an
/// accelerator.
#[derive(Debug)]
pub struct SharedResultCache {
    shards: Vec<RwLock<HashMap<SummaryKey, RangeAggregate>>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    flushes: AtomicU64,
    invalidated: AtomicU64,
}

impl SharedResultCache {
    /// Create a cache bounded to roughly `capacity_entries` entries in total.
    pub fn new(capacity_entries: usize) -> SharedResultCache {
        SharedResultCache {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            per_shard_capacity: (capacity_entries / SHARD_COUNT).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &SummaryKey) -> &RwLock<HashMap<SummaryKey, RangeAggregate>> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARD_COUNT]
    }

    /// Look up a window aggregate, recording a hit or a miss.
    pub fn get(&self, key: &SummaryKey) -> Option<RangeAggregate> {
        let shard = self.shard(key).read().unwrap_or_else(|e| e.into_inner());
        match shard.get(key) {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(*v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a window aggregate, flushing the target shard first if it is at
    /// capacity.
    pub fn insert(&self, key: SummaryKey, value: RangeAggregate) {
        let mut shard = self.shard(&key).write().unwrap_or_else(|e| e.into_inner());
        if shard.len() >= self.per_shard_capacity {
            shard.clear();
            self.flushes.fetch_add(1, Ordering::Relaxed);
        }
        shard.insert(key, value);
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Eagerly drop every entry of one object identity (e.g. after a catalog
    /// restructure replaced it). Purely a memory optimization: identity
    /// minting already guarantees stale entries can never be served.
    pub fn invalidate_object(&self, object: u64) {
        for shard in &self.shards {
            let mut shard = shard.write().unwrap_or_else(|e| e.into_inner());
            let before = shard.len();
            shard.retain(|k, _| k.object != object);
            self.invalidated
                .fetch_add((before - shard.len()) as u64, Ordering::Relaxed);
        }
    }

    /// Number of entries currently cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity in entries (rounded to the shard grid).
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * SHARD_COUNT
    }

    /// Snapshot of the cache-wide counters.
    pub fn stats(&self) -> SharedCacheStats {
        SharedCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
        }
    }
}

impl MetricSource for SharedResultCache {
    fn source_name(&self) -> &'static str {
        "shared_cache"
    }

    fn collect(&self) -> Vec<(&'static str, MetricValue)> {
        let stats = self.stats();
        vec![
            ("hits", MetricValue::Counter(stats.hits)),
            ("misses", MetricValue::Counter(stats.misses)),
            ("inserts", MetricValue::Counter(stats.inserts)),
            ("flushes", MetricValue::Counter(stats.flushes)),
            ("invalidated", MetricValue::Counter(stats.invalidated)),
            ("hit_rate", MetricValue::Float(stats.hit_rate())),
            ("entries", MetricValue::Gauge(self.len() as u64)),
            ("capacity", MetricValue::Gauge(self.capacity() as u64)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(object: u64, start: u64, end: u64) -> SummaryKey {
        SummaryKey {
            object,
            attribute: 0,
            level: 3,
            kind: 2,
            start,
            end,
        }
    }

    fn aggregate(count: u64) -> RangeAggregate {
        RangeAggregate {
            count,
            sum: count as f64 * 2.0,
            min: Some(1.0),
            max: Some(3.0),
        }
    }

    #[test]
    fn identities_are_unique() {
        let a = next_object_identity();
        let b = next_object_identity();
        assert_ne!(a, b);
        assert!(a > 0 && b > 0);
    }

    #[test]
    fn miss_then_hit_round_trip() {
        let cache = SharedResultCache::new(1024);
        let k = key(1, 0, 10);
        assert_eq!(cache.get(&k), None);
        cache.insert(k, aggregate(10));
        assert_eq!(cache.get(&k), Some(aggregate(10)));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.inserts, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_key_dimensions_do_not_collide() {
        let cache = SharedResultCache::new(1024);
        let base = key(1, 0, 10);
        cache.insert(base, aggregate(1));
        for other in [
            SummaryKey { object: 2, ..base },
            SummaryKey {
                attribute: 1,
                ..base
            },
            SummaryKey { level: 4, ..base },
            SummaryKey { kind: 3, ..base },
            SummaryKey { start: 1, ..base },
            SummaryKey { end: 11, ..base },
        ] {
            assert_eq!(cache.get(&other), None, "collided on {other:?}");
        }
        assert_eq!(cache.get(&base), Some(aggregate(1)));
    }

    #[test]
    fn invalidate_object_drops_only_that_identity() {
        let cache = SharedResultCache::new(1024);
        for window in 0..20 {
            cache.insert(key(7, window, window + 5), aggregate(5));
            cache.insert(key(8, window, window + 5), aggregate(5));
        }
        assert_eq!(cache.len(), 40);
        cache.invalidate_object(7);
        assert_eq!(cache.len(), 20);
        assert_eq!(cache.stats().invalidated, 20);
        assert_eq!(cache.get(&key(7, 0, 5)), None);
        assert_eq!(cache.get(&key(8, 0, 5)), Some(aggregate(5)));
    }

    #[test]
    fn capacity_bounds_resident_entries() {
        let cache = SharedResultCache::new(SHARD_COUNT * 4);
        assert_eq!(cache.capacity(), SHARD_COUNT * 4);
        for window in 0..10_000u64 {
            cache.insert(key(1, window, window + 1), aggregate(1));
        }
        // Every shard holds at most its slice (the insert that triggers a
        // flush lands in the freshly cleared shard).
        assert!(cache.len() <= cache.capacity());
        assert!(cache.stats().flushes > 0);
    }

    #[test]
    fn concurrent_use_is_safe() {
        let cache = std::sync::Arc::new(SharedResultCache::new(4096));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let cache = std::sync::Arc::clone(&cache);
                std::thread::spawn(move || {
                    for window in 0..500u64 {
                        let k = key(t % 2, window, window + 8);
                        if cache.get(&k).is_none() {
                            cache.insert(k, aggregate(8));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 2000);
        assert!(stats.hits > 0);
        // Two identities × 500 windows at most.
        assert!(cache.len() <= 1000);
    }
}
