//! Fixed-row segment partitions over columns.
//!
//! A large summary window no longer has to be folded by one thread: it is
//! planned into [`Segment`]s — fixed-row partitions whose boundaries sit at
//! absolute multiples of the segment size — scanned independently, and merged
//! back in segment order. Determinism is arithmetic, not scheduling:
//! integer-typed segments accumulate their sums in exact `i128`
//! ([`SegmentSum::Int`]), so partial results merge associatively and the
//! final value is bit-identical however the segments were decomposed or
//! interleaved. Float columns keep `f64` sums, whose addition is *not*
//! associative — callers that need bit-identical answers never decompose
//! float windows (see `dbtouch_core::morsel`).
//!
//! Absolute alignment matters for the zone-map index: block boundaries are
//! absolute multiples of the block size, so when the segment size is a
//! multiple of the block size every interior segment covers whole blocks and
//! can be answered from the index without touching data.

use dbtouch_types::RowRange;
use serde::{Deserialize, Serialize};

/// One planned scan partition: its position in the window and its row range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Position of this segment within its window, in segment order.
    pub index: usize,
    /// The rows this segment covers.
    pub range: RowRange,
}

/// The sum half of a segment's statistics, typed by the column it came from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SegmentSum {
    /// Exact integer sum (`Int64` / `TimestampMillis` columns). `i128` cannot
    /// overflow for any column that fits in memory (2^63 rows of extreme
    /// `i64` values stay within 2^127), so merging is exact and associative.
    Int(i128),
    /// Floating-point sum (`Float64` columns), accumulated in ascending row
    /// order. Order-dependent: merge only in segment order, and only when
    /// the caller accepts (or never triggers) f64 re-association.
    Float(f64),
}

impl SegmentSum {
    /// The sum as `f64` — one conversion at the end for integer columns, so
    /// no intermediate rounding ever accumulates.
    pub fn as_f64(&self) -> f64 {
        match self {
            SegmentSum::Int(s) => *s as f64,
            SegmentSum::Float(s) => *s,
        }
    }
}

/// Count, typed sum, minimum and maximum of one scanned (or index-answered)
/// segment. The mergeable, exact-arithmetic counterpart of the
/// `(count, sum, min, max)` tuple `numeric_range_stats` returns.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentStats {
    /// Rows covered.
    pub count: u64,
    /// Typed sum (exact for integer columns).
    pub sum: SegmentSum,
    /// Minimum value, `None` when the segment is empty.
    pub min: Option<f64>,
    /// Maximum value, `None` when the segment is empty.
    pub max: Option<f64>,
}

impl SegmentStats {
    /// The empty statistics of the given column class (`integer` selects the
    /// exact `i128` sum).
    pub fn empty(integer: bool) -> SegmentStats {
        SegmentStats {
            count: 0,
            sum: if integer {
                SegmentSum::Int(0)
            } else {
                SegmentSum::Float(0.0)
            },
            min: None,
            max: None,
        }
    }

    /// Merge `next` into `self`. Call in segment order: integer sums merge
    /// exactly in any order, but float sums — and nothing else — depend on it,
    /// and keeping one discipline keeps every path bit-identical.
    pub fn merge(&mut self, next: &SegmentStats) {
        self.count += next.count;
        self.sum = match (&self.sum, &next.sum) {
            (SegmentSum::Int(a), SegmentSum::Int(b)) => SegmentSum::Int(a + b),
            (a, b) => SegmentSum::Float(a.as_f64() + b.as_f64()),
        };
        self.min = match (self.min, next.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, next.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// The `(count, sum, min, max)` tuple the summary paths consume.
    pub fn as_tuple(&self) -> (u64, f64, Option<f64>, Option<f64>) {
        (self.count, self.sum.as_f64(), self.min, self.max)
    }
}

/// Plan a window into segments of at most `segment_rows` rows whose
/// boundaries sit at *absolute* multiples of `segment_rows` (the first and
/// last segments absorb the misalignment of the window's ends). The plan is
/// a pure function of `(range, segment_rows)` — scan parallelism never
/// changes it, which is half of why parallel digests match sequential ones.
pub fn plan_segments(range: RowRange, segment_rows: u64) -> Vec<Segment> {
    let segment_rows = segment_rows.max(1);
    let mut segments = Vec::new();
    let mut start = range.start;
    while start < range.end {
        let boundary = (start / segment_rows + 1) * segment_rows;
        let end = boundary.min(range.end);
        segments.push(Segment {
            index: segments.len(),
            range: RowRange::new(start, end),
        });
        start = end;
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_aligns_to_absolute_boundaries() {
        let segs = plan_segments(RowRange::new(150, 1050), 256);
        let ranges: Vec<(u64, u64)> = segs.iter().map(|s| (s.range.start, s.range.end)).collect();
        assert_eq!(
            ranges,
            vec![
                (150, 256),
                (256, 512),
                (512, 768),
                (768, 1024),
                (1024, 1050)
            ]
        );
        assert!(segs.iter().enumerate().all(|(i, s)| s.index == i));
    }

    #[test]
    fn plan_of_small_window_is_one_segment() {
        let segs = plan_segments(RowRange::new(10, 20), 256);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].range, RowRange::new(10, 20));
        assert!(plan_segments(RowRange::new(5, 5), 256).is_empty());
    }

    #[test]
    fn plan_covers_window_exactly_once() {
        for (start, end, rows) in [(0, 1000, 128), (37, 999, 100), (511, 513, 512)] {
            let segs = plan_segments(RowRange::new(start, end), rows);
            assert_eq!(segs.first().unwrap().range.start, start);
            assert_eq!(segs.last().unwrap().range.end, end);
            for pair in segs.windows(2) {
                assert_eq!(pair[0].range.end, pair[1].range.start);
            }
            assert!(segs.iter().all(|s| s.range.len() <= rows));
        }
    }

    #[test]
    fn integer_merge_is_exact_and_order_independent() {
        let a = SegmentStats {
            count: 2,
            sum: SegmentSum::Int((1i128 << 80) + 3),
            min: Some(-5.0),
            max: Some(9.0),
        };
        let b = SegmentStats {
            count: 1,
            sum: SegmentSum::Int(7),
            min: Some(-9.0),
            max: Some(2.0),
        };
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 3);
        assert_eq!(ab.sum, SegmentSum::Int((1i128 << 80) + 10));
        assert_eq!((ab.min, ab.max), (Some(-9.0), Some(9.0)));
    }

    #[test]
    fn empty_merges_are_identity() {
        let mut acc = SegmentStats::empty(true);
        let s = SegmentStats {
            count: 4,
            sum: SegmentSum::Int(10),
            min: Some(1.0),
            max: Some(4.0),
        };
        acc.merge(&s);
        assert_eq!(acc, s);
        acc.merge(&SegmentStats::empty(true));
        assert_eq!(acc, s);
        assert_eq!(acc.as_tuple(), (4, 10.0, Some(1.0), Some(4.0)));
    }

    #[test]
    fn float_sums_convert_transparently() {
        let s = SegmentStats {
            count: 2,
            sum: SegmentSum::Float(1.5),
            min: Some(0.5),
            max: Some(1.0),
        };
        assert_eq!(s.sum.as_f64(), 1.5);
        let mut acc = SegmentStats::empty(false);
        acc.merge(&s);
        assert_eq!(acc.as_tuple(), (2, 1.5, Some(0.5), Some(1.0)));
    }
}
