//! Physical layout descriptors.
//!
//! dbTouch "does not pose any particular restrictions on the underlying storage
//! model. It can be row-store, column-store or a hybrid format" (Section 2.6).
//! The rotate gesture flips a data object between a row-oriented and a
//! column-oriented physical layout (Section 2.8).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The physical layout of a matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Layout {
    /// Each attribute is stored in its own dense fixed-width array
    /// (column-store). The default for standalone column objects.
    #[default]
    ColumnMajor,
    /// All attributes of a tuple are stored contiguously, tuple after tuple
    /// (row-store). Favoured for full-tuple access patterns.
    RowMajor,
}

impl Layout {
    /// The layout produced by applying the rotate gesture.
    pub fn rotated(self) -> Layout {
        match self {
            Layout::ColumnMajor => Layout::RowMajor,
            Layout::RowMajor => Layout::ColumnMajor,
        }
    }

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Layout::ColumnMajor => "column-major",
            Layout::RowMajor => "row-major",
        }
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_is_involutive() {
        assert_eq!(Layout::ColumnMajor.rotated(), Layout::RowMajor);
        assert_eq!(Layout::RowMajor.rotated(), Layout::ColumnMajor);
        for l in [Layout::ColumnMajor, Layout::RowMajor] {
            assert_eq!(l.rotated().rotated(), l);
        }
    }

    #[test]
    fn default_is_column_major() {
        assert_eq!(Layout::default(), Layout::ColumnMajor);
    }

    #[test]
    fn display_names() {
        assert_eq!(Layout::ColumnMajor.to_string(), "column-major");
        assert_eq!(Layout::RowMajor.to_string(), "row-major");
    }
}
