//! Region cache for touched data areas.
//!
//! Section 2.6 ("Caching Data"): "caching can be exploited such that dbTouch is
//! ready if the user decides to re-examine a data area already seen. dbTouch
//! needs to observe the gesture patterns and adjust the caching policy according
//! to the expected progression of the gesture."
//!
//! [`RegionCache`] is a capacity-bounded (in rows) LRU cache of row ranges. It
//! does not hold the data itself — the matrixes are all in memory in this
//! reproduction — but it models *which* regions are hot and therefore cheap to
//! re-access, and it produces the hit/miss statistics that the kernel's caching
//! policy and the ablation benchmarks rely on. The kernel charges a (simulated)
//! higher access cost for rows served outside any cached or prefetched region.

use dbtouch_types::{RowId, RowRange};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Statistics maintained by a [`RegionCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that found their row in a cached region.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Regions evicted to respect the capacity bound.
    pub evictions: u64,
    /// Rows currently covered by cached regions.
    pub resident_rows: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 0 when no lookups have happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// An LRU cache of row ranges with a row-count capacity.
#[derive(Debug, Clone)]
pub struct RegionCache {
    /// Most-recently-used at the back.
    regions: VecDeque<RowRange>,
    capacity_rows: u64,
    stats: CacheStats,
    enabled: bool,
}

impl RegionCache {
    /// Create a cache bounded to `capacity_rows` rows in total.
    pub fn new(capacity_rows: u64) -> RegionCache {
        RegionCache {
            regions: VecDeque::new(),
            capacity_rows,
            stats: CacheStats::default(),
            enabled: true,
        }
    }

    /// Create a disabled cache: every lookup misses and nothing is admitted.
    /// Used by the ablation configuration.
    pub fn disabled() -> RegionCache {
        RegionCache {
            regions: VecDeque::new(),
            capacity_rows: 0,
            stats: CacheStats::default(),
            enabled: false,
        }
    }

    /// Whether the cache admits and serves regions.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Capacity in rows.
    pub fn capacity_rows(&self) -> u64 {
        self.capacity_rows
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            resident_rows: self.resident_rows(),
            ..self.stats
        }
    }

    /// Rows currently covered (regions may not overlap, see `insert`).
    pub fn resident_rows(&self) -> u64 {
        self.regions.iter().map(|r| r.len()).sum()
    }

    /// Number of distinct cached regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Look up a single row, recording a hit or a miss. A hit refreshes the
    /// containing region's recency.
    pub fn lookup(&mut self, row: RowId) -> bool {
        if !self.enabled {
            self.stats.misses += 1;
            return false;
        }
        if let Some(pos) = self.regions.iter().position(|r| r.contains(row)) {
            let region = self.regions.remove(pos).expect("position valid");
            self.regions.push_back(region);
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// True if every row of `range` is covered by cached regions (does not
    /// update recency or statistics).
    pub fn covers(&self, range: RowRange) -> bool {
        if range.is_empty() {
            return true;
        }
        // Regions are disjoint; walk the range and greedily consume coverage.
        let mut cursor = range.start;
        while cursor < range.end {
            match self.regions.iter().find(|r| r.contains(RowId(cursor))) {
                Some(r) => cursor = r.end,
                None => return false,
            }
        }
        true
    }

    /// Admit a region (e.g. a region just touched or just prefetched). The
    /// region is merged with any overlapping cached regions so that cached
    /// regions stay disjoint, then placed at the most-recent position. Evicts
    /// least-recently-used regions if the capacity is exceeded.
    pub fn insert(&mut self, range: RowRange) {
        if !self.enabled || range.is_empty() {
            return;
        }
        let mut merged = range;
        let mut i = 0;
        while i < self.regions.len() {
            if self.regions[i].overlaps(&merged)
                || self.regions[i].end == merged.start
                || merged.end == self.regions[i].start
            {
                merged = merged.union_hull(&self.regions[i]);
                self.regions.remove(i);
            } else {
                i += 1;
            }
        }
        self.regions.push_back(merged);
        self.evict_to_capacity();
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.regions.clear();
    }

    fn evict_to_capacity(&mut self) {
        while self.resident_rows() > self.capacity_rows && self.regions.len() > 1 {
            self.regions.pop_front();
            self.stats.evictions += 1;
        }
        // A single region larger than the capacity is trimmed to its tail
        // (most recently touched rows are at the end of a slide).
        if self.resident_rows() > self.capacity_rows {
            if let Some(r) = self.regions.front_mut() {
                let excess = r.len() - self.capacity_rows;
                *r = RowRange::new(r.start + excess, r.end);
                self.stats.evictions += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = RegionCache::new(100);
        assert!(!c.lookup(RowId(5)));
        c.insert(RowRange::new(0, 10));
        assert!(c.lookup(RowId(5)));
        assert!(!c.lookup(RowId(10)));
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut c = RegionCache::disabled();
        c.insert(RowRange::new(0, 10));
        assert!(!c.lookup(RowId(5)));
        assert_eq!(c.region_count(), 0);
        assert!(!c.is_enabled());
    }

    #[test]
    fn overlapping_regions_merge() {
        let mut c = RegionCache::new(1000);
        c.insert(RowRange::new(0, 10));
        c.insert(RowRange::new(5, 20));
        c.insert(RowRange::new(20, 30)); // adjacent also merges
        assert_eq!(c.region_count(), 1);
        assert_eq!(c.resident_rows(), 30);
        assert!(c.covers(RowRange::new(0, 30)));
    }

    #[test]
    fn disjoint_regions_stay_separate() {
        let mut c = RegionCache::new(1000);
        c.insert(RowRange::new(0, 10));
        c.insert(RowRange::new(50, 60));
        assert_eq!(c.region_count(), 2);
        assert!(!c.covers(RowRange::new(0, 60)));
        assert!(c.covers(RowRange::new(52, 58)));
    }

    #[test]
    fn lru_eviction_on_capacity() {
        let mut c = RegionCache::new(25);
        c.insert(RowRange::new(0, 10));
        c.insert(RowRange::new(100, 110));
        c.insert(RowRange::new(200, 210));
        // 30 rows > 25 capacity: the least recently used region (0..10) is gone
        assert_eq!(c.region_count(), 2);
        assert!(!c.lookup(RowId(5)));
        assert!(c.lookup(RowId(105)));
        assert!(c.stats().evictions >= 1);
    }

    #[test]
    fn lookup_refreshes_recency() {
        let mut c = RegionCache::new(25);
        c.insert(RowRange::new(0, 10));
        c.insert(RowRange::new(100, 110));
        // touch the old region so it becomes most recent
        assert!(c.lookup(RowId(3)));
        c.insert(RowRange::new(200, 210));
        // now the middle region (100..110) should have been evicted instead
        assert!(c.lookup(RowId(3)));
        assert!(!c.lookup(RowId(105)));
    }

    #[test]
    fn oversized_single_region_trimmed_to_tail() {
        let mut c = RegionCache::new(10);
        c.insert(RowRange::new(0, 100));
        assert_eq!(c.resident_rows(), 10);
        assert!(c.lookup(RowId(95)));
        assert!(!c.lookup(RowId(5)));
    }

    #[test]
    fn empty_range_insert_is_noop() {
        let mut c = RegionCache::new(10);
        c.insert(RowRange::empty(5));
        assert_eq!(c.region_count(), 0);
        assert!(c.covers(RowRange::empty(3)));
    }

    #[test]
    fn clear_removes_everything() {
        let mut c = RegionCache::new(100);
        c.insert(RowRange::new(0, 10));
        c.clear();
        assert_eq!(c.region_count(), 0);
        assert!(!c.lookup(RowId(5)));
    }

    #[test]
    fn hit_rate_zero_when_untouched() {
        let c = RegionCache::new(10);
        assert_eq!(c.stats().hit_rate(), 0.0);
    }
}
