//! Page-span encodings: run-length and dictionary compression for paged
//! columns.
//!
//! A persisted column is split into page *spans* — the rows stored in one
//! page. Legacy raw extents store `rows × width` little-endian bytes with no
//! framing (PR 4's layout). *Packed* extents carry a one-byte tag per page so
//! each page says how its rows are laid out:
//!
//! * `Raw`  — `[0][u32 rows][rows × width bytes]`,
//! * `Rle`  — `[1][u32 runs][runs × (u32 length, width-byte value)]`,
//! * `Dict` — `[2][u32 rows][u16 dict][dict × width values][rows × u8 code]`.
//!
//! Because pages are fixed-size and zero-padded, shrinking a payload alone
//! saves nothing: compression only pays when *more logical rows* fit per
//! page. [`pack_row_bytes`] therefore picks a packing factor
//! `K ∈ {64, 32, 16, 8, 4, 2}` (highest that fits) and stores `K × base`
//! rows per page, each span individually encoded with whichever encoding is
//! smallest; if no factor fits — high-cardinality, run-free data — the
//! column stays raw and its on-disk size is unchanged. Selection is
//! deterministic (smallest payload; ties prefer `Rle`, then `Dict`, then
//! `Raw`), so re-persisting the same rows always yields the same bytes.
//!
//! Decoding is strict: [`span_view`] validates the whole span structure
//! (header arithmetic, run lengths, code bounds) before any value is served,
//! so scan kernels iterate infallibly and a rotted payload surfaces as
//! `DbTouchError::Corrupt` — never a wrong answer. Encoded payloads ride the
//! ordinary checksummed page path, so whole-page rot is caught even earlier,
//! at fault time.

use dbtouch_obs::{MetricSource, MetricValue};
use dbtouch_types::{DbTouchError, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

const TAG_RAW: u8 = 0;
const TAG_RLE: u8 = 1;
const TAG_DICT: u8 = 2;

/// Packing factors tried highest-first: a packed page holds `K × base` rows.
pub const PACK_FACTORS: [u64; 6] = [64, 32, 16, 8, 4, 2];

/// How one page span's rows are laid out in its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Rows stored verbatim (tagged; the framed form of the legacy layout).
    Raw,
    /// Runs of identical values stored as `(length, value)` pairs.
    Rle,
    /// Distinct values stored once, rows as one-byte codes into that table.
    Dict,
}

impl Encoding {
    /// Human-readable name, for reports and bench tables.
    pub fn name(&self) -> &'static str {
        match self {
            Encoding::Raw => "raw",
            Encoding::Rle => "rle",
            Encoding::Dict => "dict",
        }
    }
}

/// What the persist path is allowed to do when packing a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodingPolicy {
    /// Master switch: `false` persists every column raw (the PR 4 layout).
    pub enabled: bool,
    /// Most distinct values a span may hold and still dictionary-encode.
    /// Codes are one byte, so values above 256 behave as 256.
    pub dict_max_cardinality: u16,
}

impl Default for EncodingPolicy {
    fn default() -> EncodingPolicy {
        EncodingPolicy {
            enabled: true,
            dict_max_cardinality: 64,
        }
    }
}

impl EncodingPolicy {
    /// The policy that never packs: every persist stays raw.
    pub fn disabled() -> EncodingPolicy {
        EncodingPolicy {
            enabled: false,
            ..EncodingPolicy::default()
        }
    }
}

/// Counters accumulated across every pack decision and encoded scan of one
/// store, registered as the `encoding` [`MetricSource`].
#[derive(Debug, Default)]
pub struct EncodingStats {
    rle_pages: AtomicU64,
    dict_pages: AtomicU64,
    bytes_saved: AtomicU64,
    run_skips: AtomicU64,
}

impl EncodingStats {
    /// Record the outcome of one successful pack.
    pub fn record_pack(&self, rle_pages: u64, dict_pages: u64, bytes_saved: u64) {
        self.rle_pages.fetch_add(rle_pages, Ordering::Relaxed);
        self.dict_pages.fetch_add(dict_pages, Ordering::Relaxed);
        self.bytes_saved.fetch_add(bytes_saved, Ordering::Relaxed);
    }

    /// Record `n` runs a scan kernel aggregated with one multiply instead of
    /// decoding row by row.
    pub fn add_run_skips(&self, n: u64) {
        if n > 0 {
            self.run_skips.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Pages written RLE-encoded.
    pub fn rle_pages(&self) -> u64 {
        self.rle_pages.load(Ordering::Relaxed)
    }

    /// Pages written dictionary-encoded.
    pub fn dict_pages(&self) -> u64 {
        self.dict_pages.load(Ordering::Relaxed)
    }

    /// On-disk bytes saved versus the raw layout (whole pages not written).
    pub fn bytes_saved(&self) -> u64 {
        self.bytes_saved.load(Ordering::Relaxed)
    }

    /// Runs aggregated run-at-a-time by the scan kernels.
    pub fn run_skips(&self) -> u64 {
        self.run_skips.load(Ordering::Relaxed)
    }
}

impl MetricSource for EncodingStats {
    fn source_name(&self) -> &'static str {
        "encoding"
    }

    fn collect(&self) -> Vec<(&'static str, MetricValue)> {
        vec![
            ("rle_pages", MetricValue::Counter(self.rle_pages())),
            ("dict_pages", MetricValue::Counter(self.dict_pages())),
            ("bytes_saved", MetricValue::Counter(self.bytes_saved())),
            ("run_skips", MetricValue::Counter(self.run_skips())),
        ]
    }
}

/// A validated, borrowed view of one span payload. Produced by [`span_view`];
/// by the time a caller holds one, every length and code has been checked, so
/// iteration never fails.
#[derive(Debug, Clone, Copy)]
pub enum SpanView<'a> {
    /// `rows × width` verbatim row bytes.
    Raw {
        /// The row bytes.
        rows: &'a [u8],
    },
    /// Consecutive `(u32 length, width-byte value)` pairs; iterate with
    /// [`rle_runs`].
    Rle {
        /// The packed run records.
        runs: &'a [u8],
    },
    /// A value table plus one code byte per row.
    Dict {
        /// `dict_len × width` distinct values, in first-appearance order.
        dict: &'a [u8],
        /// One code per row; every code indexes `dict`.
        codes: &'a [u8],
    },
}

fn corrupt(msg: String) -> DbTouchError {
    DbTouchError::Corrupt(format!("encoded span: {msg}"))
}

fn read_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes[0..4].try_into().unwrap())
}

/// Parse and fully validate one tagged span payload, returning the typed
/// view and the number of rows it stores.
pub fn span_view(payload: &[u8], width: usize) -> Result<(SpanView<'_>, u64)> {
    if width == 0 {
        return Err(DbTouchError::Internal("span width must be nonzero".into()));
    }
    let Some((&tag, body)) = payload.split_first() else {
        return Err(corrupt("empty payload".into()));
    };
    match tag {
        TAG_RAW => {
            if body.len() < 4 {
                return Err(corrupt("raw span shorter than its header".into()));
            }
            let rows = read_u32(body) as usize;
            let data = &body[4..];
            if data.len() != rows * width {
                return Err(corrupt(format!(
                    "raw span claims {rows} rows of width {width} but holds {} bytes",
                    data.len()
                )));
            }
            Ok((SpanView::Raw { rows: data }, rows as u64))
        }
        TAG_RLE => {
            if body.len() < 4 {
                return Err(corrupt("rle span shorter than its header".into()));
            }
            let run_count = read_u32(body) as usize;
            let runs = &body[4..];
            let record = 4 + width;
            if runs.len() != run_count * record {
                return Err(corrupt(format!(
                    "rle span claims {run_count} runs but holds {} bytes",
                    runs.len()
                )));
            }
            let mut rows = 0u64;
            for r in 0..run_count {
                let len = read_u32(&runs[r * record..]);
                if len == 0 {
                    return Err(corrupt("zero-length run".into()));
                }
                rows += len as u64;
            }
            Ok((SpanView::Rle { runs }, rows))
        }
        TAG_DICT => {
            if body.len() < 6 {
                return Err(corrupt("dict span shorter than its header".into()));
            }
            let rows = read_u32(body) as usize;
            let dict_len = u16::from_le_bytes(body[4..6].try_into().unwrap()) as usize;
            let expected = 6 + dict_len * width + rows;
            if body.len() != expected {
                return Err(corrupt(format!(
                    "dict span claims {rows} rows / {dict_len} values but holds {} bytes",
                    body.len()
                )));
            }
            if rows > 0 && dict_len == 0 {
                return Err(corrupt("dict span has rows but no values".into()));
            }
            let dict = &body[6..6 + dict_len * width];
            let codes = &body[6 + dict_len * width..];
            if codes.iter().any(|&c| (c as usize) >= dict_len) {
                return Err(corrupt("code beyond the dictionary".into()));
            }
            Ok((SpanView::Dict { dict, codes }, rows as u64))
        }
        t => Err(corrupt(format!("unknown encoding tag {t}"))),
    }
}

/// Iterator over a validated RLE span's `(run length, value bytes)` pairs,
/// in row order.
pub struct RleRuns<'a> {
    runs: &'a [u8],
    width: usize,
}

impl<'a> Iterator for RleRuns<'a> {
    type Item = (u64, &'a [u8]);

    fn next(&mut self) -> Option<(u64, &'a [u8])> {
        if self.runs.is_empty() {
            return None;
        }
        let len = read_u32(self.runs) as u64;
        let value = &self.runs[4..4 + self.width];
        self.runs = &self.runs[4 + self.width..];
        Some((len, value))
    }
}

/// Iterate the runs of a [`SpanView::Rle`] payload (its `runs` field).
pub fn rle_runs(runs: &[u8], width: usize) -> RleRuns<'_> {
    RleRuns { runs, width }
}

/// Decode one span payload back to `rows × width` verbatim row bytes.
pub fn decode_span(payload: &[u8], width: usize) -> Result<Vec<u8>> {
    let (view, rows) = span_view(payload, width)?;
    let mut out = Vec::with_capacity(rows as usize * width);
    match view {
        SpanView::Raw { rows } => out.extend_from_slice(rows),
        SpanView::Rle { runs } => {
            for (len, value) in rle_runs(runs, width) {
                for _ in 0..len {
                    out.extend_from_slice(value);
                }
            }
        }
        SpanView::Dict { dict, codes } => {
            for &c in codes {
                let at = c as usize * width;
                out.extend_from_slice(&dict[at..at + width]);
            }
        }
    }
    Ok(out)
}

/// Byte offset (from the start of `payload`) of row `idx`'s value. Random
/// access for `value_at`-style reads: no allocation, and only the bytes on
/// the path to `idx` are validated — `O(1)` for raw and dictionary spans,
/// `O(runs before idx)` for RLE.
pub fn span_value_offset(payload: &[u8], width: usize, idx: u64) -> Result<usize> {
    let Some((&tag, body)) = payload.split_first() else {
        return Err(corrupt("empty payload".into()));
    };
    match tag {
        TAG_RAW => {
            if body.len() < 4 || (idx as usize) >= read_u32(body) as usize {
                return Err(corrupt(format!("row {idx} beyond the raw span")));
            }
            let at = 1 + 4 + idx as usize * width;
            if at + width > payload.len() {
                return Err(corrupt("raw span truncated".into()));
            }
            Ok(at)
        }
        TAG_RLE => {
            if body.len() < 4 {
                return Err(corrupt("rle span shorter than its header".into()));
            }
            let record = 4 + width;
            let runs = &body[4..];
            let mut cum = 0u64;
            let mut at = 0usize;
            while at + record <= runs.len() {
                let len = read_u32(&runs[at..]) as u64;
                if idx < cum + len {
                    return Ok(1 + 4 + at + 4);
                }
                cum += len;
                at += record;
            }
            Err(corrupt(format!("row {idx} beyond the rle span")))
        }
        TAG_DICT => {
            if body.len() < 6 {
                return Err(corrupt("dict span shorter than its header".into()));
            }
            let rows = read_u32(body) as usize;
            let dict_len = u16::from_le_bytes(body[4..6].try_into().unwrap()) as usize;
            let codes_at = 6 + dict_len * width;
            if idx as usize >= rows || body.len() != codes_at + rows {
                return Err(corrupt(format!("row {idx} beyond the dict span")));
            }
            let code = body[codes_at + idx as usize] as usize;
            if code >= dict_len {
                return Err(corrupt("code beyond the dictionary".into()));
            }
            Ok(1 + 6 + code * width)
        }
        t => Err(corrupt(format!("unknown encoding tag {t}"))),
    }
}

/// Frame a span's verbatim row bytes as a tagged `Raw` payload.
fn encode_raw(raw: &[u8], width: usize) -> Vec<u8> {
    let rows = (raw.len() / width) as u32;
    let mut out = Vec::with_capacity(1 + 4 + raw.len());
    out.push(TAG_RAW);
    out.extend_from_slice(&rows.to_le_bytes());
    out.extend_from_slice(raw);
    out
}

/// RLE-encode a span; `None` once the output would exceed `max_len`.
fn encode_rle(raw: &[u8], width: usize, max_len: usize) -> Option<Vec<u8>> {
    let rows = raw.len() / width;
    let mut out = vec![TAG_RLE, 0, 0, 0, 0];
    let mut runs = 0u32;
    let mut i = 0usize;
    while i < rows {
        let value = &raw[i * width..(i + 1) * width];
        let mut len = 1usize;
        while i + len < rows && &raw[(i + len) * width..(i + len + 1) * width] == value {
            len += 1;
        }
        out.extend_from_slice(&(len as u32).to_le_bytes());
        out.extend_from_slice(value);
        if out.len() > max_len {
            return None;
        }
        runs += 1;
        i += len;
    }
    out[1..5].copy_from_slice(&runs.to_le_bytes());
    Some(out)
}

/// Dictionary-encode a span; `None` when the cardinality exceeds
/// `max_cardinality` (bails at the first excess distinct value) or the
/// output would exceed `max_len`.
fn encode_dict(raw: &[u8], width: usize, max_cardinality: u16, max_len: usize) -> Option<Vec<u8>> {
    let rows = raw.len() / width;
    let cap = (max_cardinality.min(256) as usize).max(1);
    let mut order: Vec<&[u8]> = Vec::new();
    let mut index: HashMap<&[u8], u8> = HashMap::new();
    let mut codes: Vec<u8> = Vec::with_capacity(rows);
    for i in 0..rows {
        let v = &raw[i * width..(i + 1) * width];
        let code = match index.get(v) {
            Some(&c) => c,
            None => {
                if order.len() >= cap {
                    return None;
                }
                let c = order.len() as u8;
                order.push(v);
                index.insert(v, c);
                c
            }
        };
        codes.push(code);
    }
    let total = 1 + 4 + 2 + order.len() * width + rows;
    if total > max_len {
        return None;
    }
    let mut out = Vec::with_capacity(total);
    out.push(TAG_DICT);
    out.extend_from_slice(&(rows as u32).to_le_bytes());
    out.extend_from_slice(&(order.len() as u16).to_le_bytes());
    for v in &order {
        out.extend_from_slice(v);
    }
    out.extend_from_slice(&codes);
    Some(out)
}

/// Encode one span with the smallest encoding whose payload fits `max_len`.
/// Ties prefer `Rle`, then `Dict`, then `Raw` — a fixed order, so the choice
/// (and the persisted bytes) are deterministic. `None` when nothing fits.
pub fn encode_span(
    raw: &[u8],
    width: usize,
    policy: &EncodingPolicy,
    max_len: usize,
) -> Option<(Encoding, Vec<u8>)> {
    let candidates = [
        (Encoding::Rle, encode_rle(raw, width, max_len)),
        (
            Encoding::Dict,
            encode_dict(raw, width, policy.dict_max_cardinality, max_len),
        ),
        (Encoding::Raw, Some(encode_raw(raw, width))),
    ];
    let mut best: Option<(Encoding, Vec<u8>)> = None;
    for (enc, candidate) in candidates {
        if let Some(payload) = candidate {
            if payload.len() <= max_len
                && best.as_ref().is_none_or(|(_, b)| payload.len() < b.len())
            {
                best = Some((enc, payload));
            }
        }
    }
    best
}

/// The page payloads of one successfully packed column.
#[derive(Debug)]
pub struct PackedSpans {
    /// One encoded payload per page, in row order.
    pub payloads: Vec<Vec<u8>>,
    /// Rows per packed page: `K × base_rows_per_page`.
    pub rows_per_page: u64,
    /// Total encoded payload bytes across the pages.
    pub payload_bytes: u64,
    /// Pages that chose [`Encoding::Rle`].
    pub rle_pages: u64,
    /// Pages that chose [`Encoding::Dict`].
    pub dict_pages: u64,
}

/// Try to pack a column's verbatim row bytes into fewer pages. Walks
/// [`PACK_FACTORS`] highest-first; a factor `K` succeeds when *every* span of
/// `K × base_rows_per_page` rows encodes within `capacity` (incompressible
/// data fails each factor at its first span, so the whole probe stays cheap).
/// Returns `None` — persist raw — when the policy is disabled, the column
/// already fits one page, or no factor fits; `K ≥ 2` guarantees a packed
/// column writes at most half the raw page count.
pub fn pack_row_bytes(
    raw: &[u8],
    width: usize,
    base_rows_per_page: u64,
    capacity: usize,
    policy: &EncodingPolicy,
) -> Option<PackedSpans> {
    if !policy.enabled || base_rows_per_page == 0 || width == 0 {
        return None;
    }
    let rows = (raw.len() / width) as u64;
    if rows <= base_rows_per_page {
        return None;
    }
    'factors: for k in PACK_FACTORS {
        let rows_per_page = base_rows_per_page * k;
        let span_bytes = rows_per_page as usize * width;
        let mut payloads = Vec::with_capacity(rows.div_ceil(rows_per_page) as usize);
        let (mut payload_bytes, mut rle_pages, mut dict_pages) = (0u64, 0u64, 0u64);
        for span in raw.chunks(span_bytes) {
            let Some((enc, payload)) = encode_span(span, width, policy, capacity) else {
                continue 'factors;
            };
            payload_bytes += payload.len() as u64;
            match enc {
                Encoding::Rle => rle_pages += 1,
                Encoding::Dict => dict_pages += 1,
                Encoding::Raw => {}
            }
            payloads.push(payload);
        }
        return Some(PackedSpans {
            payloads,
            rows_per_page,
            payload_bytes,
            rle_pages,
            dict_pages,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i64_bytes(values: &[i64]) -> Vec<u8> {
        values.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    fn round_trip(raw: &[u8], width: usize, policy: &EncodingPolicy) -> Encoding {
        let (enc, payload) = encode_span(raw, width, policy, usize::MAX).unwrap();
        let decoded = decode_span(&payload, width).unwrap();
        assert_eq!(decoded, raw, "round trip through {:?}", enc);
        let (_, rows) = span_view(&payload, width).unwrap();
        assert_eq!(rows as usize, raw.len() / width);
        for idx in 0..rows {
            let at = span_value_offset(&payload, width, idx).unwrap();
            assert_eq!(
                &payload[at..at + width],
                &raw[idx as usize * width..(idx as usize + 1) * width]
            );
        }
        assert!(span_value_offset(&payload, width, rows).is_err());
        enc
    }

    #[test]
    fn single_run_picks_rle() {
        let raw = i64_bytes(&[7; 1000]);
        assert_eq!(
            round_trip(&raw, 8, &EncodingPolicy::default()),
            Encoding::Rle
        );
    }

    #[test]
    fn alternating_low_cardinality_picks_dict() {
        let values: Vec<i64> = (0..1000).map(|i| i % 2).collect();
        let raw = i64_bytes(&values);
        assert_eq!(
            round_trip(&raw, 8, &EncodingPolicy::default()),
            Encoding::Dict
        );
    }

    #[test]
    fn high_cardinality_falls_back_to_raw() {
        let values: Vec<i64> = (0..1000).collect();
        let raw = i64_bytes(&values);
        assert_eq!(
            round_trip(&raw, 8, &EncodingPolicy::default()),
            Encoding::Raw
        );
        // And with a tight budget, nothing fits at all.
        assert!(encode_span(&raw, 8, &EncodingPolicy::default(), 100).is_none());
    }

    #[test]
    fn empty_span_round_trips() {
        assert_eq!(
            round_trip(&[], 8, &EncodingPolicy::default()),
            Encoding::Rle
        );
    }

    #[test]
    fn dict_respects_cardinality_cap() {
        let values: Vec<i64> = (0..1000).map(|i| i % 9).collect();
        let raw = i64_bytes(&values);
        let tight = EncodingPolicy {
            enabled: true,
            dict_max_cardinality: 8,
        };
        // Nine distinct values exceed an eight-entry dictionary; RLE on
        // run-length-1 data is bigger than raw, so raw wins.
        let (enc, _) = encode_span(&raw, 8, &tight, usize::MAX).unwrap();
        assert_eq!(enc, Encoding::Raw);
        let (enc, _) = encode_span(&raw, 8, &EncodingPolicy::default(), usize::MAX).unwrap();
        assert_eq!(enc, Encoding::Dict);
    }

    #[test]
    fn pack_selects_highest_fitting_factor() {
        // Constant data: every span is one run, so K = 64 fits.
        let raw = i64_bytes(&vec![42i64; 5000]);
        let packed = pack_row_bytes(&raw, 8, 29, 232, &EncodingPolicy::default()).unwrap();
        assert_eq!(packed.rows_per_page, 29 * 64);
        assert_eq!(packed.payloads.len(), 5000usize.div_ceil(29 * 64));
        assert_eq!(packed.rle_pages, packed.payloads.len() as u64);
        assert_eq!(packed.dict_pages, 0);
        assert_eq!(
            packed.payload_bytes,
            packed.payloads.iter().map(|p| p.len() as u64).sum::<u64>()
        );
        let mut decoded = Vec::new();
        for p in &packed.payloads {
            decoded.extend(decode_span(p, 8).unwrap());
        }
        assert_eq!(decoded, raw);
    }

    #[test]
    fn pack_declines_incompressible_and_small_columns() {
        let unique: Vec<i64> = (0..5000).collect();
        assert!(
            pack_row_bytes(&i64_bytes(&unique), 8, 29, 232, &EncodingPolicy::default()).is_none()
        );
        // A column that already fits one page is never packed.
        let tiny = i64_bytes(&[1i64; 20]);
        assert!(pack_row_bytes(&tiny, 8, 29, 232, &EncodingPolicy::default()).is_none());
        // Disabled policy never packs.
        let constant = i64_bytes(&vec![1i64; 5000]);
        assert!(pack_row_bytes(&constant, 8, 29, 232, &EncodingPolicy::disabled()).is_none());
    }

    #[test]
    fn corrupt_spans_are_rejected_not_misread() {
        let raw = i64_bytes(&[3; 100]);
        let (_, mut payload) =
            encode_span(&raw, 8, &EncodingPolicy::default(), usize::MAX).unwrap();
        // Unknown tag.
        let mut bad = payload.clone();
        bad[0] = 9;
        assert!(span_view(&bad, 8).is_err());
        assert!(span_value_offset(&bad, 8, 0).is_err());
        // Truncation.
        assert!(span_view(&payload[..payload.len() - 1], 8).is_err());
        // Zero-length run.
        payload[5..9].copy_from_slice(&0u32.to_le_bytes());
        assert!(span_view(&payload, 8).is_err());
        // Dict code beyond the table.
        let values: Vec<i64> = (0..100).map(|i| i % 3).collect();
        let (enc, mut dict_payload) = encode_span(
            &i64_bytes(&values),
            8,
            &EncodingPolicy::default(),
            usize::MAX,
        )
        .unwrap();
        assert_eq!(enc, Encoding::Dict);
        let last = dict_payload.len() - 1;
        dict_payload[last] = 200;
        assert!(span_view(&dict_payload, 8).is_err());
        assert!(span_value_offset(&dict_payload, 8, 99).is_err());
        // Empty payload.
        assert!(span_view(&[], 8).is_err());
    }

    #[test]
    fn stats_accumulate_and_expose_metrics() {
        let stats = EncodingStats::default();
        stats.record_pack(3, 2, 4096);
        stats.add_run_skips(10);
        stats.add_run_skips(0);
        assert_eq!(
            (
                stats.rle_pages(),
                stats.dict_pages(),
                stats.bytes_saved(),
                stats.run_skips()
            ),
            (3, 2, 4096, 10)
        );
        assert_eq!(stats.source_name(), "encoding");
        let metrics = stats.collect();
        assert_eq!(metrics.len(), 4);
        assert!(metrics
            .iter()
            .any(|(n, v)| *n == "run_skips" && *v == MetricValue::Counter(10)));
    }
}
