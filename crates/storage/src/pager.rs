//! The pager: a single append-only page file plus a bounded buffer pool.
//!
//! A persistent catalog directory stores all column data in one page file
//! (`pages.dat`). Pages are never overwritten once referenced by a published
//! manifest — writers only append — so a crash mid-persist leaves every
//! previously published epoch intact and the tail garbage is simply ignored
//! (see `crate::persist` for the manifest protocol built on top).
//!
//! Reads go through a [`Pager`]: a small buffer pool of verified page
//! payloads with second-chance (CLOCK) eviction. The pool is the knob that
//! lets a catalog larger than RAM stream under exploration — a touched region
//! faults its pages in, cold regions get evicted, and memory stays bounded by
//! `pool_pages * page_size` no matter how large the page file is.
//!
//! [`PagedColumn`] is the reader the in-memory [`Column`](crate::column)
//! wraps after a catalog is reopened from disk: same accessors, same value
//! encoding, same fold order — results are bit-identical to the in-memory
//! column it was persisted from — but rows fault through the pool on first
//! touch instead of living in a `Vec`.

use crate::encoding::{
    decode_span, pack_row_bytes, rle_runs, span_value_offset, span_view, EncodingPolicy,
    EncodingStats, SpanView,
};
use crate::page::{
    encode_page, payload_capacity, rows_per_page, verify_page, MIN_PAGE_SIZE, PAGE_HEADER_BYTES,
};
use crate::segment::{SegmentStats, SegmentSum};
use dbtouch_obs::{MetricSource, MetricValue, Telemetry, TraceEventKind};
use dbtouch_types::{DataType, DbTouchError, Result, RowId, RowRange, Value};
use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Map an `std::io::Error` into the workspace error type.
pub(crate) fn io_err(op: &str, e: std::io::Error) -> DbTouchError {
    DbTouchError::Io(format!("{op}: {e}"))
}

/// A contiguous run of pages holding one column's rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnExtent {
    /// First page id of the run.
    pub start_page: u64,
    /// Number of pages in the run.
    pub page_count: u64,
    /// Number of rows stored.
    pub rows: u64,
    /// Element type (fixes the row width and therefore the page geometry).
    pub dt: DataType,
    /// `Some(rows per page)` when the extent's payloads are packed span
    /// encodings (see [`crate::encoding`]): each page holds this many rows
    /// (the last one possibly fewer) as a tagged, compressed span. `None`
    /// means the legacy raw layout — untagged verbatim row bytes at the
    /// page-geometry row count.
    pub packed_rows_per_page: Option<u64>,
    /// Actual persisted payload bytes across the extent's pages (for raw
    /// extents this is simply `rows × width`). What [`Column::byte_size`]
    /// (`crate::column`) reports for paged columns.
    pub payload_bytes: u64,
}

impl ColumnExtent {
    /// A raw (uncompressed) extent; `payload_bytes` follows from the row
    /// count and type width.
    pub fn raw(start_page: u64, page_count: u64, rows: u64, dt: DataType) -> ColumnExtent {
        ColumnExtent {
            start_page,
            page_count,
            rows,
            dt,
            packed_rows_per_page: None,
            payload_bytes: rows * dt.width_bytes() as u64,
        }
    }

    /// Whether the extent's payloads are packed span encodings.
    pub fn is_packed(&self) -> bool {
        self.packed_rows_per_page.is_some()
    }
}

/// Counters accumulated by a [`Pager`] since it was opened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagerStats {
    /// Page reads served from the buffer pool.
    pub pool_hits: u64,
    /// Page reads that faulted from disk.
    pub faults: u64,
    /// Pages evicted to respect the pool capacity.
    pub evictions: u64,
}

struct PoolEntry {
    payload: Arc<Vec<u8>>,
    /// Second-chance bit: set on every hit, cleared once by the clock hand
    /// before the entry becomes an eviction candidate.
    referenced: bool,
}

struct Pool {
    capacity: usize,
    map: HashMap<u64, PoolEntry>,
    /// Clock order: every resident page id appears exactly once.
    queue: VecDeque<u64>,
    evictions: u64,
}

impl Pool {
    fn evict_to_capacity(&mut self) {
        while self.map.len() >= self.capacity {
            let Some(id) = self.queue.pop_front() else {
                return;
            };
            let Some(entry) = self.map.get_mut(&id) else {
                continue;
            };
            if entry.referenced {
                entry.referenced = false;
                self.queue.push_back(id);
            } else {
                self.map.remove(&id);
                self.evictions += 1;
            }
        }
    }
}

/// One page file plus its buffer pool. Shared (via `Arc`) by every paged
/// column of a reopened catalog, so the pool bound is per-catalog, not
/// per-column.
pub struct Pager {
    path: PathBuf,
    page_size: usize,
    file: Mutex<File>,
    pool: Mutex<Pool>,
    /// Pages currently in the file (committed or not); the id source for
    /// appends.
    len_pages: AtomicU64,
    pool_hits: AtomicU64,
    faults: AtomicU64,
    /// Telemetry hub, attached once after the owning catalog assembles its
    /// hub. Faults emit [`TraceEventKind::PageFault`] events attributed to
    /// whatever gesture trace the faulting thread is running.
    telemetry: OnceLock<Arc<Telemetry>>,
    /// Compression counters: pages packed per encoding, bytes saved on disk,
    /// runs aggregated run-at-a-time by scans. Shared so the owning catalog
    /// can register them as the `encoding` metric source.
    encoding_stats: Arc<EncodingStats>,
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pager")
            .field("path", &self.path)
            .field("page_size", &self.page_size)
            .field("len_pages", &self.len_pages.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Pager {
    /// Open (or create) a page file with a pool of `pool_pages` pages.
    pub fn open_or_create(
        path: impl AsRef<Path>,
        page_size: usize,
        pool_pages: usize,
    ) -> Result<Pager> {
        if page_size < MIN_PAGE_SIZE {
            return Err(DbTouchError::InvalidConfig(format!(
                "page_size must be at least {MIN_PAGE_SIZE} bytes"
            )));
        }
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err("open page file", e))?;
        let len = file
            .metadata()
            .map_err(|e| io_err("stat page file", e))?
            .len();
        Ok(Pager {
            path,
            page_size,
            file: Mutex::new(file),
            pool: Mutex::new(Pool {
                capacity: pool_pages.max(1),
                map: HashMap::new(),
                queue: VecDeque::new(),
                evictions: 0,
            }),
            len_pages: AtomicU64::new(len / page_size as u64),
            pool_hits: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            telemetry: OnceLock::new(),
            encoding_stats: Arc::new(EncodingStats::default()),
        })
    }

    /// Compression counters for this page file (the `encoding` metric
    /// source).
    pub fn encoding_stats(&self) -> &Arc<EncodingStats> {
        &self.encoding_stats
    }

    /// Attach a telemetry hub so page faults show up in the event trace.
    /// First attachment wins; later calls are ignored (a pager belongs to one
    /// catalog).
    pub fn attach_telemetry(&self, hub: Arc<Telemetry>) {
        let _ = self.telemetry.set(hub);
    }

    /// The page size this file was opened with.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Pages currently in the file (including any uncommitted tail).
    pub fn len_pages(&self) -> u64 {
        self.len_pages.load(Ordering::Acquire)
    }

    /// Buffer-pool capacity in pages.
    pub fn pool_pages(&self) -> usize {
        self.pool.lock().unwrap_or_else(|e| e.into_inner()).capacity
    }

    /// Pool hit/fault/eviction counters since open.
    pub fn stats(&self) -> PagerStats {
        let evictions = {
            let pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
            pool.evictions
        };
        PagerStats {
            pool_hits: self.pool_hits.load(Ordering::Relaxed),
            faults: self.faults.load(Ordering::Relaxed),
            evictions,
        }
    }

    fn read_image(&self, page_id: u64) -> Result<Vec<u8>> {
        let mut image = vec![0u8; self.page_size];
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        file.seek(SeekFrom::Start(page_id * self.page_size as u64))
            .map_err(|e| io_err("seek page", e))?;
        file.read_exact(&mut image).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                DbTouchError::Corrupt(format!(
                    "page {page_id} lies beyond the end of the page file"
                ))
            } else {
                io_err("read page", e)
            }
        })?;
        Ok(image)
    }

    /// Read one page's payload, faulting it into the buffer pool if absent.
    /// The payload checksum is verified on every fault; corruption surfaces
    /// as [`DbTouchError::Corrupt`], never a panic or a silent wrong answer.
    pub fn read_page(self: &Arc<Self>, page_id: u64) -> Result<Arc<Vec<u8>>> {
        {
            let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(entry) = pool.map.get_mut(&page_id) {
                entry.referenced = true;
                self.pool_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&entry.payload));
            }
        }
        // Fault outside the pool lock so concurrent sessions faulting other
        // pages are not serialized behind this read. Two sessions faulting
        // the same page concurrently both read it; one insert wins.
        let image = self.read_image(page_id)?;
        let payload = Arc::new(verify_page(&image, page_id, self.page_size)?.to_vec());
        self.faults.fetch_add(1, Ordering::Relaxed);
        if let Some(hub) = self.telemetry.get() {
            hub.event(TraceEventKind::PageFault, page_id);
        }
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(entry) = pool.map.get_mut(&page_id) {
            entry.referenced = true;
            return Ok(Arc::clone(&entry.payload));
        }
        pool.evict_to_capacity();
        pool.map.insert(
            page_id,
            PoolEntry {
                payload: Arc::clone(&payload),
                referenced: true,
            },
        );
        pool.queue.push_back(page_id);
        Ok(payload)
    }

    /// Append page payloads, returning the id of the first page written. The
    /// caller is responsible for serializing appends (the persist path holds
    /// a store-wide lock) and for [`sync`](Pager::sync)ing before publishing
    /// a manifest that references the new pages.
    pub fn append_payloads<'a>(&self, payloads: impl IntoIterator<Item = &'a [u8]>) -> Result<u64> {
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        let first = self.len_pages.load(Ordering::Acquire);
        file.seek(SeekFrom::Start(first * self.page_size as u64))
            .map_err(|e| io_err("seek append", e))?;
        let mut next = first;
        for payload in payloads {
            let image = encode_page(next, payload, self.page_size)?;
            file.write_all(&image)
                .map_err(|e| io_err("append page", e))?;
            next += 1;
        }
        self.len_pages.store(next, Ordering::Release);
        Ok(first)
    }

    /// Flush appended pages to stable storage.
    pub fn sync(&self) -> Result<()> {
        let file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        file.sync_data().map_err(|e| io_err("sync page file", e))
    }

    /// Stream-verify every page of an extent without populating the pool:
    /// full payload checksums, memory O(one page) regardless of extent size.
    /// This is the exhaustive check (`fsck`); opening a catalog uses the
    /// cheaper [`verify_extent_headers`](Pager::verify_extent_headers) and
    /// leaves payload verification to fault time.
    pub fn verify_extent(&self, extent: &ColumnExtent) -> Result<()> {
        for page_id in extent.start_page..extent.start_page + extent.page_count {
            let image = self.read_image(page_id)?;
            verify_page(&image, page_id, self.page_size)?;
        }
        Ok(())
    }

    /// Verify only the headers of an extent's pages: magic, stored page id
    /// and payload-length sanity. Reads `PAGE_HEADER_BYTES` per page instead
    /// of whole pages, so open-time validation of a large catalog stays
    /// cheap; payload checksums are still verified lazily on every fault.
    pub fn verify_extent_headers(&self, extent: &ColumnExtent) -> Result<()> {
        let mut header = [0u8; PAGE_HEADER_BYTES];
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        for page_id in extent.start_page..extent.start_page + extent.page_count {
            file.seek(SeekFrom::Start(page_id * self.page_size as u64))
                .map_err(|e| io_err("seek page header", e))?;
            file.read_exact(&mut header).map_err(|e| {
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    DbTouchError::Corrupt(format!(
                        "page {page_id} lies beyond the end of the page file"
                    ))
                } else {
                    io_err("read page header", e)
                }
            })?;
            let decoded = crate::page::PageHeader::decode(&header, self.page_size)?;
            if decoded.page_id != page_id {
                return Err(DbTouchError::Corrupt(format!(
                    "page id mismatch: expected {page_id}, found {}",
                    decoded.page_id
                )));
            }
        }
        Ok(())
    }
}

impl MetricSource for Pager {
    fn source_name(&self) -> &'static str {
        "pager"
    }

    fn collect(&self) -> Vec<(&'static str, MetricValue)> {
        let stats = self.stats();
        let resident = {
            let pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
            pool.map.len()
        };
        vec![
            ("pool_hits", MetricValue::Counter(stats.pool_hits)),
            ("faults", MetricValue::Counter(stats.faults)),
            ("evictions", MetricValue::Counter(stats.evictions)),
            ("resident_pages", MetricValue::Gauge(resident as u64)),
            ("pool_pages", MetricValue::Gauge(self.pool_pages() as u64)),
            ("len_pages", MetricValue::Gauge(self.len_pages())),
        ]
    }
}

/// A column whose rows live in a contiguous page extent and fault through a
/// shared [`Pager`] on first touch.
#[derive(Clone)]
pub struct PagedColumn {
    pager: Arc<Pager>,
    extent: ColumnExtent,
    /// Rows per page, precomputed from the page size and row width.
    rows_per_page: u64,
}

impl std::fmt::Debug for PagedColumn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedColumn")
            .field("extent", &self.extent)
            .finish_non_exhaustive()
    }
}

impl PagedColumn {
    /// Wrap an extent of `pager` as a readable column. Validates the page
    /// geometry implied by the extent's type and row count (for packed
    /// extents, the rows-per-page the extent itself declares; span payloads
    /// are further validated structurally on every read).
    pub fn new(pager: Arc<Pager>, extent: ColumnExtent) -> Result<PagedColumn> {
        let width = extent.dt.width_bytes();
        let rpp = match extent.packed_rows_per_page {
            Some(packed) => packed,
            None => rows_per_page(pager.page_size(), width),
        };
        if extent.rows > 0 {
            if rpp == 0 {
                return Err(DbTouchError::InvalidConfig(format!(
                    "row width {width} does not fit the {}-byte page payload",
                    payload_capacity(pager.page_size())
                )));
            }
            let needed = extent.rows.div_ceil(rpp);
            if needed != extent.page_count {
                return Err(DbTouchError::Corrupt(format!(
                    "extent claims {} pages for {} rows ({} expected)",
                    extent.page_count, extent.rows, needed
                )));
            }
        } else if extent.page_count != 0 {
            return Err(DbTouchError::Corrupt(
                "extent claims pages for an empty column".into(),
            ));
        }
        Ok(PagedColumn {
            pager,
            extent,
            rows_per_page: rpp,
        })
    }

    /// The extent this column reads.
    pub fn extent(&self) -> ColumnExtent {
        self.extent
    }

    /// Element type.
    pub fn data_type(&self) -> DataType {
        self.extent.dt
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.extent.rows
    }

    fn check_row(&self, row: RowId) -> Result<()> {
        if row.0 >= self.extent.rows {
            return Err(DbTouchError::RowOutOfBounds {
                row: row.0,
                len: self.extent.rows,
            });
        }
        Ok(())
    }

    /// Fault the page containing `row` and return `(payload, byte offset of
    /// the row's value within it)`. For packed extents the offset is
    /// resolved through the span encoding (`O(1)` for raw and dictionary
    /// spans, a run scan for RLE).
    fn page_for_row(&self, row: u64) -> Result<(Arc<Vec<u8>>, usize)> {
        let width = self.extent.dt.width_bytes();
        let page_idx = row / self.rows_per_page;
        let payload = self.pager.read_page(self.extent.start_page + page_idx)?;
        let offset = if self.extent.is_packed() {
            span_value_offset(&payload, width, row % self.rows_per_page)?
        } else {
            (row % self.rows_per_page) as usize * width
        };
        if offset + width > payload.len() {
            return Err(DbTouchError::Corrupt(format!(
                "row {row} points past the payload of page {}",
                self.extent.start_page + page_idx
            )));
        }
        Ok((payload, offset))
    }

    /// The value at `row`, decoded exactly as the in-memory column (and the
    /// row-major matrix) decode it.
    pub fn value_at(&self, row: RowId) -> Result<Value> {
        self.check_row(row)?;
        let width = self.extent.dt.width_bytes();
        let (payload, offset) = self.page_for_row(row.0)?;
        Value::decode(&payload[offset..offset + width], self.extent.dt)
    }

    /// Fast numeric accessor mirroring `Column::f64_at`.
    pub fn f64_at(&self, row: RowId) -> Result<f64> {
        self.check_row(row)?;
        match self.extent.dt {
            DataType::Int64 | DataType::TimestampMillis => {
                let (payload, offset) = self.page_for_row(row.0)?;
                Ok(i64::from_le_bytes(payload[offset..offset + 8].try_into().unwrap()) as f64)
            }
            DataType::Float64 => {
                let (payload, offset) = self.page_for_row(row.0)?;
                Ok(f64::from_le_bytes(
                    payload[offset..offset + 8].try_into().unwrap(),
                ))
            }
            dt => Err(DbTouchError::TypeMismatch {
                expected: "numeric".into(),
                found: dt.name(),
            }),
        }
    }

    /// `(count, sum, min, max)` over `range`, folding rows in ascending order
    /// — the identical accumulation order (and therefore identical floating
    /// point result) as the in-memory column's `numeric_range_stats`.
    pub fn numeric_range_stats(
        &self,
        range: RowRange,
    ) -> Result<(u64, f64, Option<f64>, Option<f64>)> {
        if !self.extent.dt.is_numeric() {
            return Err(DbTouchError::TypeMismatch {
                expected: "numeric".into(),
                found: self.extent.dt.name(),
            });
        }
        let range = range.clamp_to(self.extent.rows);
        let mut count = 0u64;
        let mut sum = 0.0;
        let mut min: Option<f64> = None;
        let mut max: Option<f64> = None;
        if self.extent.is_packed() {
            let integer = self.extent.dt.is_integer();
            self.packed_fold_rows(range, integer, &mut |x| {
                count += 1;
                sum += x;
                min = Some(min.map_or(x, |m| m.min(x)));
                max = Some(max.map_or(x, |m| m.max(x)));
            })?;
            return Ok((count, sum, min, max));
        }
        let mut row = range.start;
        while row < range.end {
            let (payload, offset) = self.page_for_row(row)?;
            // Rows of this page inside the range.
            let page_remaining = self.rows_per_page - (row % self.rows_per_page);
            let take = page_remaining.min(range.end - row);
            let integer = self.extent.dt.is_integer();
            for i in 0..take as usize {
                let at = offset + i * 8;
                let bits: [u8; 8] = payload[at..at + 8].try_into().unwrap();
                let x = if integer {
                    i64::from_le_bytes(bits) as f64
                } else {
                    f64::from_le_bytes(bits)
                };
                count += 1;
                sum += x;
                min = Some(min.map_or(x, |m| m.min(x)));
                max = Some(max.map_or(x, |m| m.max(x)));
            }
            row += take;
        }
        Ok((count, sum, min, max))
    }

    /// [`SegmentStats`] over `range` — the same page-at-a-time fold as
    /// `numeric_range_stats`, but integer columns accumulate their sum in
    /// exact `i128` so segment partials merge associatively.
    pub fn segment_range_stats(&self, range: RowRange) -> Result<SegmentStats> {
        if !self.extent.dt.is_numeric() {
            return Err(DbTouchError::TypeMismatch {
                expected: "numeric".into(),
                found: self.extent.dt.name(),
            });
        }
        let range = range.clamp_to(self.extent.rows);
        let integer = self.extent.dt.is_integer();
        if self.extent.is_packed() {
            if integer {
                return self.packed_segment_stats_int(range);
            }
            // Float sums are order-dependent: reuse the per-row ascending
            // fold, which visits values exactly as the raw layout does.
            let (count, sum, min, max) = self.numeric_range_stats(range)?;
            return Ok(SegmentStats {
                count,
                sum: SegmentSum::Float(sum),
                min,
                max,
            });
        }
        let mut stats = SegmentStats::empty(integer);
        let mut fsum = 0.0f64;
        let mut isum = 0i128;
        let mut row = range.start;
        while row < range.end {
            let (payload, offset) = self.page_for_row(row)?;
            // Rows of this page inside the range.
            let page_remaining = self.rows_per_page - (row % self.rows_per_page);
            let take = page_remaining.min(range.end - row);
            for i in 0..take as usize {
                let at = offset + i * 8;
                let bits: [u8; 8] = payload[at..at + 8].try_into().unwrap();
                let x = if integer {
                    let v = i64::from_le_bytes(bits);
                    isum += v as i128;
                    v as f64
                } else {
                    let v = f64::from_le_bytes(bits);
                    fsum += v;
                    v
                };
                stats.count += 1;
                stats.min = Some(stats.min.map_or(x, |m| m.min(x)));
                stats.max = Some(stats.max.map_or(x, |m| m.max(x)));
            }
            row += take;
        }
        stats.sum = if integer {
            SegmentSum::Int(isum)
        } else {
            SegmentSum::Float(fsum)
        };
        Ok(stats)
    }

    /// Fault the page containing `row` and return `(payload, page id)`.
    fn page_span(&self, row: u64) -> Result<(Arc<Vec<u8>>, u64)> {
        let page_idx = row / self.rows_per_page;
        let payload = self.pager.read_page(self.extent.start_page + page_idx)?;
        Ok((payload, self.extent.start_page + page_idx))
    }

    /// Fold every value of `range` (already clamped) in ascending row order,
    /// decoding packed spans in place. The per-row visit order — and
    /// therefore any floating-point accumulation the caller performs — is
    /// identical to the raw layout's page-at-a-time fold.
    fn packed_fold_rows(
        &self,
        range: RowRange,
        integer: bool,
        f: &mut dyn FnMut(f64),
    ) -> Result<()> {
        let width = self.extent.dt.width_bytes();
        let to_f64 = |bytes: &[u8]| {
            let bits: [u8; 8] = bytes[0..8].try_into().unwrap();
            if integer {
                i64::from_le_bytes(bits) as f64
            } else {
                f64::from_le_bytes(bits)
            }
        };
        let mut row = range.start;
        while row < range.end {
            let lo = (row % self.rows_per_page) as usize;
            let take = (self.rows_per_page - row % self.rows_per_page).min(range.end - row);
            let hi = lo + take as usize;
            let (payload, page_id) = self.page_span(row)?;
            let (view, span_rows) = span_view(&payload, width)?;
            if (span_rows as usize) < hi {
                return Err(DbTouchError::Corrupt(format!(
                    "page {page_id} stores {span_rows} rows where {hi} were expected"
                )));
            }
            match view {
                SpanView::Raw { rows } => {
                    for i in lo..hi {
                        f(to_f64(&rows[i * width..]));
                    }
                }
                SpanView::Rle { runs } => {
                    let mut cum = 0usize;
                    for (len, value) in rle_runs(runs, width) {
                        let start = cum;
                        cum += len as usize;
                        if cum <= lo {
                            continue;
                        }
                        if start >= hi {
                            break;
                        }
                        let overlap = cum.min(hi) - start.max(lo);
                        let x = to_f64(value);
                        for _ in 0..overlap {
                            f(x);
                        }
                    }
                }
                SpanView::Dict { dict, codes } => {
                    for &c in &codes[lo..hi] {
                        f(to_f64(&dict[c as usize * width..]));
                    }
                }
            }
            row += take;
        }
        Ok(())
    }

    /// Integer [`SegmentStats`] over a packed extent: whole RLE runs
    /// aggregate with one multiply, dictionary pages aggregate by counting
    /// codes and folding each distinct value once. Exact `i128` accumulation
    /// makes the decomposition invisible — the result is bit-identical to
    /// the per-row fold at every granularity.
    fn packed_segment_stats_int(&self, range: RowRange) -> Result<SegmentStats> {
        let width = self.extent.dt.width_bytes();
        let mut stats = SegmentStats::empty(true);
        let mut isum = 0i128;
        let mut run_skips = 0u64;
        let value_of = |bytes: &[u8]| i64::from_le_bytes(bytes[0..8].try_into().unwrap());
        let fold_minmax = |stats: &mut SegmentStats, v: i64| {
            let x = v as f64;
            stats.min = Some(stats.min.map_or(x, |m| m.min(x)));
            stats.max = Some(stats.max.map_or(x, |m| m.max(x)));
        };
        let mut counts = [0u32; 256];
        let mut row = range.start;
        while row < range.end {
            let lo = (row % self.rows_per_page) as usize;
            let take = (self.rows_per_page - row % self.rows_per_page).min(range.end - row);
            let hi = lo + take as usize;
            let (payload, page_id) = self.page_span(row)?;
            let (view, span_rows) = span_view(&payload, width)?;
            if (span_rows as usize) < hi {
                return Err(DbTouchError::Corrupt(format!(
                    "page {page_id} stores {span_rows} rows where {hi} were expected"
                )));
            }
            match view {
                SpanView::Raw { rows } => {
                    for i in lo..hi {
                        let v = value_of(&rows[i * width..]);
                        isum += v as i128;
                        stats.count += 1;
                        fold_minmax(&mut stats, v);
                    }
                }
                SpanView::Rle { runs } => {
                    let mut cum = 0usize;
                    for (len, value) in rle_runs(runs, width) {
                        let start = cum;
                        cum += len as usize;
                        if cum <= lo {
                            continue;
                        }
                        if start >= hi {
                            break;
                        }
                        let overlap = (cum.min(hi) - start.max(lo)) as u64;
                        let v = value_of(value);
                        isum += v as i128 * overlap as i128;
                        stats.count += overlap;
                        fold_minmax(&mut stats, v);
                        if overlap >= 2 {
                            run_skips += 1;
                        }
                    }
                }
                SpanView::Dict { dict, codes } => {
                    let dict_len = dict.len() / width;
                    counts[..dict_len].fill(0);
                    for &c in &codes[lo..hi] {
                        counts[c as usize] += 1;
                    }
                    for (c, &n) in counts[..dict_len].iter().enumerate() {
                        if n > 0 {
                            let v = value_of(&dict[c * width..]);
                            isum += v as i128 * n as i128;
                            stats.count += n as u64;
                            fold_minmax(&mut stats, v);
                        }
                    }
                }
            }
            row += take;
        }
        stats.sum = SegmentSum::Int(isum);
        self.pager.encoding_stats.add_run_skips(run_skips);
        Ok(stats)
    }

    /// Rows per page of this extent (packed extents hold more than the page
    /// geometry allows raw).
    pub fn rows_per_page(&self) -> u64 {
        self.rows_per_page
    }

    /// Verbatim row bytes of `range`, decoded page-at-a-time — the batch
    /// path behind `materialized`, `project_range` and re-persists; never
    /// faults a page outside the range.
    pub fn range_raw_bytes(&self, range: RowRange) -> Result<Vec<u8>> {
        let width = self.extent.dt.width_bytes();
        let range = range.clamp_to(self.extent.rows);
        let mut out = Vec::with_capacity(range.len() as usize * width);
        let mut row = range.start;
        while row < range.end {
            let lo = (row % self.rows_per_page) as usize * width;
            let take = (self.rows_per_page - row % self.rows_per_page).min(range.end - row);
            let bytes = take as usize * width;
            let (payload, page_id) = self.page_span(row)?;
            if self.extent.is_packed() {
                let decoded = decode_span(&payload, width)?;
                if decoded.len() < lo + bytes {
                    return Err(DbTouchError::Corrupt(format!(
                        "page {page_id} decodes short of its expected rows"
                    )));
                }
                out.extend_from_slice(&decoded[lo..lo + bytes]);
            } else {
                if payload.len() < lo + bytes {
                    return Err(DbTouchError::Corrupt(format!(
                        "page {page_id} payload short of its expected rows"
                    )));
                }
                out.extend_from_slice(&payload[lo..lo + bytes]);
            }
            row += take;
        }
        Ok(out)
    }

    /// Verbatim row bytes of the whole column.
    pub fn raw_row_bytes(&self) -> Result<Vec<u8>> {
        self.range_raw_bytes(RowRange::new(0, self.extent.rows))
    }

    /// Row bytes of rows `0, step, 2·step, …`, decoding each page at most
    /// once and faulting only pages that actually hold a sampled row.
    /// Returns the bytes and the number of rows sampled.
    pub fn strided_row_bytes(&self, step: u64) -> Result<(Vec<u8>, u64)> {
        let width = self.extent.dt.width_bytes();
        let step = step.max(1);
        let mut out = Vec::with_capacity((self.extent.rows / step + 1) as usize * width);
        let mut sampled = 0u64;
        let mut cached: Option<(u64, Vec<u8>)> = None;
        let mut row = 0u64;
        while row < self.extent.rows {
            let page_idx = row / self.rows_per_page;
            if cached.as_ref().map(|(idx, _)| *idx) != Some(page_idx) {
                let (payload, _) = self.page_span(row)?;
                let decoded = if self.extent.is_packed() {
                    decode_span(&payload, width)?
                } else {
                    payload.to_vec()
                };
                cached = Some((page_idx, decoded));
            }
            let bytes = &cached.as_ref().unwrap().1;
            let lo = (row % self.rows_per_page) as usize * width;
            if bytes.len() < lo + width {
                return Err(DbTouchError::Corrupt(format!(
                    "page {} short of row {row}",
                    self.extent.start_page + page_idx
                )));
            }
            out.extend_from_slice(&bytes[lo..lo + width]);
            sampled += 1;
            row += step;
        }
        Ok((out, sampled))
    }

    /// The persisted payload of every page of the extent, in order. For
    /// packed extents these are the *encoded* span payloads — re-persisting
    /// a column goes through [`raw_row_bytes`](PagedColumn::raw_row_bytes)
    /// so the destination store makes its own packing decision.
    pub fn page_payloads(&self) -> impl Iterator<Item = Result<Arc<Vec<u8>>>> + '_ {
        (self.extent.start_page..self.extent.start_page + self.extent.page_count)
            .map(move |id| self.pager.read_page(id))
    }
}

/// Split a column's raw row bytes into page payloads and append them,
/// returning the extent. `rows_bytes` must be `rows * width` long.
pub fn append_row_bytes(
    pager: &Pager,
    dt: DataType,
    rows: u64,
    row_bytes: &[u8],
) -> Result<ColumnExtent> {
    let width = dt.width_bytes();
    if row_bytes.len() as u64 != rows * width as u64 {
        return Err(DbTouchError::Internal(format!(
            "append_row_bytes: {} bytes for {rows} rows of width {width}",
            row_bytes.len()
        )));
    }
    if rows == 0 {
        return Ok(ColumnExtent::raw(0, 0, 0, dt));
    }
    let rpp = rows_per_page(pager.page_size(), width);
    if rpp == 0 {
        return Err(DbTouchError::InvalidConfig(format!(
            "row width {width} does not fit the {}-byte page payload",
            payload_capacity(pager.page_size())
        )));
    }
    let chunk = rpp as usize * width;
    let start_page = pager.append_payloads(row_bytes.chunks(chunk))?;
    Ok(ColumnExtent::raw(start_page, rows.div_ceil(rpp), rows, dt))
}

/// Like [`append_row_bytes`], but first tries to pack the rows into fewer
/// pages under `policy` (see [`crate::encoding`]). Falls back to the raw
/// layout whenever packing would not shrink the page count, so enabling
/// compression never costs disk space.
pub fn append_row_bytes_encoded(
    pager: &Pager,
    dt: DataType,
    rows: u64,
    row_bytes: &[u8],
    policy: &EncodingPolicy,
) -> Result<ColumnExtent> {
    let width = dt.width_bytes();
    if row_bytes.len() as u64 != rows * width as u64 {
        return Err(DbTouchError::Internal(format!(
            "append_row_bytes_encoded: {} bytes for {rows} rows of width {width}",
            row_bytes.len()
        )));
    }
    if rows > 0 && policy.enabled {
        let base_rpp = rows_per_page(pager.page_size(), width);
        let capacity = payload_capacity(pager.page_size());
        if let Some(packed) = pack_row_bytes(row_bytes, width, base_rpp, capacity, policy) {
            let page_count = packed.payloads.len() as u64;
            let start_page = pager.append_payloads(packed.payloads.iter().map(|p| p.as_slice()))?;
            let raw_pages = rows.div_ceil(base_rpp);
            pager.encoding_stats.record_pack(
                packed.rle_pages,
                packed.dict_pages,
                (raw_pages - page_count) * pager.page_size() as u64,
            );
            return Ok(ColumnExtent {
                start_page,
                page_count,
                rows,
                dt,
                packed_rows_per_page: Some(packed.rows_per_page),
                payload_bytes: packed.payload_bytes,
            });
        }
    }
    append_row_bytes(pager, dt, rows, row_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::DEFAULT_PAGE_SIZE;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicU32;

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn temp_file(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dbtouch-pager-{}-{}-{tag}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("pages.dat")
    }

    fn i64_bytes(values: &[i64]) -> Vec<u8> {
        values.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn append_and_read_round_trip() {
        let path = temp_file("round-trip");
        let pager = Arc::new(Pager::open_or_create(&path, 256, 4).unwrap());
        let values: Vec<i64> = (0..1000).collect();
        let extent = append_row_bytes(&pager, DataType::Int64, 1000, &i64_bytes(&values)).unwrap();
        assert!(extent.page_count > 1);
        let col = PagedColumn::new(Arc::clone(&pager), extent).unwrap();
        assert_eq!(col.rows(), 1000);
        assert_eq!(col.value_at(RowId(0)).unwrap(), Value::Int(0));
        assert_eq!(col.value_at(RowId(999)).unwrap(), Value::Int(999));
        assert_eq!(col.f64_at(RowId(500)).unwrap(), 500.0);
        assert!(col.value_at(RowId(1000)).is_err());
        let (count, sum, min, max) = col.numeric_range_stats(RowRange::new(10, 20)).unwrap();
        assert_eq!((count, sum), (10, (10..20).sum::<i64>() as f64));
        assert_eq!((min, max), (Some(10.0), Some(19.0)));
    }

    #[test]
    fn segment_stats_match_numeric_stats_across_pages() {
        let path = temp_file("segment-stats");
        let pager = Arc::new(Pager::open_or_create(&path, 256, 4).unwrap());
        let values: Vec<i64> = (0..1000).map(|v| v * 3 - 500).collect();
        let extent = append_row_bytes(&pager, DataType::Int64, 1000, &i64_bytes(&values)).unwrap();
        let col = PagedColumn::new(Arc::clone(&pager), extent).unwrap();
        for (start, end) in [(0, 1000), (10, 20), (17, 993), (500, 500)] {
            let seg = col.segment_range_stats(RowRange::new(start, end)).unwrap();
            let (count, sum, min, max) =
                col.numeric_range_stats(RowRange::new(start, end)).unwrap();
            assert_eq!(seg.as_tuple(), (count, sum, min, max));
        }
        let seg = col.segment_range_stats(RowRange::new(0, 1000)).unwrap();
        let exact: i128 = values.iter().map(|&v| v as i128).sum();
        assert_eq!(seg.sum, SegmentSum::Int(exact));
    }

    #[test]
    fn pool_stays_bounded_and_counts_evictions() {
        let path = temp_file("bounded");
        let pager = Arc::new(Pager::open_or_create(&path, 256, 3).unwrap());
        let values: Vec<i64> = (0..1000).collect();
        let extent = append_row_bytes(&pager, DataType::Int64, 1000, &i64_bytes(&values)).unwrap();
        let col = PagedColumn::new(Arc::clone(&pager), extent).unwrap();
        // Stream the whole column twice through a 3-page pool.
        for _ in 0..2 {
            let (count, ..) = col.numeric_range_stats(RowRange::new(0, 1000)).unwrap();
            assert_eq!(count, 1000);
        }
        let stats = pager.stats();
        assert!(stats.evictions > 0, "a 3-page pool must evict: {stats:?}");
        let resident = {
            let pool = pager.pool.lock().unwrap();
            pool.map.len()
        };
        assert!(resident <= 3, "pool exceeded capacity: {resident}");
    }

    #[test]
    fn repeated_reads_hit_the_pool() {
        let path = temp_file("hits");
        let pager = Arc::new(Pager::open_or_create(&path, 256, 64).unwrap());
        let extent = append_row_bytes(
            &pager,
            DataType::Int64,
            100,
            &i64_bytes(&(0..100).collect::<Vec<_>>()),
        )
        .unwrap();
        let col = PagedColumn::new(Arc::clone(&pager), extent).unwrap();
        for _ in 0..10 {
            col.value_at(RowId(5)).unwrap();
        }
        let stats = pager.stats();
        assert_eq!(stats.faults, 1);
        assert!(stats.pool_hits >= 9);
    }

    #[test]
    fn corruption_surfaces_as_error_not_panic() {
        let path = temp_file("corrupt");
        let pager = Arc::new(Pager::open_or_create(&path, 256, 4).unwrap());
        let extent = append_row_bytes(
            &pager,
            DataType::Int64,
            100,
            &i64_bytes(&(0..100).collect::<Vec<_>>()),
        )
        .unwrap();
        pager.sync().unwrap();
        drop(pager);
        // Flip a payload byte of the second page.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[256 + PAGE_HEADER_BYTES + 4] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let pager = Arc::new(Pager::open_or_create(&path, 256, 4).unwrap());
        let col = PagedColumn::new(Arc::clone(&pager), extent).unwrap();
        // First page still reads fine; the corrupted one errors.
        assert!(col.value_at(RowId(0)).is_ok());
        let first_bad = RowId(col.rows_per_page);
        assert!(matches!(
            col.value_at(first_bad),
            Err(DbTouchError::Corrupt(_))
        ));
        assert!(pager.verify_extent(&extent).is_err());
    }

    #[test]
    fn reads_beyond_eof_are_corrupt_errors() {
        let path = temp_file("eof");
        let pager = Arc::new(Pager::open_or_create(&path, 256, 4).unwrap());
        let bogus = ColumnExtent::raw(10, 1, 4, DataType::Int64);
        assert!(matches!(
            pager.verify_extent(&bogus),
            Err(DbTouchError::Corrupt(_))
        ));
        let col = PagedColumn::new(Arc::clone(&pager), bogus).unwrap();
        assert!(col.value_at(RowId(0)).is_err());
    }

    #[test]
    fn empty_and_oversized_extents_validated() {
        let path = temp_file("validate");
        let pager = Arc::new(Pager::open_or_create(&path, 256, 4).unwrap());
        let empty = append_row_bytes(&pager, DataType::Int64, 0, &[]).unwrap();
        assert_eq!(empty.page_count, 0);
        let col = PagedColumn::new(Arc::clone(&pager), empty).unwrap();
        assert_eq!(col.rows(), 0);
        assert!(col.value_at(RowId(0)).is_err());
        // A fixed string wider than the payload cannot be paged.
        assert!(append_row_bytes(&pager, DataType::FixedStr(300), 1, &[0u8; 300]).is_err());
        // Page-count/row mismatches are rejected.
        let lying = ColumnExtent::raw(0, 99, 4, DataType::Int64);
        assert!(PagedColumn::new(Arc::clone(&pager), lying).is_err());
        assert!(Pager::open_or_create(path.with_extension("tiny"), 8, 4).is_err());
    }

    fn f64_bytes(values: &[f64]) -> Vec<u8> {
        values.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    /// Every accessor of a packed column must agree bit-for-bit with the raw
    /// column persisted from the same rows.
    fn assert_reads_match(raw: &PagedColumn, packed: &PagedColumn, rows: u64) {
        for row in [0, 1, rows / 2, rows - 1] {
            assert_eq!(
                raw.value_at(RowId(row)).unwrap(),
                packed.value_at(RowId(row)).unwrap()
            );
            assert_eq!(
                raw.f64_at(RowId(row)).unwrap().to_bits(),
                packed.f64_at(RowId(row)).unwrap().to_bits()
            );
        }
        for (start, end) in [(0, rows), (10, 20), (17, rows - 7), (rows / 2, rows / 2)] {
            let range = RowRange::new(start, end);
            let a = raw.numeric_range_stats(range).unwrap();
            let b = packed.numeric_range_stats(range).unwrap();
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "sum differs over {range:?}");
            assert_eq!(a, b);
            let sa = raw.segment_range_stats(range).unwrap();
            let sb = packed.segment_range_stats(range).unwrap();
            assert_eq!(sa, sb, "segment stats differ over {range:?}");
        }
        assert_eq!(
            raw.raw_row_bytes().unwrap(),
            packed.raw_row_bytes().unwrap()
        );
        assert_eq!(
            raw.range_raw_bytes(RowRange::new(13, rows - 5)).unwrap(),
            packed.range_raw_bytes(RowRange::new(13, rows - 5)).unwrap()
        );
        for step in [1, 7, 1000] {
            assert_eq!(
                raw.strided_row_bytes(step).unwrap(),
                packed.strided_row_bytes(step).unwrap()
            );
        }
    }

    fn packed_pair(tag: &str, dt: DataType, rows: u64, bytes: &[u8]) -> (PagedColumn, PagedColumn) {
        let pager = Arc::new(Pager::open_or_create(temp_file(tag), 256, 64).unwrap());
        let raw = append_row_bytes(&pager, dt, rows, bytes).unwrap();
        let packed =
            append_row_bytes_encoded(&pager, dt, rows, bytes, &EncodingPolicy::default()).unwrap();
        assert!(packed.is_packed(), "data should have packed");
        assert!(packed.page_count * 2 <= raw.page_count, "≥2x page shrink");
        assert!(packed.payload_bytes < raw.payload_bytes);
        (
            PagedColumn::new(Arc::clone(&pager), raw).unwrap(),
            PagedColumn::new(pager, packed).unwrap(),
        )
    }

    #[test]
    fn packed_rle_column_reads_identically_and_skips_runs() {
        let values: Vec<i64> = (0..4000).map(|i| (i / 100) % 4 - 2).collect();
        let (raw, packed) = packed_pair("packed-rle", DataType::Int64, 4000, &i64_bytes(&values));
        assert_reads_match(&raw, &packed, 4000);
        let exact: i128 = values.iter().map(|&v| v as i128).sum();
        let stats = packed.segment_range_stats(RowRange::new(0, 4000)).unwrap();
        assert_eq!(stats.sum, SegmentSum::Int(exact));
        assert!(packed.pager.encoding_stats().run_skips() > 0);
        assert!(packed.pager.encoding_stats().rle_pages() > 0);
        assert!(packed.pager.encoding_stats().bytes_saved() > 0);
    }

    #[test]
    fn packed_dict_column_reads_identically() {
        // Pseudo-random low-cardinality values: no long runs, 13 distinct.
        let values: Vec<i64> = (0..4000i64).map(|i| (i * 2654435761 % 13) - 6).collect();
        let (raw, packed) = packed_pair("packed-dict", DataType::Int64, 4000, &i64_bytes(&values));
        assert_reads_match(&raw, &packed, 4000);
        assert!(packed.pager.encoding_stats().dict_pages() > 0);
    }

    #[test]
    fn packed_float_column_preserves_fold_order() {
        let values: Vec<f64> = (0..4000)
            .map(|i| ((i / 50) % 7) as f64 * 0.1 - 0.3)
            .collect();
        let (raw, packed) =
            packed_pair("packed-float", DataType::Float64, 4000, &f64_bytes(&values));
        assert_reads_match(&raw, &packed, 4000);
    }

    #[test]
    fn incompressible_data_stays_raw_under_encoding() {
        let values: Vec<i64> = (0..4000).map(|i| i * 2654435761 + 17).collect();
        let pager = Arc::new(Pager::open_or_create(temp_file("stays-raw"), 256, 64).unwrap());
        let extent = append_row_bytes_encoded(
            &pager,
            DataType::Int64,
            4000,
            &i64_bytes(&values),
            &EncodingPolicy::default(),
        )
        .unwrap();
        assert!(!extent.is_packed());
        assert_eq!(extent.payload_bytes, 4000 * 8);
        assert_eq!(pager.encoding_stats().bytes_saved(), 0);
        let col = PagedColumn::new(pager, extent).unwrap();
        assert_eq!(col.value_at(RowId(7)).unwrap(), Value::Int(values[7]));
    }

    #[test]
    fn default_page_size_is_sane() {
        const { assert!(DEFAULT_PAGE_SIZE >= MIN_PAGE_SIZE) };
        assert_eq!(rows_per_page(DEFAULT_PAGE_SIZE, 8), 1021);
    }
}
