//! The pager: a single append-only page file plus a bounded buffer pool.
//!
//! A persistent catalog directory stores all column data in one page file
//! (`pages.dat`). Pages are never overwritten once referenced by a published
//! manifest — writers only append — so a crash mid-persist leaves every
//! previously published epoch intact and the tail garbage is simply ignored
//! (see `crate::persist` for the manifest protocol built on top).
//!
//! Reads go through a [`Pager`]: a small buffer pool of verified page
//! payloads with second-chance (CLOCK) eviction. The pool is the knob that
//! lets a catalog larger than RAM stream under exploration — a touched region
//! faults its pages in, cold regions get evicted, and memory stays bounded by
//! `pool_pages * page_size` no matter how large the page file is.
//!
//! [`PagedColumn`] is the reader the in-memory [`Column`](crate::column)
//! wraps after a catalog is reopened from disk: same accessors, same value
//! encoding, same fold order — results are bit-identical to the in-memory
//! column it was persisted from — but rows fault through the pool on first
//! touch instead of living in a `Vec`.

use crate::page::{
    encode_page, payload_capacity, rows_per_page, verify_page, MIN_PAGE_SIZE, PAGE_HEADER_BYTES,
};
use crate::segment::{SegmentStats, SegmentSum};
use dbtouch_obs::{MetricSource, MetricValue, Telemetry, TraceEventKind};
use dbtouch_types::{DataType, DbTouchError, Result, RowId, RowRange, Value};
use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Map an `std::io::Error` into the workspace error type.
pub(crate) fn io_err(op: &str, e: std::io::Error) -> DbTouchError {
    DbTouchError::Io(format!("{op}: {e}"))
}

/// A contiguous run of pages holding one column's rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnExtent {
    /// First page id of the run.
    pub start_page: u64,
    /// Number of pages in the run.
    pub page_count: u64,
    /// Number of rows stored.
    pub rows: u64,
    /// Element type (fixes the row width and therefore the page geometry).
    pub dt: DataType,
}

/// Counters accumulated by a [`Pager`] since it was opened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagerStats {
    /// Page reads served from the buffer pool.
    pub pool_hits: u64,
    /// Page reads that faulted from disk.
    pub faults: u64,
    /// Pages evicted to respect the pool capacity.
    pub evictions: u64,
}

struct PoolEntry {
    payload: Arc<Vec<u8>>,
    /// Second-chance bit: set on every hit, cleared once by the clock hand
    /// before the entry becomes an eviction candidate.
    referenced: bool,
}

struct Pool {
    capacity: usize,
    map: HashMap<u64, PoolEntry>,
    /// Clock order: every resident page id appears exactly once.
    queue: VecDeque<u64>,
    evictions: u64,
}

impl Pool {
    fn evict_to_capacity(&mut self) {
        while self.map.len() >= self.capacity {
            let Some(id) = self.queue.pop_front() else {
                return;
            };
            let Some(entry) = self.map.get_mut(&id) else {
                continue;
            };
            if entry.referenced {
                entry.referenced = false;
                self.queue.push_back(id);
            } else {
                self.map.remove(&id);
                self.evictions += 1;
            }
        }
    }
}

/// One page file plus its buffer pool. Shared (via `Arc`) by every paged
/// column of a reopened catalog, so the pool bound is per-catalog, not
/// per-column.
pub struct Pager {
    path: PathBuf,
    page_size: usize,
    file: Mutex<File>,
    pool: Mutex<Pool>,
    /// Pages currently in the file (committed or not); the id source for
    /// appends.
    len_pages: AtomicU64,
    pool_hits: AtomicU64,
    faults: AtomicU64,
    /// Telemetry hub, attached once after the owning catalog assembles its
    /// hub. Faults emit [`TraceEventKind::PageFault`] events attributed to
    /// whatever gesture trace the faulting thread is running.
    telemetry: OnceLock<Arc<Telemetry>>,
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pager")
            .field("path", &self.path)
            .field("page_size", &self.page_size)
            .field("len_pages", &self.len_pages.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Pager {
    /// Open (or create) a page file with a pool of `pool_pages` pages.
    pub fn open_or_create(
        path: impl AsRef<Path>,
        page_size: usize,
        pool_pages: usize,
    ) -> Result<Pager> {
        if page_size < MIN_PAGE_SIZE {
            return Err(DbTouchError::InvalidConfig(format!(
                "page_size must be at least {MIN_PAGE_SIZE} bytes"
            )));
        }
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err("open page file", e))?;
        let len = file
            .metadata()
            .map_err(|e| io_err("stat page file", e))?
            .len();
        Ok(Pager {
            path,
            page_size,
            file: Mutex::new(file),
            pool: Mutex::new(Pool {
                capacity: pool_pages.max(1),
                map: HashMap::new(),
                queue: VecDeque::new(),
                evictions: 0,
            }),
            len_pages: AtomicU64::new(len / page_size as u64),
            pool_hits: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            telemetry: OnceLock::new(),
        })
    }

    /// Attach a telemetry hub so page faults show up in the event trace.
    /// First attachment wins; later calls are ignored (a pager belongs to one
    /// catalog).
    pub fn attach_telemetry(&self, hub: Arc<Telemetry>) {
        let _ = self.telemetry.set(hub);
    }

    /// The page size this file was opened with.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Pages currently in the file (including any uncommitted tail).
    pub fn len_pages(&self) -> u64 {
        self.len_pages.load(Ordering::Acquire)
    }

    /// Buffer-pool capacity in pages.
    pub fn pool_pages(&self) -> usize {
        self.pool.lock().unwrap_or_else(|e| e.into_inner()).capacity
    }

    /// Pool hit/fault/eviction counters since open.
    pub fn stats(&self) -> PagerStats {
        let evictions = {
            let pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
            pool.evictions
        };
        PagerStats {
            pool_hits: self.pool_hits.load(Ordering::Relaxed),
            faults: self.faults.load(Ordering::Relaxed),
            evictions,
        }
    }

    fn read_image(&self, page_id: u64) -> Result<Vec<u8>> {
        let mut image = vec![0u8; self.page_size];
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        file.seek(SeekFrom::Start(page_id * self.page_size as u64))
            .map_err(|e| io_err("seek page", e))?;
        file.read_exact(&mut image).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                DbTouchError::Corrupt(format!(
                    "page {page_id} lies beyond the end of the page file"
                ))
            } else {
                io_err("read page", e)
            }
        })?;
        Ok(image)
    }

    /// Read one page's payload, faulting it into the buffer pool if absent.
    /// The payload checksum is verified on every fault; corruption surfaces
    /// as [`DbTouchError::Corrupt`], never a panic or a silent wrong answer.
    pub fn read_page(self: &Arc<Self>, page_id: u64) -> Result<Arc<Vec<u8>>> {
        {
            let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(entry) = pool.map.get_mut(&page_id) {
                entry.referenced = true;
                self.pool_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&entry.payload));
            }
        }
        // Fault outside the pool lock so concurrent sessions faulting other
        // pages are not serialized behind this read. Two sessions faulting
        // the same page concurrently both read it; one insert wins.
        let image = self.read_image(page_id)?;
        let payload = Arc::new(verify_page(&image, page_id, self.page_size)?.to_vec());
        self.faults.fetch_add(1, Ordering::Relaxed);
        if let Some(hub) = self.telemetry.get() {
            hub.event(TraceEventKind::PageFault, page_id);
        }
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(entry) = pool.map.get_mut(&page_id) {
            entry.referenced = true;
            return Ok(Arc::clone(&entry.payload));
        }
        pool.evict_to_capacity();
        pool.map.insert(
            page_id,
            PoolEntry {
                payload: Arc::clone(&payload),
                referenced: true,
            },
        );
        pool.queue.push_back(page_id);
        Ok(payload)
    }

    /// Append page payloads, returning the id of the first page written. The
    /// caller is responsible for serializing appends (the persist path holds
    /// a store-wide lock) and for [`sync`](Pager::sync)ing before publishing
    /// a manifest that references the new pages.
    pub fn append_payloads<'a>(&self, payloads: impl IntoIterator<Item = &'a [u8]>) -> Result<u64> {
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        let first = self.len_pages.load(Ordering::Acquire);
        file.seek(SeekFrom::Start(first * self.page_size as u64))
            .map_err(|e| io_err("seek append", e))?;
        let mut next = first;
        for payload in payloads {
            let image = encode_page(next, payload, self.page_size)?;
            file.write_all(&image)
                .map_err(|e| io_err("append page", e))?;
            next += 1;
        }
        self.len_pages.store(next, Ordering::Release);
        Ok(first)
    }

    /// Flush appended pages to stable storage.
    pub fn sync(&self) -> Result<()> {
        let file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        file.sync_data().map_err(|e| io_err("sync page file", e))
    }

    /// Stream-verify every page of an extent without populating the pool:
    /// full payload checksums, memory O(one page) regardless of extent size.
    /// This is the exhaustive check (`fsck`); opening a catalog uses the
    /// cheaper [`verify_extent_headers`](Pager::verify_extent_headers) and
    /// leaves payload verification to fault time.
    pub fn verify_extent(&self, extent: &ColumnExtent) -> Result<()> {
        for page_id in extent.start_page..extent.start_page + extent.page_count {
            let image = self.read_image(page_id)?;
            verify_page(&image, page_id, self.page_size)?;
        }
        Ok(())
    }

    /// Verify only the headers of an extent's pages: magic, stored page id
    /// and payload-length sanity. Reads `PAGE_HEADER_BYTES` per page instead
    /// of whole pages, so open-time validation of a large catalog stays
    /// cheap; payload checksums are still verified lazily on every fault.
    pub fn verify_extent_headers(&self, extent: &ColumnExtent) -> Result<()> {
        let mut header = [0u8; PAGE_HEADER_BYTES];
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        for page_id in extent.start_page..extent.start_page + extent.page_count {
            file.seek(SeekFrom::Start(page_id * self.page_size as u64))
                .map_err(|e| io_err("seek page header", e))?;
            file.read_exact(&mut header).map_err(|e| {
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    DbTouchError::Corrupt(format!(
                        "page {page_id} lies beyond the end of the page file"
                    ))
                } else {
                    io_err("read page header", e)
                }
            })?;
            let decoded = crate::page::PageHeader::decode(&header, self.page_size)?;
            if decoded.page_id != page_id {
                return Err(DbTouchError::Corrupt(format!(
                    "page id mismatch: expected {page_id}, found {}",
                    decoded.page_id
                )));
            }
        }
        Ok(())
    }
}

impl MetricSource for Pager {
    fn source_name(&self) -> &'static str {
        "pager"
    }

    fn collect(&self) -> Vec<(&'static str, MetricValue)> {
        let stats = self.stats();
        let resident = {
            let pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
            pool.map.len()
        };
        vec![
            ("pool_hits", MetricValue::Counter(stats.pool_hits)),
            ("faults", MetricValue::Counter(stats.faults)),
            ("evictions", MetricValue::Counter(stats.evictions)),
            ("resident_pages", MetricValue::Gauge(resident as u64)),
            ("pool_pages", MetricValue::Gauge(self.pool_pages() as u64)),
            ("len_pages", MetricValue::Gauge(self.len_pages())),
        ]
    }
}

/// A column whose rows live in a contiguous page extent and fault through a
/// shared [`Pager`] on first touch.
#[derive(Clone)]
pub struct PagedColumn {
    pager: Arc<Pager>,
    extent: ColumnExtent,
    /// Rows per page, precomputed from the page size and row width.
    rows_per_page: u64,
}

impl std::fmt::Debug for PagedColumn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedColumn")
            .field("extent", &self.extent)
            .finish_non_exhaustive()
    }
}

impl PagedColumn {
    /// Wrap an extent of `pager` as a readable column. Validates the page
    /// geometry implied by the extent's type and row count.
    pub fn new(pager: Arc<Pager>, extent: ColumnExtent) -> Result<PagedColumn> {
        let width = extent.dt.width_bytes();
        let rpp = rows_per_page(pager.page_size(), width);
        if extent.rows > 0 {
            if rpp == 0 {
                return Err(DbTouchError::InvalidConfig(format!(
                    "row width {width} does not fit the {}-byte page payload",
                    payload_capacity(pager.page_size())
                )));
            }
            let needed = extent.rows.div_ceil(rpp);
            if needed != extent.page_count {
                return Err(DbTouchError::Corrupt(format!(
                    "extent claims {} pages for {} rows ({} expected)",
                    extent.page_count, extent.rows, needed
                )));
            }
        } else if extent.page_count != 0 {
            return Err(DbTouchError::Corrupt(
                "extent claims pages for an empty column".into(),
            ));
        }
        Ok(PagedColumn {
            pager,
            extent,
            rows_per_page: rpp,
        })
    }

    /// The extent this column reads.
    pub fn extent(&self) -> ColumnExtent {
        self.extent
    }

    /// Element type.
    pub fn data_type(&self) -> DataType {
        self.extent.dt
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.extent.rows
    }

    fn check_row(&self, row: RowId) -> Result<()> {
        if row.0 >= self.extent.rows {
            return Err(DbTouchError::RowOutOfBounds {
                row: row.0,
                len: self.extent.rows,
            });
        }
        Ok(())
    }

    /// Fault the page containing `row` and return `(payload, byte offset of
    /// the row within it)`.
    fn page_for_row(&self, row: u64) -> Result<(Arc<Vec<u8>>, usize)> {
        let width = self.extent.dt.width_bytes();
        let page_idx = row / self.rows_per_page;
        let offset = (row % self.rows_per_page) as usize * width;
        let payload = self.pager.read_page(self.extent.start_page + page_idx)?;
        if offset + width > payload.len() {
            return Err(DbTouchError::Corrupt(format!(
                "row {row} points past the payload of page {}",
                self.extent.start_page + page_idx
            )));
        }
        Ok((payload, offset))
    }

    /// The value at `row`, decoded exactly as the in-memory column (and the
    /// row-major matrix) decode it.
    pub fn value_at(&self, row: RowId) -> Result<Value> {
        self.check_row(row)?;
        let width = self.extent.dt.width_bytes();
        let (payload, offset) = self.page_for_row(row.0)?;
        Value::decode(&payload[offset..offset + width], self.extent.dt)
    }

    /// Fast numeric accessor mirroring `Column::f64_at`.
    pub fn f64_at(&self, row: RowId) -> Result<f64> {
        self.check_row(row)?;
        match self.extent.dt {
            DataType::Int64 | DataType::TimestampMillis => {
                let (payload, offset) = self.page_for_row(row.0)?;
                Ok(i64::from_le_bytes(payload[offset..offset + 8].try_into().unwrap()) as f64)
            }
            DataType::Float64 => {
                let (payload, offset) = self.page_for_row(row.0)?;
                Ok(f64::from_le_bytes(
                    payload[offset..offset + 8].try_into().unwrap(),
                ))
            }
            dt => Err(DbTouchError::TypeMismatch {
                expected: "numeric".into(),
                found: dt.name(),
            }),
        }
    }

    /// `(count, sum, min, max)` over `range`, folding rows in ascending order
    /// — the identical accumulation order (and therefore identical floating
    /// point result) as the in-memory column's `numeric_range_stats`.
    pub fn numeric_range_stats(
        &self,
        range: RowRange,
    ) -> Result<(u64, f64, Option<f64>, Option<f64>)> {
        if !self.extent.dt.is_numeric() {
            return Err(DbTouchError::TypeMismatch {
                expected: "numeric".into(),
                found: self.extent.dt.name(),
            });
        }
        let range = range.clamp_to(self.extent.rows);
        let mut count = 0u64;
        let mut sum = 0.0;
        let mut min: Option<f64> = None;
        let mut max: Option<f64> = None;
        let mut row = range.start;
        while row < range.end {
            let (payload, offset) = self.page_for_row(row)?;
            // Rows of this page inside the range.
            let page_remaining = self.rows_per_page - (row % self.rows_per_page);
            let take = page_remaining.min(range.end - row);
            let integer = self.extent.dt.is_integer();
            for i in 0..take as usize {
                let at = offset + i * 8;
                let bits: [u8; 8] = payload[at..at + 8].try_into().unwrap();
                let x = if integer {
                    i64::from_le_bytes(bits) as f64
                } else {
                    f64::from_le_bytes(bits)
                };
                count += 1;
                sum += x;
                min = Some(min.map_or(x, |m| m.min(x)));
                max = Some(max.map_or(x, |m| m.max(x)));
            }
            row += take;
        }
        Ok((count, sum, min, max))
    }

    /// [`SegmentStats`] over `range` — the same page-at-a-time fold as
    /// `numeric_range_stats`, but integer columns accumulate their sum in
    /// exact `i128` so segment partials merge associatively.
    pub fn segment_range_stats(&self, range: RowRange) -> Result<SegmentStats> {
        if !self.extent.dt.is_numeric() {
            return Err(DbTouchError::TypeMismatch {
                expected: "numeric".into(),
                found: self.extent.dt.name(),
            });
        }
        let range = range.clamp_to(self.extent.rows);
        let integer = self.extent.dt.is_integer();
        let mut stats = SegmentStats::empty(integer);
        let mut fsum = 0.0f64;
        let mut isum = 0i128;
        let mut row = range.start;
        while row < range.end {
            let (payload, offset) = self.page_for_row(row)?;
            // Rows of this page inside the range.
            let page_remaining = self.rows_per_page - (row % self.rows_per_page);
            let take = page_remaining.min(range.end - row);
            for i in 0..take as usize {
                let at = offset + i * 8;
                let bits: [u8; 8] = payload[at..at + 8].try_into().unwrap();
                let x = if integer {
                    let v = i64::from_le_bytes(bits);
                    isum += v as i128;
                    v as f64
                } else {
                    let v = f64::from_le_bytes(bits);
                    fsum += v;
                    v
                };
                stats.count += 1;
                stats.min = Some(stats.min.map_or(x, |m| m.min(x)));
                stats.max = Some(stats.max.map_or(x, |m| m.max(x)));
            }
            row += take;
        }
        stats.sum = if integer {
            SegmentSum::Int(isum)
        } else {
            SegmentSum::Float(fsum)
        };
        Ok(stats)
    }

    /// The raw payload of every page of the extent, in order (used when a
    /// paged column is re-persisted into a different store).
    pub fn page_payloads(&self) -> impl Iterator<Item = Result<Arc<Vec<u8>>>> + '_ {
        (self.extent.start_page..self.extent.start_page + self.extent.page_count)
            .map(move |id| self.pager.read_page(id))
    }
}

/// Split a column's raw row bytes into page payloads and append them,
/// returning the extent. `rows_bytes` must be `rows * width` long.
pub fn append_row_bytes(
    pager: &Pager,
    dt: DataType,
    rows: u64,
    row_bytes: &[u8],
) -> Result<ColumnExtent> {
    let width = dt.width_bytes();
    if row_bytes.len() as u64 != rows * width as u64 {
        return Err(DbTouchError::Internal(format!(
            "append_row_bytes: {} bytes for {rows} rows of width {width}",
            row_bytes.len()
        )));
    }
    if rows == 0 {
        return Ok(ColumnExtent {
            start_page: 0,
            page_count: 0,
            rows: 0,
            dt,
        });
    }
    let rpp = rows_per_page(pager.page_size(), width);
    if rpp == 0 {
        return Err(DbTouchError::InvalidConfig(format!(
            "row width {width} does not fit the {}-byte page payload",
            payload_capacity(pager.page_size())
        )));
    }
    let chunk = rpp as usize * width;
    let start_page = pager.append_payloads(row_bytes.chunks(chunk))?;
    Ok(ColumnExtent {
        start_page,
        page_count: rows.div_ceil(rpp),
        rows,
        dt,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::DEFAULT_PAGE_SIZE;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicU32;

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn temp_file(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dbtouch-pager-{}-{}-{tag}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("pages.dat")
    }

    fn i64_bytes(values: &[i64]) -> Vec<u8> {
        values.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn append_and_read_round_trip() {
        let path = temp_file("round-trip");
        let pager = Arc::new(Pager::open_or_create(&path, 256, 4).unwrap());
        let values: Vec<i64> = (0..1000).collect();
        let extent = append_row_bytes(&pager, DataType::Int64, 1000, &i64_bytes(&values)).unwrap();
        assert!(extent.page_count > 1);
        let col = PagedColumn::new(Arc::clone(&pager), extent).unwrap();
        assert_eq!(col.rows(), 1000);
        assert_eq!(col.value_at(RowId(0)).unwrap(), Value::Int(0));
        assert_eq!(col.value_at(RowId(999)).unwrap(), Value::Int(999));
        assert_eq!(col.f64_at(RowId(500)).unwrap(), 500.0);
        assert!(col.value_at(RowId(1000)).is_err());
        let (count, sum, min, max) = col.numeric_range_stats(RowRange::new(10, 20)).unwrap();
        assert_eq!((count, sum), (10, (10..20).sum::<i64>() as f64));
        assert_eq!((min, max), (Some(10.0), Some(19.0)));
    }

    #[test]
    fn segment_stats_match_numeric_stats_across_pages() {
        let path = temp_file("segment-stats");
        let pager = Arc::new(Pager::open_or_create(&path, 256, 4).unwrap());
        let values: Vec<i64> = (0..1000).map(|v| v * 3 - 500).collect();
        let extent = append_row_bytes(&pager, DataType::Int64, 1000, &i64_bytes(&values)).unwrap();
        let col = PagedColumn::new(Arc::clone(&pager), extent).unwrap();
        for (start, end) in [(0, 1000), (10, 20), (17, 993), (500, 500)] {
            let seg = col.segment_range_stats(RowRange::new(start, end)).unwrap();
            let (count, sum, min, max) =
                col.numeric_range_stats(RowRange::new(start, end)).unwrap();
            assert_eq!(seg.as_tuple(), (count, sum, min, max));
        }
        let seg = col.segment_range_stats(RowRange::new(0, 1000)).unwrap();
        let exact: i128 = values.iter().map(|&v| v as i128).sum();
        assert_eq!(seg.sum, SegmentSum::Int(exact));
    }

    #[test]
    fn pool_stays_bounded_and_counts_evictions() {
        let path = temp_file("bounded");
        let pager = Arc::new(Pager::open_or_create(&path, 256, 3).unwrap());
        let values: Vec<i64> = (0..1000).collect();
        let extent = append_row_bytes(&pager, DataType::Int64, 1000, &i64_bytes(&values)).unwrap();
        let col = PagedColumn::new(Arc::clone(&pager), extent).unwrap();
        // Stream the whole column twice through a 3-page pool.
        for _ in 0..2 {
            let (count, ..) = col.numeric_range_stats(RowRange::new(0, 1000)).unwrap();
            assert_eq!(count, 1000);
        }
        let stats = pager.stats();
        assert!(stats.evictions > 0, "a 3-page pool must evict: {stats:?}");
        let resident = {
            let pool = pager.pool.lock().unwrap();
            pool.map.len()
        };
        assert!(resident <= 3, "pool exceeded capacity: {resident}");
    }

    #[test]
    fn repeated_reads_hit_the_pool() {
        let path = temp_file("hits");
        let pager = Arc::new(Pager::open_or_create(&path, 256, 64).unwrap());
        let extent = append_row_bytes(
            &pager,
            DataType::Int64,
            100,
            &i64_bytes(&(0..100).collect::<Vec<_>>()),
        )
        .unwrap();
        let col = PagedColumn::new(Arc::clone(&pager), extent).unwrap();
        for _ in 0..10 {
            col.value_at(RowId(5)).unwrap();
        }
        let stats = pager.stats();
        assert_eq!(stats.faults, 1);
        assert!(stats.pool_hits >= 9);
    }

    #[test]
    fn corruption_surfaces_as_error_not_panic() {
        let path = temp_file("corrupt");
        let pager = Arc::new(Pager::open_or_create(&path, 256, 4).unwrap());
        let extent = append_row_bytes(
            &pager,
            DataType::Int64,
            100,
            &i64_bytes(&(0..100).collect::<Vec<_>>()),
        )
        .unwrap();
        pager.sync().unwrap();
        drop(pager);
        // Flip a payload byte of the second page.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[256 + PAGE_HEADER_BYTES + 4] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let pager = Arc::new(Pager::open_or_create(&path, 256, 4).unwrap());
        let col = PagedColumn::new(Arc::clone(&pager), extent).unwrap();
        // First page still reads fine; the corrupted one errors.
        assert!(col.value_at(RowId(0)).is_ok());
        let first_bad = RowId(col.rows_per_page);
        assert!(matches!(
            col.value_at(first_bad),
            Err(DbTouchError::Corrupt(_))
        ));
        assert!(pager.verify_extent(&extent).is_err());
    }

    #[test]
    fn reads_beyond_eof_are_corrupt_errors() {
        let path = temp_file("eof");
        let pager = Arc::new(Pager::open_or_create(&path, 256, 4).unwrap());
        let bogus = ColumnExtent {
            start_page: 10,
            page_count: 1,
            rows: 4,
            dt: DataType::Int64,
        };
        assert!(matches!(
            pager.verify_extent(&bogus),
            Err(DbTouchError::Corrupt(_))
        ));
        let col = PagedColumn::new(Arc::clone(&pager), bogus).unwrap();
        assert!(col.value_at(RowId(0)).is_err());
    }

    #[test]
    fn empty_and_oversized_extents_validated() {
        let path = temp_file("validate");
        let pager = Arc::new(Pager::open_or_create(&path, 256, 4).unwrap());
        let empty = append_row_bytes(&pager, DataType::Int64, 0, &[]).unwrap();
        assert_eq!(empty.page_count, 0);
        let col = PagedColumn::new(Arc::clone(&pager), empty).unwrap();
        assert_eq!(col.rows(), 0);
        assert!(col.value_at(RowId(0)).is_err());
        // A fixed string wider than the payload cannot be paged.
        assert!(append_row_bytes(&pager, DataType::FixedStr(300), 1, &[0u8; 300]).is_err());
        // Page-count/row mismatches are rejected.
        let lying = ColumnExtent {
            start_page: 0,
            page_count: 99,
            rows: 4,
            dt: DataType::Int64,
        };
        assert!(PagedColumn::new(Arc::clone(&pager), lying).is_err());
        assert!(Pager::open_or_create(path.with_extension("tiny"), 8, 4).is_err());
    }

    #[test]
    fn default_page_size_is_sane() {
        const { assert!(DEFAULT_PAGE_SIZE >= MIN_PAGE_SIZE) };
        assert_eq!(rows_per_page(DEFAULT_PAGE_SIZE, 8), 1021);
    }
}
