//! Dense matrixes: the physical storage behind a data object.
//!
//! "The underlying storage layout used in our current dbTouch is matrixes. Each
//! matrix may contain one or more columns and each column contains fixed-width
//! fields. The matrixes are dense and each matrix is associated with a given
//! data object." (Section 2.6, "Physical Layout".)
//!
//! A [`Matrix`] stores the same logical table either column-major (one dense
//! array per attribute) or row-major (tuples stored back-to-back in a single
//! byte buffer). Both layouts support random access by `(row, column)`, which
//! is all the kernel needs; the layouts differ in locality, and the rotate
//! gesture converts between them (see [`crate::rotation`]).

use crate::column::Column;
use crate::layout::Layout;
use crate::table::Table;
use dbtouch_types::{DataType, DbTouchError, Result, RowId, RowRange, Value};
use serde::{Deserialize, Serialize};

/// Row-major payload: fixed-width tuples stored back-to-back.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct RowMajorData {
    /// Byte offset of each column within a tuple.
    offsets: Vec<usize>,
    /// Width of one tuple in bytes.
    row_width: usize,
    /// The tuple bytes, `row_width * row_count` long.
    bytes: Vec<u8>,
}

/// The matrix payload in one of the two layouts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum MatrixData {
    Columns(Vec<Column>),
    Rows(RowMajorData),
}

/// A dense, fixed-width matrix associated with one data object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    name: String,
    schema: Vec<(String, DataType)>,
    row_count: u64,
    data: MatrixData,
}

impl Matrix {
    /// Build a column-major matrix from a table (no copying of column data
    /// beyond moving the vectors).
    pub fn from_table(table: Table) -> Matrix {
        let schema = table.schema();
        let row_count = table.row_count();
        let name = table.name().to_string();
        let columns = table.columns().to_vec();
        Matrix {
            name,
            schema,
            row_count,
            data: MatrixData::Columns(columns),
        }
    }

    /// Build a single-column, column-major matrix.
    pub fn from_column(column: Column) -> Matrix {
        let schema = vec![(column.name().to_string(), column.data_type())];
        let row_count = column.len();
        Matrix {
            name: column.name().to_string(),
            schema,
            row_count,
            data: MatrixData::Columns(vec![column]),
        }
    }

    /// Build a matrix in the requested layout from a table.
    pub fn from_table_with_layout(table: Table, layout: Layout) -> Result<Matrix> {
        let m = Matrix::from_table(table);
        match layout {
            Layout::ColumnMajor => Ok(m),
            Layout::RowMajor => m.converted_to(Layout::RowMajor),
        }
    }

    /// Object name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the matrix.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Current physical layout.
    pub fn layout(&self) -> Layout {
        match &self.data {
            MatrixData::Columns(_) => Layout::ColumnMajor,
            MatrixData::Rows(_) => Layout::RowMajor,
        }
    }

    /// Schema as `(name, type)` pairs.
    pub fn schema(&self) -> &[(String, DataType)] {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> u64 {
        self.row_count
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.schema.len()
    }

    /// Total payload size in bytes.
    pub fn byte_size(&self) -> u64 {
        match &self.data {
            MatrixData::Columns(cols) => cols.iter().map(|c| c.byte_size()).sum(),
            MatrixData::Rows(r) => r.bytes.len() as u64,
        }
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.schema
            .iter()
            .position(|(n, _)| n == name)
            .ok_or_else(|| DbTouchError::NotFound(format!("column {name}")))
    }

    /// The value at `(row, column_index)` regardless of layout.
    pub fn get(&self, row: RowId, column: usize) -> Result<Value> {
        if column >= self.schema.len() {
            return Err(DbTouchError::NotFound(format!("column index {column}")));
        }
        if row.0 >= self.row_count {
            return Err(DbTouchError::RowOutOfBounds {
                row: row.0,
                len: self.row_count,
            });
        }
        match &self.data {
            MatrixData::Columns(cols) => cols[column].get(row),
            MatrixData::Rows(r) => {
                let dt = self.schema[column].1;
                let start = row.index() * r.row_width + r.offsets[column];
                Value::decode(&r.bytes[start..start + dt.width_bytes()], dt)
            }
        }
    }

    /// Materialize a full tuple.
    pub fn get_row(&self, row: RowId) -> Result<Vec<Value>> {
        (0..self.column_count()).map(|c| self.get(row, c)).collect()
    }

    /// Direct access to the columns when the layout is column-major.
    pub fn columns(&self) -> Option<&[Column]> {
        match &self.data {
            MatrixData::Columns(cols) => Some(cols),
            MatrixData::Rows(_) => None,
        }
    }

    /// A borrowed column by name when the layout is column-major.
    pub fn column(&self, name: &str) -> Result<&Column> {
        let idx = self.column_index(name)?;
        match &self.data {
            MatrixData::Columns(cols) => Ok(&cols[idx]),
            MatrixData::Rows(_) => Err(DbTouchError::InvalidPlan(format!(
                "column {name} requested from a row-major matrix; rotate it first"
            ))),
        }
    }

    /// Numeric statistics `(count, sum, min, max)` over `range` of one column,
    /// computed in whichever layout the matrix currently has.
    pub fn numeric_range_stats(
        &self,
        column: usize,
        range: RowRange,
    ) -> Result<(u64, f64, Option<f64>, Option<f64>)> {
        if column >= self.schema.len() {
            return Err(DbTouchError::NotFound(format!("column index {column}")));
        }
        match &self.data {
            MatrixData::Columns(cols) => cols[column].numeric_range_stats(range),
            MatrixData::Rows(_) => {
                let dt = self.schema[column].1;
                if !dt.is_numeric() {
                    return Err(DbTouchError::TypeMismatch {
                        expected: "numeric".into(),
                        found: dt.name(),
                    });
                }
                let range = range.clamp_to(self.row_count);
                let mut count = 0u64;
                let mut sum = 0.0;
                let mut min: Option<f64> = None;
                let mut max: Option<f64> = None;
                for row in range.iter() {
                    let x = self.get(row, column)?.as_f64()?;
                    count += 1;
                    sum += x;
                    min = Some(min.map_or(x, |m| m.min(x)));
                    max = Some(max.map_or(x, |m| m.max(x)));
                }
                Ok((count, sum, min, max))
            }
        }
    }

    /// Eagerly convert the whole matrix to the target layout, returning a new
    /// matrix. Converting to the current layout is a cheap clone.
    pub fn converted_to(&self, layout: Layout) -> Result<Matrix> {
        if layout == self.layout() {
            return Ok(self.clone());
        }
        match layout {
            Layout::RowMajor => self.to_row_major(),
            Layout::ColumnMajor => self.to_column_major(),
        }
    }

    /// Convert a row range to the target layout and return it as a new matrix
    /// (used by incremental rotation, Section 2.8: "Changing the layout can be
    /// done in steps").
    pub fn converted_range(&self, layout: Layout, range: RowRange) -> Result<Matrix> {
        let range = range.clamp_to(self.row_count);
        let partial = self.project_rows(range)?;
        partial.converted_to(layout)
    }

    /// Build a new matrix (same layout) containing only the rows of `range`.
    pub fn project_rows(&self, range: RowRange) -> Result<Matrix> {
        let range = range.clamp_to(self.row_count);
        match &self.data {
            MatrixData::Columns(cols) => {
                let projected: Vec<Column> = cols
                    .iter()
                    .map(|c| c.project_range(range))
                    .collect::<Result<_>>()?;
                Ok(Matrix {
                    name: self.name.clone(),
                    schema: self.schema.clone(),
                    row_count: range.len(),
                    data: MatrixData::Columns(projected),
                })
            }
            MatrixData::Rows(r) => {
                let start = range.start as usize * r.row_width;
                let end = range.end as usize * r.row_width;
                Ok(Matrix {
                    name: self.name.clone(),
                    schema: self.schema.clone(),
                    row_count: range.len(),
                    data: MatrixData::Rows(RowMajorData {
                        offsets: r.offsets.clone(),
                        row_width: r.row_width,
                        bytes: r.bytes[start..end].to_vec(),
                    }),
                })
            }
        }
    }

    /// Append all rows of `other` (same schema, same layout) to this matrix.
    /// Used to assemble incrementally rotated chunks.
    pub fn append(&mut self, other: &Matrix) -> Result<()> {
        if self.schema != other.schema {
            return Err(DbTouchError::InvalidPlan(
                "cannot append matrixes with different schemas".into(),
            ));
        }
        if self.layout() != other.layout() {
            return Err(DbTouchError::InvalidPlan(
                "cannot append matrixes with different layouts".into(),
            ));
        }
        match (&mut self.data, &other.data) {
            (MatrixData::Columns(a), MatrixData::Columns(b)) => {
                for (ca, cb) in a.iter_mut().zip(b.iter()) {
                    for v in cb.iter() {
                        ca.push(v)?;
                    }
                }
            }
            (MatrixData::Rows(a), MatrixData::Rows(b)) => {
                a.bytes.extend_from_slice(&b.bytes);
            }
            _ => unreachable!("layouts checked above"),
        }
        self.row_count += other.row_count;
        Ok(())
    }

    /// An empty matrix with the same schema, in the requested layout.
    pub fn empty_like(&self, layout: Layout) -> Matrix {
        match layout {
            Layout::ColumnMajor => {
                let cols = self
                    .schema
                    .iter()
                    .map(|(n, dt)| Column::empty(n.clone(), *dt))
                    .collect();
                Matrix {
                    name: self.name.clone(),
                    schema: self.schema.clone(),
                    row_count: 0,
                    data: MatrixData::Columns(cols),
                }
            }
            Layout::RowMajor => {
                let (offsets, row_width) = Self::row_offsets(&self.schema);
                Matrix {
                    name: self.name.clone(),
                    schema: self.schema.clone(),
                    row_count: 0,
                    data: MatrixData::Rows(RowMajorData {
                        offsets,
                        row_width,
                        bytes: Vec::new(),
                    }),
                }
            }
        }
    }

    fn row_offsets(schema: &[(String, DataType)]) -> (Vec<usize>, usize) {
        let mut offsets = Vec::with_capacity(schema.len());
        let mut acc = 0usize;
        for (_, dt) in schema {
            offsets.push(acc);
            acc += dt.width_bytes();
        }
        (offsets, acc)
    }

    fn to_row_major(&self) -> Result<Matrix> {
        let (offsets, row_width) = Self::row_offsets(&self.schema);
        let mut bytes = vec![0u8; row_width * self.row_count as usize];
        for row in 0..self.row_count {
            for (c, (_, dt)) in self.schema.iter().enumerate() {
                let v = self.get(RowId(row), c)?;
                let enc = v.encode(*dt)?;
                let start = row as usize * row_width + offsets[c];
                bytes[start..start + enc.len()].copy_from_slice(&enc);
            }
        }
        Ok(Matrix {
            name: self.name.clone(),
            schema: self.schema.clone(),
            row_count: self.row_count,
            data: MatrixData::Rows(RowMajorData {
                offsets,
                row_width,
                bytes,
            }),
        })
    }

    fn to_column_major(&self) -> Result<Matrix> {
        let mut cols: Vec<Column> = self
            .schema
            .iter()
            .map(|(n, dt)| Column::empty(n.clone(), *dt))
            .collect();
        for row in 0..self.row_count {
            for (c, col) in cols.iter_mut().enumerate() {
                col.push(self.get(RowId(row), c)?)?;
            }
        }
        Ok(Matrix {
            name: self.name.clone(),
            schema: self.schema.clone(),
            row_count: self.row_count,
            data: MatrixData::Columns(cols),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_table() -> Table {
        Table::from_columns(
            "t",
            vec![
                Column::from_i64("id", (0..6).collect()),
                Column::from_f64("price", vec![0.5, 1.5, 2.5, 3.5, 4.5, 5.5]),
                Column::from_strings("tag", 4, &["a", "b", "c", "d", "e", "f"]).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn column_major_access() {
        let m = Matrix::from_table(demo_table());
        assert_eq!(m.layout(), Layout::ColumnMajor);
        assert_eq!(m.row_count(), 6);
        assert_eq!(m.column_count(), 3);
        assert_eq!(m.get(RowId(2), 0).unwrap(), Value::Int(2));
        assert_eq!(m.get(RowId(2), 1).unwrap(), Value::Float(2.5));
        assert_eq!(m.get(RowId(2), 2).unwrap(), Value::Str("c".into()));
        assert!(m.get(RowId(6), 0).is_err());
        assert!(m.get(RowId(0), 5).is_err());
    }

    #[test]
    fn row_major_round_trip() {
        let cm = Matrix::from_table(demo_table());
        let rm = cm.converted_to(Layout::RowMajor).unwrap();
        assert_eq!(rm.layout(), Layout::RowMajor);
        assert_eq!(rm.row_count(), 6);
        for row in 0..6 {
            assert_eq!(
                rm.get_row(RowId(row)).unwrap(),
                cm.get_row(RowId(row)).unwrap()
            );
        }
        let back = rm.converted_to(Layout::ColumnMajor).unwrap();
        assert_eq!(back.layout(), Layout::ColumnMajor);
        for row in 0..6 {
            assert_eq!(
                back.get_row(RowId(row)).unwrap(),
                cm.get_row(RowId(row)).unwrap()
            );
        }
    }

    #[test]
    fn converted_to_same_layout_is_identity() {
        let m = Matrix::from_table(demo_table());
        let same = m.converted_to(Layout::ColumnMajor).unwrap();
        assert_eq!(same, m);
    }

    #[test]
    fn from_column_single_attribute() {
        let m = Matrix::from_column(Column::from_i64("x", vec![7, 8, 9]));
        assert_eq!(m.column_count(), 1);
        assert_eq!(m.get(RowId(1), 0).unwrap(), Value::Int(8));
        assert_eq!(m.name(), "x");
    }

    #[test]
    fn byte_size_consistent_across_layouts() {
        let cm = Matrix::from_table(demo_table());
        let rm = cm.converted_to(Layout::RowMajor).unwrap();
        assert_eq!(cm.byte_size(), rm.byte_size());
        assert_eq!(cm.byte_size(), 6 * (8 + 8 + 4));
    }

    #[test]
    fn numeric_stats_match_across_layouts() {
        let cm = Matrix::from_table(demo_table());
        let rm = cm.converted_to(Layout::RowMajor).unwrap();
        let a = cm.numeric_range_stats(1, RowRange::new(1, 5)).unwrap();
        let b = rm.numeric_range_stats(1, RowRange::new(1, 5)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.0, 4);
        assert!((a.1 - (1.5 + 2.5 + 3.5 + 4.5)).abs() < 1e-12);
        assert!(cm.numeric_range_stats(2, RowRange::new(0, 2)).is_err());
        assert!(rm.numeric_range_stats(2, RowRange::new(0, 2)).is_err());
    }

    #[test]
    fn project_rows_both_layouts() {
        let cm = Matrix::from_table(demo_table());
        let p = cm.project_rows(RowRange::new(2, 4)).unwrap();
        assert_eq!(p.row_count(), 2);
        assert_eq!(p.get(RowId(0), 0).unwrap(), Value::Int(2));
        let rm = cm.converted_to(Layout::RowMajor).unwrap();
        let pr = rm.project_rows(RowRange::new(2, 4)).unwrap();
        assert_eq!(pr.row_count(), 2);
        assert_eq!(pr.get(RowId(1), 2).unwrap(), Value::Str("d".into()));
    }

    #[test]
    fn append_and_empty_like() {
        let cm = Matrix::from_table(demo_table());
        let mut acc = cm.empty_like(Layout::ColumnMajor);
        assert_eq!(acc.row_count(), 0);
        acc.append(&cm.project_rows(RowRange::new(0, 3)).unwrap())
            .unwrap();
        acc.append(&cm.project_rows(RowRange::new(3, 6)).unwrap())
            .unwrap();
        assert_eq!(acc.row_count(), 6);
        for row in 0..6 {
            assert_eq!(
                acc.get_row(RowId(row)).unwrap(),
                cm.get_row(RowId(row)).unwrap()
            );
        }

        let rm = cm.converted_to(Layout::RowMajor).unwrap();
        let mut racc = cm.empty_like(Layout::RowMajor);
        racc.append(&rm.project_rows(RowRange::new(0, 6)).unwrap())
            .unwrap();
        assert_eq!(racc.row_count(), 6);
        assert_eq!(
            racc.get_row(RowId(5)).unwrap(),
            cm.get_row(RowId(5)).unwrap()
        );

        // mismatched layout append fails
        assert!(acc.append(&rm).is_err());
    }

    #[test]
    fn converted_range_partial_rotation() {
        let cm = Matrix::from_table(demo_table());
        let chunk = cm
            .converted_range(Layout::RowMajor, RowRange::new(0, 2))
            .unwrap();
        assert_eq!(chunk.layout(), Layout::RowMajor);
        assert_eq!(chunk.row_count(), 2);
        assert_eq!(chunk.get(RowId(1), 0).unwrap(), Value::Int(1));
    }

    #[test]
    fn column_borrow_only_in_column_major() {
        let cm = Matrix::from_table(demo_table());
        assert!(cm.column("id").is_ok());
        let rm = cm.converted_to(Layout::RowMajor).unwrap();
        assert!(rm.column("id").is_err());
        assert!(cm.column("missing").is_err());
    }

    #[test]
    fn from_table_with_layout() {
        let m = Matrix::from_table_with_layout(demo_table(), Layout::RowMajor).unwrap();
        assert_eq!(m.layout(), Layout::RowMajor);
        assert_eq!(m.get(RowId(0), 2).unwrap(), Value::Str("a".into()));
    }
}
