//! Column statistics.
//!
//! Lightweight summaries used by the adaptive optimizer (Section 2.9:
//! "for different parts of the data in the same table, different properties may
//! apply") and by the exploration scenarios to verify that a discovered pattern
//! is real.

use crate::column::Column;
use dbtouch_types::{Result, RowRange};
use serde::{Deserialize, Serialize};

/// Summary statistics of (a range of) a numeric column.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Number of rows summarized.
    pub count: u64,
    /// Sum of values.
    pub sum: f64,
    /// Minimum value (`None` when `count == 0`).
    pub min: Option<f64>,
    /// Maximum value (`None` when `count == 0`).
    pub max: Option<f64>,
    /// Mean value (`None` when `count == 0`).
    pub mean: Option<f64>,
    /// Population standard deviation (`None` when `count == 0`).
    pub std_dev: Option<f64>,
}

impl ColumnStats {
    /// Compute statistics over a full numeric column.
    pub fn of_column(column: &Column) -> Result<ColumnStats> {
        Self::of_range(column, RowRange::new(0, column.len()))
    }

    /// Compute statistics over a row range of a numeric column (clamped).
    pub fn of_range(column: &Column, range: RowRange) -> Result<ColumnStats> {
        let range = range.clamp_to(column.len());
        let (count, sum, min, max) = column.numeric_range_stats(range)?;
        if count == 0 {
            return Ok(ColumnStats {
                count: 0,
                sum: 0.0,
                min: None,
                max: None,
                mean: None,
                std_dev: None,
            });
        }
        let mean = sum / count as f64;
        // Second pass for the variance; ranges here are small (summary windows)
        // or executed offline (scenario validation), so two passes are fine.
        let mut sq_sum = 0.0;
        for row in range.iter() {
            let x = column.f64_at(row)?;
            sq_sum += (x - mean) * (x - mean);
        }
        Ok(ColumnStats {
            count,
            sum,
            min,
            max,
            mean: Some(mean),
            std_dev: Some((sq_sum / count as f64).sqrt()),
        })
    }

    /// The spread `max - min`, or 0 when empty.
    pub fn spread(&self) -> f64 {
        match (self.min, self.max) {
            (Some(lo), Some(hi)) => hi - lo,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_simple_column() {
        let c = Column::from_i64("c", vec![1, 2, 3, 4, 5]);
        let s = ColumnStats::of_column(&c).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 15.0);
        assert_eq!(s.min, Some(1.0));
        assert_eq!(s.max, Some(5.0));
        assert_eq!(s.mean, Some(3.0));
        assert!((s.std_dev.unwrap() - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert_eq!(s.spread(), 4.0);
    }

    #[test]
    fn stats_of_range_clamped() {
        let c = Column::from_i64("c", (0..10).collect());
        let s = ColumnStats::of_range(&c, RowRange::new(5, 100)).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, Some(5.0));
        assert_eq!(s.max, Some(9.0));
    }

    #[test]
    fn stats_of_empty_range() {
        let c = Column::from_i64("c", (0..10).collect());
        let s = ColumnStats::of_range(&c, RowRange::new(20, 30)).unwrap();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, None);
        assert_eq!(s.std_dev, None);
        assert_eq!(s.spread(), 0.0);
    }

    #[test]
    fn stats_reject_non_numeric() {
        let c = Column::from_strings("s", 4, &["a", "b"]).unwrap();
        assert!(ColumnStats::of_column(&c).is_err());
    }

    #[test]
    fn constant_column_zero_stddev() {
        let c = Column::from_f64("c", vec![4.0; 8]);
        let s = ColumnStats::of_column(&c).unwrap();
        assert_eq!(s.std_dev, Some(0.0));
        assert_eq!(s.mean, Some(4.0));
    }
}
