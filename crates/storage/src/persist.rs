//! The persistent catalog directory: one page file plus epoch manifests.
//!
//! A persisted catalog is exactly one published epoch of the in-memory
//! catalog. The on-disk protocol keeps the directory recoverable to its last
//! published epoch no matter where a crash lands:
//!
//! ```text
//! <catalog dir>/
//!   pages.dat               append-only page file (never overwritten)
//!   manifest-<epoch>.json   one manifest per persisted epoch, checksummed
//! ```
//!
//! **Append, then atomic rename.** A persist first appends the new epoch's
//! pages to `pages.dat` and syncs them, then writes
//! `manifest-<epoch>.json.tmp` and atomically renames it into place. The
//! manifest is the commit point: until the rename, no manifest references the
//! new pages, so a crash mid-persist leaves tail garbage that every reader
//! ignores. Older manifests are kept (pruned to a small window), so even a
//! corrupted *newest* manifest or its pages degrade recovery by one epoch,
//! never to an empty catalog.
//!
//! **Open-time validation.** [`CatalogStore::open`] walks manifests newest
//! first and picks the first one that (a) parses and matches its embedded
//! whole-file checksum, (b) references only pages inside the committed bound,
//! and (c) passes a page-*header* scan of every referenced extent (magic +
//! page id, `PAGE_HEADER_BYTES` per page — cheap even for large catalogs).
//! Payload checksums are verified lazily when a page faults into the buffer
//! pool, keeping open-to-first-touch latency independent of payload size
//! while still turning bit rot into errors rather than wrong answers.
//!
//! The manifest's object records carry everything `dbtouch-core` needs to
//! rebuild `ObjectData` lazily: name, schema (from the extents), on-screen
//! size, the default touch action (an opaque JSON value owned by core),
//! per-attribute sample-hierarchy extents and zone maps. Storage stays
//! ignorant of what an "action" is — layering is preserved.

use crate::index::ZoneMapIndex;
use crate::page::PAGE_HEADER_BYTES;
use crate::pager::{io_err, ColumnExtent, Pager};
use dbtouch_types::json::{self, Json};
use dbtouch_types::{DataType, DbTouchError, Result};
use std::collections::BTreeMap;
use std::collections::HashSet;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Manifest format version, bumped on incompatible layout changes.
pub const MANIFEST_FORMAT: u64 = 1;

/// Default retention window of epoch manifests (the `KernelConfig::manifest_keep`
/// knob overrides it per store). One would suffice for clean shutdowns; a
/// small window means a torn or rotted newest epoch costs one epoch of
/// history instead of the whole catalog.
pub const MANIFEST_KEEP: usize = 8;

/// File name of the page file inside a catalog directory.
pub const PAGES_FILE: &str = "pages.dat";

/// One persisted object slot (`None` in `StoreManifest::slots` is a
/// tombstone of a removed object — ids stay stable across restarts).
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectRecord {
    /// Catalog name of the object.
    pub name: String,
    /// `true` when the object was loaded as a table ("fat rectangle"),
    /// `false` for a standalone column; decides how core rebuilds the view.
    pub is_table: bool,
    /// On-screen size in centimetres the object was rendered at.
    pub size_w: f64,
    /// See `size_w`.
    pub size_h: f64,
    /// The default touch action, encoded by `dbtouch-core` (opaque here).
    pub action: Json,
    /// Attribute names, in schema order (types live in `columns[i].dt`).
    pub attribute_names: Vec<String>,
    /// Number of rows.
    pub row_count: u64,
    /// One extent per attribute, in schema order.
    pub columns: Vec<ColumnExtent>,
    /// Per attribute: the extents of sample levels `1..` (level 0 is the
    /// attribute's own column extent and is not duplicated on disk).
    pub sample_levels: Vec<Vec<ColumnExtent>>,
    /// Per attribute: the zone-map index, for numeric attributes.
    pub zone_maps: Vec<Option<ZoneMapIndex>>,
}

/// One persisted catalog epoch: the commit point of a persist.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreManifest {
    /// The catalog epoch this manifest captures.
    pub epoch: u64,
    /// The catalog's restructure counter at that epoch.
    pub restructures: u64,
    /// Page size of `pages.dat`.
    pub page_size: usize,
    /// Pages of `pages.dat` this manifest may reference (the committed
    /// bound; bytes beyond `committed_pages * page_size` are tail garbage).
    pub committed_pages: u64,
    /// The object table, indexed by object id; `None` marks a tombstone.
    pub slots: Vec<Option<ObjectRecord>>,
}

fn num(v: u64) -> Json {
    Json::Number(v as f64)
}

fn float(v: f64) -> Json {
    if v.is_finite() {
        Json::Number(v)
    } else {
        // JSON has no NaN/inf; zone maps of defensively-empty blocks use
        // NaN. Encode as null and decode back to NaN.
        Json::Null
    }
}

fn get_u64(obj: &Json, key: &str) -> Result<u64> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| DbTouchError::Corrupt(format!("manifest: missing or non-integer {key:?}")))
}

fn get_f64(obj: &Json, key: &str) -> Result<f64> {
    match obj.get(key) {
        Some(Json::Null) => Ok(f64::NAN),
        Some(Json::Number(n)) => Ok(*n),
        _ => Err(DbTouchError::Corrupt(format!(
            "manifest: missing or non-number {key:?}"
        ))),
    }
}

fn get_str<'j>(obj: &'j Json, key: &str) -> Result<&'j str> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| DbTouchError::Corrupt(format!("manifest: missing or non-string {key:?}")))
}

fn get_array<'j>(obj: &'j Json, key: &str) -> Result<&'j [Json]> {
    obj.get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| DbTouchError::Corrupt(format!("manifest: missing or non-array {key:?}")))
}

fn extent_to_json(e: &ColumnExtent) -> Json {
    let mut m = BTreeMap::new();
    m.insert("start_page".into(), num(e.start_page));
    m.insert("page_count".into(), num(e.page_count));
    m.insert("rows".into(), num(e.rows));
    m.insert("dt".into(), Json::String(e.dt.name()));
    // Compression keys are optional so manifests written before (or with
    // encoding disabled) keep parsing: absent means the raw layout.
    if let Some(rpp) = e.packed_rows_per_page {
        m.insert("packed_rows_per_page".into(), num(rpp));
    }
    m.insert("payload_bytes".into(), num(e.payload_bytes));
    Json::Object(m)
}

fn extent_from_json(j: &Json) -> Result<ColumnExtent> {
    let rows = get_u64(j, "rows")?;
    let dt = DataType::parse_name(get_str(j, "dt")?)
        .map_err(|e| DbTouchError::Corrupt(e.to_string()))?;
    let packed_rows_per_page = match j.get("packed_rows_per_page") {
        None | Some(Json::Null) => None,
        Some(_) => Some(get_u64(j, "packed_rows_per_page")?),
    };
    let payload_bytes = match j.get("payload_bytes") {
        // Pre-compression manifests carry no payload size; raw extents store
        // exactly rows × width.
        None => rows * dt.width_bytes() as u64,
        Some(_) => get_u64(j, "payload_bytes")?,
    };
    Ok(ColumnExtent {
        start_page: get_u64(j, "start_page")?,
        page_count: get_u64(j, "page_count")?,
        rows,
        dt,
        packed_rows_per_page,
        payload_bytes,
    })
}

fn zone_map_to_json(z: &ZoneMapIndex) -> Json {
    let mut m = BTreeMap::new();
    m.insert("block_rows".into(), num(z.block_rows()));
    m.insert("column_len".into(), num(z.column_len()));
    m.insert(
        "zones".into(),
        Json::Array(
            z.zones()
                .iter()
                .map(|&(lo, hi)| Json::Array(vec![float(lo), float(hi)]))
                .collect(),
        ),
    );
    if let Some(sums) = z.block_sums() {
        // i128 sums exceed what f64-backed JSON numbers carry exactly, so
        // they travel as decimal strings.
        m.insert(
            "sums".into(),
            Json::Array(sums.iter().map(|s| Json::String(s.to_string())).collect()),
        );
    }
    Json::Object(m)
}

fn zone_map_from_json(j: &Json) -> Result<ZoneMapIndex> {
    let zones = get_array(j, "zones")?
        .iter()
        .map(|pair| {
            let pair = pair
                .as_array()
                .ok_or_else(|| DbTouchError::Corrupt("manifest: zone is not a pair".into()))?;
            let decode = |v: Option<&Json>| match v {
                Some(Json::Null) => Ok(f64::NAN),
                Some(Json::Number(n)) => Ok(*n),
                _ => Err(DbTouchError::Corrupt("manifest: zone bound".into())),
            };
            Ok((decode(pair.first())?, decode(pair.get(1))?))
        })
        .collect::<Result<Vec<_>>>()?;
    let index =
        ZoneMapIndex::from_parts(get_u64(j, "block_rows")?, get_u64(j, "column_len")?, zones)?;
    // Block sums are optional: manifests written before they existed (and
    // float columns) simply omit them.
    match j.get("sums") {
        None | Some(Json::Null) => Ok(index),
        Some(_) => {
            let sums = get_array(j, "sums")?
                .iter()
                .map(|s| {
                    s.as_str()
                        .and_then(|s| s.parse::<i128>().ok())
                        .ok_or_else(|| DbTouchError::Corrupt("manifest: zone block sum".into()))
                })
                .collect::<Result<Vec<_>>>()?;
            index.with_block_sums(sums)
        }
    }
}

fn object_to_json(o: &ObjectRecord) -> Json {
    let mut m = BTreeMap::new();
    m.insert("name".into(), Json::String(o.name.clone()));
    m.insert("is_table".into(), Json::Bool(o.is_table));
    m.insert("size_w".into(), float(o.size_w));
    m.insert("size_h".into(), float(o.size_h));
    m.insert("action".into(), o.action.clone());
    m.insert(
        "attribute_names".into(),
        Json::Array(
            o.attribute_names
                .iter()
                .map(|n| Json::String(n.clone()))
                .collect(),
        ),
    );
    m.insert("row_count".into(), num(o.row_count));
    m.insert(
        "columns".into(),
        Json::Array(o.columns.iter().map(extent_to_json).collect()),
    );
    m.insert(
        "sample_levels".into(),
        Json::Array(
            o.sample_levels
                .iter()
                .map(|levels| Json::Array(levels.iter().map(extent_to_json).collect()))
                .collect(),
        ),
    );
    m.insert(
        "zone_maps".into(),
        Json::Array(
            o.zone_maps
                .iter()
                .map(|z| z.as_ref().map_or(Json::Null, zone_map_to_json))
                .collect(),
        ),
    );
    Json::Object(m)
}

fn object_from_json(j: &Json) -> Result<ObjectRecord> {
    let attribute_names = get_array(j, "attribute_names")?
        .iter()
        .map(|n| {
            n.as_str()
                .map(str::to_string)
                .ok_or_else(|| DbTouchError::Corrupt("manifest: attribute name".into()))
        })
        .collect::<Result<Vec<_>>>()?;
    let columns = get_array(j, "columns")?
        .iter()
        .map(extent_from_json)
        .collect::<Result<Vec<_>>>()?;
    let sample_levels = get_array(j, "sample_levels")?
        .iter()
        .map(|levels| {
            levels
                .as_array()
                .ok_or_else(|| DbTouchError::Corrupt("manifest: sample levels".into()))?
                .iter()
                .map(extent_from_json)
                .collect::<Result<Vec<_>>>()
        })
        .collect::<Result<Vec<_>>>()?;
    let zone_maps = get_array(j, "zone_maps")?
        .iter()
        .map(|z| match z {
            Json::Null => Ok(None),
            other => zone_map_from_json(other).map(Some),
        })
        .collect::<Result<Vec<_>>>()?;
    let record = ObjectRecord {
        name: get_str(j, "name")?.to_string(),
        is_table: matches!(j.get("is_table"), Some(Json::Bool(true))),
        size_w: get_f64(j, "size_w")?,
        size_h: get_f64(j, "size_h")?,
        action: j
            .get("action")
            .cloned()
            .ok_or_else(|| DbTouchError::Corrupt("manifest: missing action".into()))?,
        attribute_names,
        row_count: get_u64(j, "row_count")?,
        columns,
        sample_levels,
        zone_maps,
    };
    let attrs = record.attribute_names.len();
    if record.columns.len() != attrs
        || record.sample_levels.len() != attrs
        || record.zone_maps.len() != attrs
    {
        return Err(DbTouchError::Corrupt(format!(
            "manifest: object {} has inconsistent attribute arity",
            record.name
        )));
    }
    Ok(record)
}

impl StoreManifest {
    /// Serialize to the manifest file text: the body JSON plus an embedded
    /// FNV-1a checksum of the body's canonical rendering, so any truncation
    /// or edit of the file itself is detected before its contents are
    /// believed.
    pub fn to_text(&self) -> String {
        let body = self.body_json();
        let digest = crate::page::checksum(body.pretty().as_bytes());
        let mut outer = BTreeMap::new();
        outer.insert("body".to_string(), body);
        outer.insert(
            "checksum".to_string(),
            Json::String(format!("{digest:016x}")),
        );
        Json::Object(outer).pretty()
    }

    fn body_json(&self) -> Json {
        let mut m = BTreeMap::new();
        m.insert("format".into(), num(MANIFEST_FORMAT));
        m.insert("epoch".into(), num(self.epoch));
        m.insert("restructures".into(), num(self.restructures));
        m.insert("page_size".into(), num(self.page_size as u64));
        m.insert("committed_pages".into(), num(self.committed_pages));
        m.insert(
            "slots".into(),
            Json::Array(
                self.slots
                    .iter()
                    .map(|slot| slot.as_ref().map_or(Json::Null, object_to_json))
                    .collect(),
            ),
        );
        Json::Object(m)
    }

    /// Parse and checksum-verify a manifest file's text.
    pub fn from_text(text: &str) -> Result<StoreManifest> {
        let outer =
            json::parse(text).map_err(|e| DbTouchError::Corrupt(format!("manifest parse: {e}")))?;
        let body = outer
            .get("body")
            .ok_or_else(|| DbTouchError::Corrupt("manifest: missing body".into()))?;
        let stored = get_str(&outer, "checksum")?;
        let digest = crate::page::checksum(body.pretty().as_bytes());
        if stored != format!("{digest:016x}") {
            return Err(DbTouchError::Corrupt("manifest checksum mismatch".into()));
        }
        let format = get_u64(body, "format")?;
        if format != MANIFEST_FORMAT {
            return Err(DbTouchError::Corrupt(format!(
                "manifest format {format} not supported (expected {MANIFEST_FORMAT})"
            )));
        }
        let slots = get_array(body, "slots")?
            .iter()
            .map(|slot| match slot {
                Json::Null => Ok(None),
                other => object_from_json(other).map(Some),
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(StoreManifest {
            epoch: get_u64(body, "epoch")?,
            restructures: get_u64(body, "restructures")?,
            page_size: get_u64(body, "page_size")? as usize,
            committed_pages: get_u64(body, "committed_pages")?,
            slots,
        })
    }

    /// Every extent the manifest references, deduplicated (sample level 0
    /// shares the column's extent; ping-ponged objects may share more).
    pub fn referenced_extents(&self) -> Vec<ColumnExtent> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for record in self.slots.iter().flatten() {
            for extent in record
                .columns
                .iter()
                .chain(record.sample_levels.iter().flatten())
            {
                if extent.page_count > 0 && seen.insert((extent.start_page, extent.page_count)) {
                    out.push(*extent);
                }
            }
        }
        out
    }

    /// Structural validation against the committed page bound.
    fn extents_in_bounds(&self) -> Result<()> {
        for extent in self.referenced_extents() {
            let end = extent
                .start_page
                .checked_add(extent.page_count)
                .ok_or_else(|| DbTouchError::Corrupt("extent overflows".into()))?;
            if end > self.committed_pages {
                return Err(DbTouchError::Corrupt(format!(
                    "extent [{}, {end}) exceeds committed bound {}",
                    extent.start_page, self.committed_pages
                )));
            }
        }
        Ok(())
    }
}

fn manifest_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("manifest-{epoch:016}.json"))
}

/// Epochs of all manifest files present in `dir`, newest first.
fn manifest_epochs(dir: &Path) -> Result<Vec<u64>> {
    let mut epochs = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        // A directory that does not exist yet holds no manifests; `open`
        // then creates it as a fresh, empty store.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(epochs),
        Err(e) => return Err(io_err("read catalog dir", e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read catalog dir", e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(epoch) = name
            .strip_prefix("manifest-")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            epochs.push(epoch);
        }
    }
    epochs.sort_unstable_by(|a, b| b.cmp(a));
    Ok(epochs)
}

fn sync_dir(dir: &Path) -> Result<()> {
    // Directory fsync makes the rename itself durable; best-effort on
    // filesystems that refuse to open directories.
    if let Ok(handle) = fs::File::open(dir) {
        handle
            .sync_all()
            .map_err(|e| io_err("sync catalog dir", e))?;
    }
    Ok(())
}

/// A catalog directory opened for reading and appending: the pager over
/// `pages.dat` plus the manifest commit/recover protocol.
#[derive(Debug)]
pub struct CatalogStore {
    dir: PathBuf,
    pager: Arc<Pager>,
    /// Epoch manifests retained by [`prune_manifests`](Self::prune_manifests)
    /// (always at least 1 — the newest manifest is never pruned).
    manifest_keep: usize,
}

impl CatalogStore {
    /// Create the directory (if needed) and its page file, retaining
    /// [`MANIFEST_KEEP`] manifests. Does not write a manifest: a store
    /// without manifests opens as an empty catalog.
    pub fn create(
        dir: impl AsRef<Path>,
        page_size: usize,
        pool_pages: usize,
    ) -> Result<CatalogStore> {
        Self::create_with_retention(dir, page_size, pool_pages, MANIFEST_KEEP)
    }

    /// [`create`](Self::create) with an explicit manifest retention window
    /// (clamped to at least 1: the newest manifest must survive).
    pub fn create_with_retention(
        dir: impl AsRef<Path>,
        page_size: usize,
        pool_pages: usize,
        manifest_keep: usize,
    ) -> Result<CatalogStore> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| io_err("create catalog dir", e))?;
        let pager = Arc::new(Pager::open_or_create(
            dir.join(PAGES_FILE),
            page_size,
            pool_pages,
        )?);
        Ok(CatalogStore {
            dir,
            pager,
            manifest_keep: manifest_keep.max(1),
        })
    }

    /// The manifest retention window of this store.
    pub fn manifest_keep(&self) -> usize {
        self.manifest_keep
    }

    /// True when `dir` contains at least one manifest (i.e. a persisted
    /// catalog, possibly unrecoverable — `open` decides that).
    pub fn exists(dir: impl AsRef<Path>) -> bool {
        manifest_epochs(dir.as_ref())
            .map(|e| !e.is_empty())
            .unwrap_or(false)
    }

    /// Open `dir` and recover the newest valid manifest: newest-first, skip
    /// any manifest that fails parsing, its embedded checksum, the committed
    /// page bound, or the page-header scan of its referenced extents. With
    /// no manifest at all the store is created empty with
    /// `create_page_size`-byte pages and returns `Ok(None)`; an existing
    /// store always uses the page size recorded in its manifest. With
    /// manifests present but none valid, the directory is unrecoverable and
    /// `open` errors rather than silently serving an empty catalog.
    pub fn open(
        dir: impl AsRef<Path>,
        pool_pages: usize,
        create_page_size: usize,
    ) -> Result<(CatalogStore, Option<StoreManifest>)> {
        Self::open_with_retention(dir, pool_pages, create_page_size, MANIFEST_KEEP)
    }

    /// [`open`](Self::open) with an explicit manifest retention window for
    /// subsequent commits (clamped to at least 1).
    pub fn open_with_retention(
        dir: impl AsRef<Path>,
        pool_pages: usize,
        create_page_size: usize,
        manifest_keep: usize,
    ) -> Result<(CatalogStore, Option<StoreManifest>)> {
        let dir = dir.as_ref().to_path_buf();
        let epochs = manifest_epochs(&dir)?;
        if epochs.is_empty() {
            let store = CatalogStore::create_with_retention(
                &dir,
                create_page_size,
                pool_pages,
                manifest_keep,
            )?;
            return Ok((store, None));
        }
        let mut last_error: Option<DbTouchError> = None;
        for epoch in &epochs {
            match Self::try_open_epoch(&dir, *epoch, pool_pages, manifest_keep) {
                Ok(opened) => return Ok(opened),
                Err(e) => last_error = Some(e),
            }
        }
        Err(DbTouchError::Corrupt(format!(
            "no recoverable manifest among {} candidates in {}: last error: {}",
            epochs.len(),
            dir.display(),
            last_error.expect("at least one candidate")
        )))
    }

    fn try_open_epoch(
        dir: &Path,
        epoch: u64,
        pool_pages: usize,
        manifest_keep: usize,
    ) -> Result<(CatalogStore, Option<StoreManifest>)> {
        let text = fs::read_to_string(manifest_path(dir, epoch))
            .map_err(|e| io_err("read manifest", e))?;
        let manifest = StoreManifest::from_text(&text)?;
        if manifest.epoch != epoch {
            return Err(DbTouchError::Corrupt(format!(
                "manifest file for epoch {epoch} claims epoch {}",
                manifest.epoch
            )));
        }
        manifest.extents_in_bounds()?;
        let pager = Arc::new(Pager::open_or_create(
            dir.join(PAGES_FILE),
            manifest.page_size,
            pool_pages,
        )?);
        if pager.len_pages() < manifest.committed_pages {
            return Err(DbTouchError::Corrupt(format!(
                "page file holds {} pages, manifest commits {}",
                pager.len_pages(),
                manifest.committed_pages
            )));
        }
        for extent in manifest.referenced_extents() {
            pager.verify_extent_headers(&extent)?;
        }
        Ok((
            CatalogStore {
                dir: dir.to_path_buf(),
                pager,
                manifest_keep: manifest_keep.max(1),
            },
            Some(manifest),
        ))
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The pager (page file + buffer pool) backing this store.
    pub fn pager(&self) -> &Arc<Pager> {
        &self.pager
    }

    /// Commit a manifest: sync the page file (all of the manifest's extents
    /// must already be appended), write `manifest-<epoch>.json.tmp`, sync it,
    /// atomically rename it into place, sync the directory, and prune
    /// manifests beyond the retention window. After `commit` returns, a
    /// crash at any point leaves the directory recoverable to this epoch.
    pub fn commit(&self, manifest: &StoreManifest) -> Result<()> {
        if manifest.page_size != self.pager.page_size() {
            return Err(DbTouchError::Internal(
                "manifest page size differs from the store's".into(),
            ));
        }
        if manifest.committed_pages > self.pager.len_pages() {
            return Err(DbTouchError::Internal(
                "manifest commits pages that were never appended".into(),
            ));
        }
        manifest.extents_in_bounds()?;
        self.pager.sync()?;
        let path = manifest_path(&self.dir, manifest.epoch);
        let tmp = path.with_extension("json.tmp");
        {
            let mut file = fs::File::create(&tmp).map_err(|e| io_err("create manifest", e))?;
            file.write_all(manifest.to_text().as_bytes())
                .map_err(|e| io_err("write manifest", e))?;
            file.sync_all().map_err(|e| io_err("sync manifest", e))?;
        }
        fs::rename(&tmp, &path).map_err(|e| io_err("rename manifest", e))?;
        sync_dir(&self.dir)?;
        self.prune_manifests();
        Ok(())
    }

    /// Best-effort retention: drop manifest files beyond the store's window
    /// ([`MANIFEST_KEEP`] by default, [`KernelConfig::manifest_keep`] when
    /// the store was opened through the catalog).
    ///
    /// [`KernelConfig::manifest_keep`]: dbtouch_types::KernelConfig::manifest_keep
    fn prune_manifests(&self) {
        if let Ok(epochs) = manifest_epochs(&self.dir) {
            for epoch in epochs.into_iter().skip(self.manifest_keep) {
                let _ = fs::remove_file(manifest_path(&self.dir, epoch));
            }
        }
    }

    /// Exhaustively verify every page referenced by `manifest` (full payload
    /// checksums). O(data) — the `fsck` pass; regular opens rely on header
    /// scans plus fault-time verification.
    pub fn verify_all(&self, manifest: &StoreManifest) -> Result<()> {
        for extent in manifest.referenced_extents() {
            self.pager.verify_extent(&extent)?;
        }
        Ok(())
    }
}

/// Byte offset where a page's payload starts, exposed for crash-injection
/// tests that corrupt specific pages.
pub fn page_payload_offset(page_size: usize, page_id: u64) -> u64 {
    page_id * page_size as u64 + PAGE_HEADER_BYTES as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use std::sync::atomic::{AtomicU32, Ordering};

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dbtouch-store-{}-{}-{tag}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn one_object_manifest(store: &CatalogStore, epoch: u64, values: &[i64]) -> StoreManifest {
        let column = Column::from_i64("c", values.to_vec());
        let extent = column.persist_to(store.pager()).unwrap();
        StoreManifest {
            epoch,
            restructures: 0,
            page_size: store.pager().page_size(),
            committed_pages: store.pager().len_pages(),
            slots: vec![Some(ObjectRecord {
                name: "c".into(),
                is_table: false,
                size_w: 2.0,
                size_h: 10.0,
                action: Json::String("scan".into()),
                attribute_names: vec!["c".into()],
                row_count: values.len() as u64,
                columns: vec![extent],
                sample_levels: vec![vec![]],
                zone_maps: vec![None],
            })],
        }
    }

    #[test]
    fn manifest_text_round_trip() {
        let dir = temp_dir("round-trip");
        let store = CatalogStore::create(&dir, 256, 8).unwrap();
        let manifest = one_object_manifest(&store, 3, &(0..100).collect::<Vec<_>>());
        let text = manifest.to_text();
        assert_eq!(StoreManifest::from_text(&text).unwrap(), manifest);
        // Any edit breaks the embedded checksum.
        let tampered = text.replace("\"rows\": 100", "\"rows\": 101");
        assert!(matches!(
            StoreManifest::from_text(&tampered),
            Err(DbTouchError::Corrupt(_))
        ));
    }

    #[test]
    fn commit_then_open_recovers_the_manifest() {
        let dir = temp_dir("commit-open");
        let store = CatalogStore::create(&dir, 256, 8).unwrap();
        let manifest = one_object_manifest(&store, 1, &(0..500).collect::<Vec<_>>());
        store.commit(&manifest).unwrap();
        drop(store);
        let (_store, recovered) = CatalogStore::open(&dir, 8, 256).unwrap();
        assert_eq!(recovered.unwrap(), manifest);
    }

    #[test]
    fn empty_dir_opens_as_no_manifest() {
        let dir = temp_dir("empty");
        let (_store, recovered) = CatalogStore::open(&dir, 8, 256).unwrap();
        assert!(recovered.is_none());
        // And a nonexistent dir is created.
        let fresh = dir.join("nested");
        let (_store, recovered) = CatalogStore::open(&fresh, 8, 256).unwrap();
        assert!(recovered.is_none());
    }

    #[test]
    fn commit_rejects_uncommitted_or_out_of_bound_extents() {
        let dir = temp_dir("bounds");
        let store = CatalogStore::create(&dir, 256, 8).unwrap();
        let mut manifest = one_object_manifest(&store, 1, &(0..100).collect::<Vec<_>>());
        manifest.committed_pages += 10;
        assert!(store.commit(&manifest).is_err());
        let mut manifest = one_object_manifest(&store, 2, &(0..100).collect::<Vec<_>>());
        manifest.slots[0].as_mut().unwrap().columns[0].start_page = 1_000;
        assert!(store.commit(&manifest).is_err());
    }

    #[test]
    fn manifests_are_pruned_to_the_window() {
        let dir = temp_dir("prune");
        let store = CatalogStore::create(&dir, 256, 8).unwrap();
        for epoch in 1..=(MANIFEST_KEEP as u64 + 4) {
            let manifest = one_object_manifest(&store, epoch, &[1, 2, 3]);
            store.commit(&manifest).unwrap();
        }
        let epochs = manifest_epochs(&dir).unwrap();
        assert_eq!(epochs.len(), MANIFEST_KEEP);
        assert_eq!(epochs[0], MANIFEST_KEEP as u64 + 4);
    }

    #[test]
    fn retention_window_is_configurable_and_survives_reopen() {
        let dir = temp_dir("prune-config");
        let store = CatalogStore::create_with_retention(&dir, 256, 8, 2).unwrap();
        assert_eq!(store.manifest_keep(), 2);
        for epoch in 1..=5 {
            let manifest = one_object_manifest(&store, epoch, &[1, 2, 3]);
            store.commit(&manifest).unwrap();
        }
        let epochs = manifest_epochs(&dir).unwrap();
        assert_eq!(epochs, vec![5, 4], "keep-2 retains the newest two epochs");

        // Reopening with a different window applies it to later commits.
        let (store, manifest) = CatalogStore::open_with_retention(&dir, 8, 256, 3).unwrap();
        assert_eq!(store.manifest_keep(), 3);
        assert_eq!(manifest.unwrap().epoch, 5);
        let manifest = one_object_manifest(&store, 6, &[1, 2, 3]);
        store.commit(&manifest).unwrap();
        assert_eq!(manifest_epochs(&dir).unwrap(), vec![6, 5, 4]);

        // A zero window clamps to 1: the newest manifest is never pruned.
        let clamped =
            CatalogStore::create_with_retention(temp_dir("prune-zero"), 256, 8, 0).unwrap();
        assert_eq!(clamped.manifest_keep(), 1);
    }
}
