//! The fixed-size on-disk page: the unit of persistent column storage.
//!
//! dbTouch's catalog was memory-only; the persistent backend stores column
//! data in fixed-size pages so that faulting a touched region reads a bounded,
//! checksummed unit and the tuple-to-byte mapping stays pure arithmetic, just
//! like the in-memory dense arrays (Section 2.6). Every page starts with a
//! [`PageHeader`]:
//!
//! ```text
//! offset  size  field
//!      0     4  magic "DBTP"
//!      4     8  page id (little endian) — the page's index in the page file
//!     12     4  payload length in bytes (little endian)
//!     16     8  FNV-1a checksum of the payload (little endian)
//! ```
//!
//! The payload is raw fixed-width row data: rows of one column stored
//! back-to-back in the column's [`DataType`] encoding (the same little-endian
//! encoding `Value::encode` uses for row-major matrixes). Whole rows never
//! straddle pages — a page holds `floor(payload_capacity / width)` rows — so
//! a row read touches exactly one page.
//!
//! Checksums are verified when a page faults into the buffer pool, turning
//! torn writes and bit rot into recoverable [`DbTouchError::Corrupt`] errors
//! instead of silent wrong answers.

use dbtouch_types::{DbTouchError, Result};

/// `"DBTP"`: dbTouch page.
pub const PAGE_MAGIC: [u8; 4] = *b"DBTP";

/// Size of the encoded [`PageHeader`] in bytes.
pub const PAGE_HEADER_BYTES: usize = 24;

/// Default page size in bytes. 8 KiB balances fault granularity against
/// per-page header overhead; the page size is a property of the store and is
/// recorded in its manifest, so stores written with other sizes open fine.
pub const DEFAULT_PAGE_SIZE: usize = 8192;

/// Smallest page size the store accepts: the header plus one widest row
/// (8-byte numerics; wider fixed strings need proportionally larger pages).
pub const MIN_PAGE_SIZE: usize = PAGE_HEADER_BYTES + 8;

/// FNV-1a 64-bit: tiny, dependency-free, and plenty for torn-write detection
/// (this is an integrity check against accidents, not an authenticity check
/// against adversaries).
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The header at the start of every on-disk page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageHeader {
    /// The page's index within the page file (offset = id * page size).
    pub page_id: u64,
    /// Number of payload bytes actually used in this page.
    pub payload_len: u32,
    /// FNV-1a checksum of the used payload bytes.
    pub checksum: u64,
}

impl PageHeader {
    /// Encode into the fixed `PAGE_HEADER_BYTES` prefix layout.
    pub fn encode(&self) -> [u8; PAGE_HEADER_BYTES] {
        let mut out = [0u8; PAGE_HEADER_BYTES];
        out[0..4].copy_from_slice(&PAGE_MAGIC);
        out[4..12].copy_from_slice(&self.page_id.to_le_bytes());
        out[12..16].copy_from_slice(&self.payload_len.to_le_bytes());
        out[16..24].copy_from_slice(&self.checksum.to_le_bytes());
        out
    }

    /// Decode and validate a header prefix (magic and length sanity only; the
    /// payload checksum is verified by [`verify_page`]).
    pub fn decode(bytes: &[u8], page_size: usize) -> Result<PageHeader> {
        if bytes.len() < PAGE_HEADER_BYTES {
            return Err(DbTouchError::Corrupt(format!(
                "page header truncated: {} bytes",
                bytes.len()
            )));
        }
        if bytes[0..4] != PAGE_MAGIC {
            return Err(DbTouchError::Corrupt("bad page magic".into()));
        }
        let page_id = u64::from_le_bytes(bytes[4..12].try_into().unwrap());
        let payload_len = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        if payload_len as usize > page_size - PAGE_HEADER_BYTES {
            return Err(DbTouchError::Corrupt(format!(
                "page {page_id} claims {payload_len} payload bytes in a {page_size}-byte page"
            )));
        }
        let checksum = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        Ok(PageHeader {
            page_id,
            payload_len,
            checksum,
        })
    }
}

/// Payload bytes available in a page of `page_size` bytes.
pub fn payload_capacity(page_size: usize) -> usize {
    page_size.saturating_sub(PAGE_HEADER_BYTES)
}

/// Rows of `width`-byte values that fit in one page (at least 1 is required;
/// a width larger than the payload capacity is a configuration error caught
/// when the column is appended).
pub fn rows_per_page(page_size: usize, width: usize) -> u64 {
    if width == 0 {
        return 0;
    }
    (payload_capacity(page_size) / width) as u64
}

/// Build the full on-disk image of one page: header + payload, zero-padded to
/// `page_size`.
pub fn encode_page(page_id: u64, payload: &[u8], page_size: usize) -> Result<Vec<u8>> {
    if payload.len() > payload_capacity(page_size) {
        return Err(DbTouchError::Internal(format!(
            "page payload of {} bytes exceeds capacity {}",
            payload.len(),
            payload_capacity(page_size)
        )));
    }
    let header = PageHeader {
        page_id,
        payload_len: payload.len() as u32,
        checksum: checksum(payload),
    };
    let mut image = vec![0u8; page_size];
    image[..PAGE_HEADER_BYTES].copy_from_slice(&header.encode());
    image[PAGE_HEADER_BYTES..PAGE_HEADER_BYTES + payload.len()].copy_from_slice(payload);
    Ok(image)
}

/// Verify a full page image read from disk: magic, expected id, and payload
/// checksum. Returns the payload slice on success.
pub fn verify_page(image: &[u8], expected_id: u64, page_size: usize) -> Result<&[u8]> {
    if image.len() != page_size {
        return Err(DbTouchError::Corrupt(format!(
            "page {expected_id} truncated: {} of {page_size} bytes",
            image.len()
        )));
    }
    let header = PageHeader::decode(image, page_size)?;
    if header.page_id != expected_id {
        return Err(DbTouchError::Corrupt(format!(
            "page id mismatch: expected {expected_id}, found {}",
            header.page_id
        )));
    }
    let payload = &image[PAGE_HEADER_BYTES..PAGE_HEADER_BYTES + header.payload_len as usize];
    if checksum(payload) != header.checksum {
        return Err(DbTouchError::Corrupt(format!(
            "page {expected_id} payload checksum mismatch"
        )));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trip() {
        let h = PageHeader {
            page_id: 42,
            payload_len: 100,
            checksum: 0xdead_beef,
        };
        let enc = h.encode();
        assert_eq!(PageHeader::decode(&enc, DEFAULT_PAGE_SIZE).unwrap(), h);
    }

    #[test]
    fn decode_rejects_bad_magic_and_lengths() {
        let mut enc = PageHeader {
            page_id: 1,
            payload_len: 8,
            checksum: 0,
        }
        .encode();
        enc[0] = b'X';
        assert!(matches!(
            PageHeader::decode(&enc, DEFAULT_PAGE_SIZE),
            Err(DbTouchError::Corrupt(_))
        ));
        assert!(PageHeader::decode(&enc[..10], DEFAULT_PAGE_SIZE).is_err());
        let oversized = PageHeader {
            page_id: 1,
            payload_len: DEFAULT_PAGE_SIZE as u32,
            checksum: 0,
        }
        .encode();
        assert!(PageHeader::decode(&oversized, DEFAULT_PAGE_SIZE).is_err());
    }

    #[test]
    fn page_round_trip_and_corruption_detected() {
        let payload: Vec<u8> = (0..200u8).collect();
        let image = encode_page(7, &payload, 512).unwrap();
        assert_eq!(image.len(), 512);
        assert_eq!(verify_page(&image, 7, 512).unwrap(), &payload[..]);
        // Wrong id.
        assert!(verify_page(&image, 8, 512).is_err());
        // Flipped payload byte.
        let mut bad = image.clone();
        bad[PAGE_HEADER_BYTES + 10] ^= 0xff;
        assert!(matches!(
            verify_page(&bad, 7, 512),
            Err(DbTouchError::Corrupt(_))
        ));
        // Truncated image.
        assert!(verify_page(&image[..511], 7, 512).is_err());
    }

    #[test]
    fn geometry_helpers() {
        assert_eq!(payload_capacity(8192), 8192 - PAGE_HEADER_BYTES);
        assert_eq!(
            rows_per_page(8192, 8),
            (8192 - PAGE_HEADER_BYTES) as u64 / 8
        );
        assert_eq!(rows_per_page(8192, 0), 0);
        assert!(encode_page(0, &vec![0u8; 600], 512).is_err());
    }

    #[test]
    fn checksum_is_stable_and_sensitive() {
        assert_eq!(checksum(b"abc"), checksum(b"abc"));
        assert_ne!(checksum(b"abc"), checksum(b"abd"));
        assert_ne!(checksum(b""), checksum(b"\0"));
    }
}
