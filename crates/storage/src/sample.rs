//! Sample-based storage: hierarchies of progressively coarser samples.
//!
//! Section 2.6 ("Sample-based Storage"): querying via slide gestures is
//! equivalent to processing a sample of the underlying data, so "a better
//! approach would be to store separately various different samples of the base
//! data and depending on the object size and gesture speed feed from the proper
//! copy, minimizing the auxiliary data reads". The paper cites the Sciborg
//! hierarchy-of-samples idea.
//!
//! A [`SampleHierarchy`] keeps level 0 = base data and level `i` = every
//! `2^i`-th row of the base data. Given a requested granularity (how many base
//! rows one touch is expected to cover), [`SampleHierarchy::level_for_stride`]
//! picks the coarsest level that still distinguishes the touched rows, and
//! [`SampleHierarchy::map_row`] translates base-data row identifiers into rows
//! of that sample.

use crate::column::Column;
use dbtouch_types::{DbTouchError, Result, RowId, RowRange};
use serde::{Deserialize, Serialize};

/// A hierarchy of strided samples over one column.
///
/// ```
/// use dbtouch_storage::column::Column;
/// use dbtouch_storage::sample::SampleHierarchy;
/// use dbtouch_types::RowId;
///
/// let hierarchy = SampleHierarchy::build(Column::from_i64("c", (0..1024).collect()), 6).unwrap();
/// // A gesture expected to skip ~16 base rows per touch reads level 4.
/// let level = hierarchy.level_for_stride(16);
/// assert_eq!(level, 4);
/// assert_eq!(hierarchy.level(level).unwrap().len(), 64);
/// // Base row 500 maps to sample row 31 of that level.
/// assert_eq!(hierarchy.map_row(RowId(500), level).unwrap(), RowId(31));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleHierarchy {
    /// `levels[0]` is the base column; `levels[i]` keeps every `2^i`-th row.
    levels: Vec<Column>,
}

impl SampleHierarchy {
    /// Build a hierarchy with `level_count` levels (including the base level).
    /// `level_count` is clamped to at least 1; levels whose stride exceeds the
    /// column length are not materialized. Errors only when the base is a
    /// paged-backed column whose pages fail to read.
    pub fn build(base: Column, level_count: u8) -> Result<SampleHierarchy> {
        let level_count = level_count.max(1);
        let base_len = base.len();
        // Stride a paged base from one in-memory copy: striding the paged
        // column directly would stream the whole column through the buffer
        // pool once per level. The copy is transient (dropped after build);
        // level 0 keeps the paged reader so the hierarchy itself stays lazy.
        let materialized = base
            .paged_extent()
            .is_some()
            .then(|| base.materialized())
            .transpose()?;
        let mut levels = Vec::with_capacity(level_count as usize);
        levels.push(base);
        for level in 1..level_count {
            let stride = 1u64 << level;
            if stride >= base_len.max(1) {
                break;
            }
            let sampled = materialized
                .as_ref()
                .unwrap_or(&levels[0])
                .strided_sample(stride)?;
            levels.push(sampled);
        }
        Ok(SampleHierarchy { levels })
    }

    /// Rebuild a hierarchy from already-materialized levels (the persistent
    /// catalog stores each level as its own paged column, so reopening a
    /// catalog does not re-stride the base data). `levels[0]` must be the
    /// base column; the caller is responsible for the levels actually being
    /// `2^i`-strided samples of it.
    pub fn from_levels(levels: Vec<Column>) -> Result<SampleHierarchy> {
        if levels.is_empty() {
            return Err(DbTouchError::Corrupt(
                "a sample hierarchy needs at least its base level".into(),
            ));
        }
        Ok(SampleHierarchy { levels })
    }

    /// Number of levels actually materialized (>= 1).
    pub fn level_count(&self) -> u8 {
        self.levels.len() as u8
    }

    /// The base column (level 0).
    pub fn base(&self) -> &Column {
        &self.levels[0]
    }

    /// Number of rows in the base data.
    pub fn base_len(&self) -> u64 {
        self.levels[0].len()
    }

    /// The column at a given level.
    pub fn level(&self, level: u8) -> Result<&Column> {
        self.levels
            .get(level as usize)
            .ok_or(DbTouchError::InvalidSampleLevel {
                level,
                max: self.level_count(),
            })
    }

    /// The stride (in base rows) between two consecutive rows of `level`.
    pub fn stride(&self, level: u8) -> u64 {
        1u64 << level
    }

    /// Pick the coarsest level whose stride does not exceed `stride` (the
    /// expected number of base rows between two consecutive touches). A stride
    /// of 0 or 1 always selects the base level.
    pub fn level_for_stride(&self, stride: u64) -> u8 {
        if stride <= 1 {
            return 0;
        }
        // floor(log2(stride)), clamped to the materialized levels.
        let wanted = 63 - stride.leading_zeros() as u8;
        wanted.min(self.level_count().saturating_sub(1))
    }

    /// Map a base-data row identifier to the nearest row of `level`.
    pub fn map_row(&self, base_row: RowId, level: u8) -> Result<RowId> {
        let col = self.level(level)?;
        let stride = self.stride(level);
        let mapped = RowId(base_row.0 / stride);
        Ok(mapped.clamp_to(col.len()).unwrap_or(RowId::ZERO))
    }

    /// Map a base-data row range to the corresponding range of `level`
    /// (inclusive of any partially covered sample rows).
    pub fn map_range(&self, range: RowRange, level: u8) -> Result<RowRange> {
        let col = self.level(level)?;
        let stride = self.stride(level);
        let start = range.start / stride;
        let end = range.end.div_ceil(stride);
        Ok(RowRange::new(start, end).clamp_to(col.len()))
    }

    /// Map a row of `level` back to the base-data row it was sampled from.
    pub fn unmap_row(&self, sample_row: RowId, level: u8) -> Result<RowId> {
        self.level(level)?; // validate level
        let base = RowId(sample_row.0 * self.stride(level));
        Ok(base.clamp_to(self.base_len()).unwrap_or(RowId::ZERO))
    }

    /// Total extra bytes used by the hierarchy beyond the base data.
    pub fn auxiliary_bytes(&self) -> u64 {
        self.levels.iter().skip(1).map(|c| c.byte_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtouch_types::Value;

    fn hierarchy() -> SampleHierarchy {
        SampleHierarchy::build(Column::from_i64("c", (0..1000).collect()), 6).unwrap()
    }

    #[test]
    fn builds_expected_levels() {
        let h = hierarchy();
        assert_eq!(h.level_count(), 6);
        assert_eq!(h.base_len(), 1000);
        assert_eq!(h.level(1).unwrap().len(), 500);
        assert_eq!(h.level(5).unwrap().len(), 1000 / 32 + 1);
        assert!(h.level(6).is_err());
    }

    #[test]
    fn level_values_come_from_base() {
        let h = hierarchy();
        // level 3 keeps every 8th value
        let l3 = h.level(3).unwrap();
        assert_eq!(l3.get(RowId(0)).unwrap(), Value::Int(0));
        assert_eq!(l3.get(RowId(5)).unwrap(), Value::Int(40));
    }

    #[test]
    fn small_columns_do_not_materialize_useless_levels() {
        let h = SampleHierarchy::build(Column::from_i64("c", (0..4).collect()), 8).unwrap();
        // strides 1, 2 are useful; stride 4 >= len so not materialized
        assert_eq!(h.level_count(), 2);
    }

    #[test]
    fn empty_column_has_single_level() {
        let h = SampleHierarchy::build(Column::from_i64("c", vec![]), 4).unwrap();
        assert_eq!(h.level_count(), 1);
        assert_eq!(h.base_len(), 0);
    }

    #[test]
    fn zero_level_count_clamped() {
        let h = SampleHierarchy::build(Column::from_i64("c", (0..10).collect()), 0).unwrap();
        assert_eq!(h.level_count(), 1);
    }

    #[test]
    fn level_for_stride_picks_coarsest_fitting() {
        let h = hierarchy();
        assert_eq!(h.level_for_stride(0), 0);
        assert_eq!(h.level_for_stride(1), 0);
        assert_eq!(h.level_for_stride(2), 1);
        assert_eq!(h.level_for_stride(3), 1);
        assert_eq!(h.level_for_stride(8), 3);
        assert_eq!(h.level_for_stride(1000), 5); // clamped to materialized levels
    }

    #[test]
    fn map_row_and_back() {
        let h = hierarchy();
        let mapped = h.map_row(RowId(100), 3).unwrap();
        assert_eq!(mapped, RowId(12));
        let back = h.unmap_row(mapped, 3).unwrap();
        assert_eq!(back, RowId(96));
        assert!(back.distance(RowId(100)) < h.stride(3));
    }

    #[test]
    fn map_row_clamps_to_level_length() {
        let h = hierarchy();
        let last = h.map_row(RowId(999), 5).unwrap();
        assert!(last.0 < h.level(5).unwrap().len());
    }

    #[test]
    fn map_range_covers_original_rows() {
        let h = hierarchy();
        let r = h.map_range(RowRange::new(10, 30), 2).unwrap();
        // stride 4: rows 10..30 map to sample rows 2..8
        assert_eq!(r, RowRange::new(2, 8));
        // every base row in [10,30) has its sample ancestor inside r
        for base in 10..30u64 {
            let m = h.map_row(RowId(base), 2).unwrap();
            assert!(r.contains(m));
        }
    }

    #[test]
    fn auxiliary_bytes_less_than_base() {
        let h = hierarchy();
        assert!(h.auxiliary_bytes() > 0);
        assert!(h.auxiliary_bytes() < h.base().byte_size());
    }
}
