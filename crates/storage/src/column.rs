//! Fixed-width dense columns.
//!
//! A [`Column`] is the basic storage unit: a dense, fixed-width array of values
//! of a single data type. The paper's prototype stores data exactly this way
//! ("data is stored in fixed-width dense arrays or matrixes") because the
//! touch-to-tuple mapping and the tuple-to-byte-offset mapping must both be pure
//! arithmetic to keep per-touch response times low.

use crate::encoding::EncodingPolicy;
use crate::pager::{append_row_bytes_encoded, ColumnExtent, PagedColumn, Pager};
use crate::segment::{SegmentStats, SegmentSum};
use dbtouch_types::{DataType, DbTouchError, Result, RowId, RowRange, Value};
use serde::{Deserialize, Serialize};

/// Typed storage for a column's values.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum ColumnData {
    Int64(Vec<i64>),
    Float64(Vec<f64>),
    Bool(Vec<bool>),
    /// Fixed-width, zero-padded UTF-8 strings stored back-to-back.
    FixedStr {
        width: u16,
        bytes: Vec<u8>,
    },
    Timestamp(Vec<i64>),
    /// Rows live in a page extent of a persistent store and fault through
    /// the store's buffer pool on first touch (see [`crate::pager`]). A
    /// paged column is immutable and reads bit-identically to the in-memory
    /// column it was persisted from.
    Paged(PagedColumn),
}

/// A named, fixed-width, dense column.
///
/// ```
/// use dbtouch_storage::column::Column;
/// use dbtouch_types::{RowId, RowRange, Value};
///
/// let column = Column::from_i64("measurements", vec![10, 20, 30, 40]);
/// assert_eq!(column.len(), 4);
/// assert_eq!(column.get(RowId(2)).unwrap(), Value::Int(30));
///
/// // Range statistics are the building block of interactive summaries.
/// let (count, sum, min, max) = column.numeric_range_stats(RowRange::new(1, 4)).unwrap();
/// assert_eq!((count, sum), (3, 90.0));
/// assert_eq!((min, max), (Some(20.0), Some(40.0)));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Column {
    name: String,
    data: ColumnData,
}

/// Columns compare by *logical content* — name, type and row values — so an
/// in-memory column equals the paged-backed column it was persisted as.
/// Inline columns of the same representation still compare storage-to-storage
/// (no per-row decoding).
impl PartialEq for Column {
    fn eq(&self, other: &Column) -> bool {
        if self.name != other.name {
            return false;
        }
        match (&self.data, &other.data) {
            (ColumnData::Int64(a), ColumnData::Int64(b)) => a == b,
            (ColumnData::Float64(a), ColumnData::Float64(b)) => a == b,
            (ColumnData::Bool(a), ColumnData::Bool(b)) => a == b,
            (ColumnData::Timestamp(a), ColumnData::Timestamp(b)) => a == b,
            (
                ColumnData::FixedStr {
                    width: wa,
                    bytes: ba,
                },
                ColumnData::FixedStr {
                    width: wb,
                    bytes: bb,
                },
            ) => wa == wb && ba == bb,
            _ => {
                self.data_type() == other.data_type()
                    && self.len() == other.len()
                    && self.iter().eq(other.iter())
            }
        }
    }
}

impl Column {
    /// Build an `Int64` column from raw values.
    pub fn from_i64(name: impl Into<String>, values: Vec<i64>) -> Column {
        Column {
            name: name.into(),
            data: ColumnData::Int64(values),
        }
    }

    /// Build a `Float64` column from raw values.
    pub fn from_f64(name: impl Into<String>, values: Vec<f64>) -> Column {
        Column {
            name: name.into(),
            data: ColumnData::Float64(values),
        }
    }

    /// Build a `Bool` column from raw values.
    pub fn from_bool(name: impl Into<String>, values: Vec<bool>) -> Column {
        Column {
            name: name.into(),
            data: ColumnData::Bool(values),
        }
    }

    /// Build a `Timestamp` column from raw millisecond values.
    pub fn from_timestamps(name: impl Into<String>, values: Vec<i64>) -> Column {
        Column {
            name: name.into(),
            data: ColumnData::Timestamp(values),
        }
    }

    /// Build a fixed-width string column. Strings longer than `width` bytes are
    /// rejected.
    pub fn from_strings(
        name: impl Into<String>,
        width: u16,
        values: &[impl AsRef<str>],
    ) -> Result<Column> {
        let mut bytes = vec![0u8; values.len() * width as usize];
        for (i, s) in values.iter().enumerate() {
            let s = s.as_ref().as_bytes();
            if s.len() > width as usize {
                return Err(DbTouchError::TypeMismatch {
                    expected: format!("str{width}"),
                    found: format!("str of {} bytes", s.len()),
                });
            }
            bytes[i * width as usize..i * width as usize + s.len()].copy_from_slice(s);
        }
        Ok(Column {
            name: name.into(),
            data: ColumnData::FixedStr { width, bytes },
        })
    }

    /// Build an empty column of the given type.
    pub fn empty(name: impl Into<String>, dt: DataType) -> Column {
        let data = match dt {
            DataType::Int64 => ColumnData::Int64(Vec::new()),
            DataType::Float64 => ColumnData::Float64(Vec::new()),
            DataType::Bool => ColumnData::Bool(Vec::new()),
            DataType::TimestampMillis => ColumnData::Timestamp(Vec::new()),
            DataType::FixedStr(w) => ColumnData::FixedStr {
                width: w,
                bytes: Vec::new(),
            },
        };
        Column {
            name: name.into(),
            data,
        }
    }

    /// Build a column of the given type from dynamically typed values.
    pub fn from_values(name: impl Into<String>, dt: DataType, values: &[Value]) -> Result<Column> {
        let mut col = Column::empty(name, dt);
        for v in values {
            col.push(v.clone())?;
        }
        Ok(col)
    }

    /// Wrap a [`PagedColumn`] reader as a column: rows fault through the
    /// store's buffer pool on first touch instead of living in memory. This
    /// is how a reopened catalog's columns are built.
    pub fn paged(name: impl Into<String>, reader: PagedColumn) -> Column {
        Column {
            name: name.into(),
            data: ColumnData::Paged(reader),
        }
    }

    /// The page extent behind this column, when it is paged-backed.
    pub fn paged_extent(&self) -> Option<ColumnExtent> {
        match &self.data {
            ColumnData::Paged(p) => Some(p.extent()),
            _ => None,
        }
    }

    /// An in-memory copy of this column: a cheap clone when it is already
    /// inline, a full read through the buffer pool when it is paged-backed.
    /// The paged path decodes whole page payloads into the typed storage at
    /// once — no per-row `Value` boxing — so a page fault amortizes over all
    /// the rows it holds.
    pub fn materialized(&self) -> Result<Column> {
        let ColumnData::Paged(p) = &self.data else {
            return Ok(self.clone());
        };
        let raw = p.raw_row_bytes()?;
        Column::from_raw_bytes(self.name.clone(), p.data_type(), raw)
    }

    /// Build a typed in-memory column from verbatim fixed-width row bytes
    /// (the layout `Value::encode` and the page path share).
    pub fn from_raw_bytes(name: impl Into<String>, dt: DataType, raw: Vec<u8>) -> Result<Column> {
        let name = name.into();
        let width = dt.width_bytes();
        if width == 0 || !raw.len().is_multiple_of(width) {
            return Err(DbTouchError::Corrupt(format!(
                "column {name:?}: {} raw bytes do not divide into width-{width} rows",
                raw.len()
            )));
        }
        let decode_i64s = |raw: &[u8]| -> Vec<i64> {
            raw.chunks_exact(8)
                .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
                .collect()
        };
        let data = match dt {
            DataType::Int64 => ColumnData::Int64(decode_i64s(&raw)),
            DataType::TimestampMillis => ColumnData::Timestamp(decode_i64s(&raw)),
            DataType::Float64 => ColumnData::Float64(
                raw.chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            ),
            DataType::Bool => ColumnData::Bool(raw.iter().map(|&b| b != 0).collect()),
            DataType::FixedStr(width) => ColumnData::FixedStr { width, bytes: raw },
        };
        Ok(Column { name, data })
    }

    /// Append this column's rows to a persistent store's page file in the raw
    /// layout, returning the extent written. The encoding is the same
    /// fixed-width little-endian layout row-major matrixes use
    /// (`Value::encode`), so paged reads decode bit-identically.
    pub fn persist_to(&self, pager: &Pager) -> Result<ColumnExtent> {
        self.persist_to_encoded(pager, &EncodingPolicy::disabled())
    }

    /// Append this column's rows to a persistent store's page file, packing
    /// them with whichever per-page encoding actually shrinks the page count
    /// under `policy` (see [`crate::encoding`]); incompressible columns fall
    /// back to the raw layout. Either way reads decode bit-identically.
    pub fn persist_to_encoded(
        &self,
        pager: &Pager,
        policy: &EncodingPolicy,
    ) -> Result<ColumnExtent> {
        let dt = self.data_type();
        let row_bytes: Vec<u8> = match &self.data {
            ColumnData::Int64(v) | ColumnData::Timestamp(v) => {
                v.iter().flat_map(|x| x.to_le_bytes()).collect()
            }
            ColumnData::Float64(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
            ColumnData::Bool(v) => v.iter().map(|&b| u8::from(b)).collect(),
            ColumnData::FixedStr { bytes, .. } => bytes.clone(),
            // Decode to verbatim rows first: the destination store makes its
            // own packing decision (its policy or page size may differ).
            ColumnData::Paged(p) => p.raw_row_bytes()?,
        };
        append_row_bytes_encoded(pager, dt, self.len(), &row_bytes, policy)
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the column (used when a column is dragged out of a table into a
    /// new standalone object).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Data type of the column.
    pub fn data_type(&self) -> DataType {
        match &self.data {
            ColumnData::Int64(_) => DataType::Int64,
            ColumnData::Float64(_) => DataType::Float64,
            ColumnData::Bool(_) => DataType::Bool,
            ColumnData::FixedStr { width, .. } => DataType::FixedStr(*width),
            ColumnData::Timestamp(_) => DataType::TimestampMillis,
            ColumnData::Paged(p) => p.data_type(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> u64 {
        match &self.data {
            ColumnData::Int64(v) => v.len() as u64,
            ColumnData::Float64(v) => v.len() as u64,
            ColumnData::Bool(v) => v.len() as u64,
            ColumnData::FixedStr { width, bytes } => {
                if *width == 0 {
                    0
                } else {
                    (bytes.len() / *width as usize) as u64
                }
            }
            ColumnData::Timestamp(v) => v.len() as u64,
            ColumnData::Paged(p) => p.rows(),
        }
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of the column's data in bytes (used to account for bytes touched
    /// in the benchmarks and to size buffer pools). For paged-backed columns
    /// this is the *persisted* payload size — encoded columns report what
    /// they actually occupy on disk, not the logical fixed-width size.
    pub fn byte_size(&self) -> u64 {
        match &self.data {
            ColumnData::Paged(p) => p.extent().payload_bytes,
            _ => self.len() * self.data_type().width_bytes() as u64,
        }
    }

    /// Append a value; its type must match the column type. Paged-backed
    /// columns are immutable (their rows live in a published on-disk extent)
    /// and reject every push.
    pub fn push(&mut self, value: Value) -> Result<()> {
        match (&mut self.data, value) {
            (ColumnData::Paged(_), _) => {
                return Err(DbTouchError::InvalidPlan(
                    "paged columns are immutable; materialize before mutating".into(),
                ))
            }
            (ColumnData::Int64(v), Value::Int(x)) => v.push(x),
            (ColumnData::Float64(v), Value::Float(x)) => v.push(x),
            (ColumnData::Bool(v), Value::Bool(x)) => v.push(x),
            (ColumnData::Timestamp(v), Value::Timestamp(x)) => v.push(x),
            (ColumnData::FixedStr { width, bytes }, Value::Str(s)) => {
                let s = s.as_bytes();
                if s.len() > *width as usize {
                    return Err(DbTouchError::TypeMismatch {
                        expected: format!("str{width}"),
                        found: format!("str of {} bytes", s.len()),
                    });
                }
                let start = bytes.len();
                bytes.resize(start + *width as usize, 0);
                bytes[start..start + s.len()].copy_from_slice(s);
            }
            (_, v) => {
                return Err(DbTouchError::TypeMismatch {
                    expected: self.data_type().name(),
                    found: v.data_type().name(),
                })
            }
        }
        Ok(())
    }

    /// Read the value at `row`.
    pub fn get(&self, row: RowId) -> Result<Value> {
        let i = row.index();
        let len = self.len();
        if row.0 >= len {
            return Err(DbTouchError::RowOutOfBounds { row: row.0, len });
        }
        Ok(match &self.data {
            ColumnData::Int64(v) => Value::Int(v[i]),
            ColumnData::Float64(v) => Value::Float(v[i]),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Timestamp(v) => Value::Timestamp(v[i]),
            ColumnData::FixedStr { width, bytes } => {
                let w = *width as usize;
                let slice = &bytes[i * w..(i + 1) * w];
                let end = slice.iter().position(|&b| b == 0).unwrap_or(w);
                Value::Str(String::from_utf8_lossy(&slice[..end]).into_owned())
            }
            ColumnData::Paged(p) => return p.value_at(row),
        })
    }

    /// Fast numeric accessor: the value at `row` as `f64`. Errors for
    /// non-numeric columns or out-of-bounds rows. This is the hot path used by
    /// running aggregates and interactive summaries.
    pub fn f64_at(&self, row: RowId) -> Result<f64> {
        let i = row.index();
        let len = self.len();
        if row.0 >= len {
            return Err(DbTouchError::RowOutOfBounds { row: row.0, len });
        }
        match &self.data {
            ColumnData::Int64(v) => Ok(v[i] as f64),
            ColumnData::Float64(v) => Ok(v[i]),
            ColumnData::Timestamp(v) => Ok(v[i] as f64),
            ColumnData::Paged(p) => p.f64_at(row),
            _ => Err(DbTouchError::TypeMismatch {
                expected: "numeric".into(),
                found: self.data_type().name(),
            }),
        }
    }

    /// Materialize the values in a row range (clamped to the column length).
    pub fn slice(&self, range: RowRange) -> Vec<Value> {
        let range = range.clamp_to(self.len());
        range
            .iter()
            .map(|r| self.get(r).expect("clamped"))
            .collect()
    }

    /// Sum, count, minimum and maximum of the numeric values in `range`
    /// (clamped). Returns `(count, sum, min, max)`; `min`/`max` are `None` when
    /// the clamped range is empty. Errors for non-numeric columns.
    pub fn numeric_range_stats(
        &self,
        range: RowRange,
    ) -> Result<(u64, f64, Option<f64>, Option<f64>)> {
        if !self.data_type().is_numeric() {
            return Err(DbTouchError::TypeMismatch {
                expected: "numeric".into(),
                found: self.data_type().name(),
            });
        }
        if let ColumnData::Paged(p) = &self.data {
            // Same ascending fold as the inline arms below, reading through
            // the buffer pool: results are bit-identical.
            return p.numeric_range_stats(range);
        }
        let range = range.clamp_to(self.len());
        let mut count = 0u64;
        let mut sum = 0.0;
        let mut min: Option<f64> = None;
        let mut max: Option<f64> = None;
        // Iterate over the typed storage directly to avoid per-row enum overhead.
        match &self.data {
            ColumnData::Int64(v) | ColumnData::Timestamp(v) => {
                for &x in &v[range.as_usize_range()] {
                    let x = x as f64;
                    count += 1;
                    sum += x;
                    min = Some(min.map_or(x, |m| m.min(x)));
                    max = Some(max.map_or(x, |m| m.max(x)));
                }
            }
            ColumnData::Float64(v) => {
                for &x in &v[range.as_usize_range()] {
                    count += 1;
                    sum += x;
                    min = Some(min.map_or(x, |m| m.min(x)));
                    max = Some(max.map_or(x, |m| m.max(x)));
                }
            }
            _ => unreachable!("checked numeric above"),
        }
        Ok((count, sum, min, max))
    }

    /// [`SegmentStats`] of the numeric values in `range` (clamped): the
    /// mergeable counterpart of [`numeric_range_stats`]. Integer columns
    /// accumulate their sum in exact `i128`, so segment results merge
    /// associatively and any decomposition of a window produces the same
    /// final value bit for bit; min/max fold the same `f64` conversions the
    /// sequential path folds. Float columns keep the ascending `f64` fold.
    ///
    /// [`numeric_range_stats`]: Column::numeric_range_stats
    pub fn segment_range_stats(&self, range: RowRange) -> Result<SegmentStats> {
        if !self.data_type().is_numeric() {
            return Err(DbTouchError::TypeMismatch {
                expected: "numeric".into(),
                found: self.data_type().name(),
            });
        }
        if let ColumnData::Paged(p) = &self.data {
            return p.segment_range_stats(range);
        }
        let range = range.clamp_to(self.len());
        let mut min: Option<f64> = None;
        let mut max: Option<f64> = None;
        match &self.data {
            ColumnData::Int64(v) | ColumnData::Timestamp(v) => {
                let mut sum = 0i128;
                for &x in &v[range.as_usize_range()] {
                    sum += x as i128;
                    let xf = x as f64;
                    min = Some(min.map_or(xf, |m| m.min(xf)));
                    max = Some(max.map_or(xf, |m| m.max(xf)));
                }
                Ok(SegmentStats {
                    count: range.len(),
                    sum: SegmentSum::Int(sum),
                    min,
                    max,
                })
            }
            ColumnData::Float64(v) => {
                let mut sum = 0.0;
                for &x in &v[range.as_usize_range()] {
                    sum += x;
                    min = Some(min.map_or(x, |m| m.min(x)));
                    max = Some(max.map_or(x, |m| m.max(x)));
                }
                Ok(SegmentStats {
                    count: range.len(),
                    sum: SegmentSum::Float(sum),
                    min,
                    max,
                })
            }
            _ => unreachable!("checked numeric above"),
        }
    }

    /// Build a new column containing every `step`-th row starting at row 0.
    /// This is the primitive used to build the sample hierarchy. A `step` of 0
    /// is treated as 1. Errors only for paged-backed columns whose pages fail
    /// to read (I/O fault or corruption) — inline columns cannot fail.
    pub fn strided_sample(&self, step: u64) -> Result<Column> {
        let step = step.max(1) as usize;
        if let ColumnData::Paged(p) = &self.data {
            // Sampling a paged column materializes the sample in memory (it
            // is a derived, smaller column). The page-at-a-time batch path
            // decodes each page once and faults only pages that hold a
            // sampled row — no per-row `get()` faults.
            let (raw, _) = p.strided_row_bytes(step as u64)?;
            return Column::from_raw_bytes(self.name.clone(), p.data_type(), raw);
        }
        let data = match &self.data {
            ColumnData::Int64(v) => ColumnData::Int64(v.iter().step_by(step).copied().collect()),
            ColumnData::Float64(v) => {
                ColumnData::Float64(v.iter().step_by(step).copied().collect())
            }
            ColumnData::Bool(v) => ColumnData::Bool(v.iter().step_by(step).copied().collect()),
            ColumnData::Timestamp(v) => {
                ColumnData::Timestamp(v.iter().step_by(step).copied().collect())
            }
            ColumnData::FixedStr { width, bytes } => {
                let w = *width as usize;
                let n = bytes.len().checked_div(w).unwrap_or(0);
                let mut out = Vec::with_capacity((n / step + 1) * w);
                let mut i = 0;
                while i < n {
                    out.extend_from_slice(&bytes[i * w..(i + 1) * w]);
                    i += step;
                }
                ColumnData::FixedStr {
                    width: *width,
                    bytes: out,
                }
            }
            ColumnData::Paged(_) => unreachable!("materialized above"),
        };
        Ok(Column {
            name: self.name.clone(),
            data,
        })
    }

    /// Build a new column restricted to the rows of `range` (clamped).
    /// Errors only for paged-backed columns whose pages fail to read.
    pub fn project_range(&self, range: RowRange) -> Result<Column> {
        let range = range.clamp_to(self.len());
        if let ColumnData::Paged(p) = &self.data {
            // Page-at-a-time batch decode: each page in the range faults and
            // decodes once, instead of one `get()` fault per row.
            let raw = p.range_raw_bytes(range)?;
            return Column::from_raw_bytes(self.name.clone(), p.data_type(), raw);
        }
        let r = range.as_usize_range();
        let data = match &self.data {
            ColumnData::Int64(v) => ColumnData::Int64(v[r].to_vec()),
            ColumnData::Float64(v) => ColumnData::Float64(v[r].to_vec()),
            ColumnData::Bool(v) => ColumnData::Bool(v[r].to_vec()),
            ColumnData::Timestamp(v) => ColumnData::Timestamp(v[r].to_vec()),
            ColumnData::FixedStr { width, bytes } => {
                let w = *width as usize;
                ColumnData::FixedStr {
                    width: *width,
                    bytes: bytes[r.start * w..r.end * w].to_vec(),
                }
            }
            ColumnData::Paged(_) => unreachable!("materialized above"),
        };
        Ok(Column {
            name: self.name.clone(),
            data,
        })
    }

    /// Iterate over all values (allocates per string row only).
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(RowId(i)).expect("in bounds"))
    }

    /// Direct access to `i64` data when the column is an integer column; used by
    /// hot paths in the benchmark workloads.
    pub fn as_i64_slice(&self) -> Option<&[i64]> {
        match &self.data {
            ColumnData::Int64(v) | ColumnData::Timestamp(v) => Some(v),
            _ => None,
        }
    }

    /// Direct access to `f64` data when the column is a float column.
    pub fn as_f64_slice(&self) -> Option<&[f64]> {
        match &self.data {
            ColumnData::Float64(v) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_col() -> Column {
        Column::from_i64("c", (0..10).collect())
    }

    #[test]
    fn construction_and_metadata() {
        let c = int_col();
        assert_eq!(c.name(), "c");
        assert_eq!(c.len(), 10);
        assert!(!c.is_empty());
        assert_eq!(c.data_type(), DataType::Int64);
        assert_eq!(c.byte_size(), 80);
    }

    #[test]
    fn get_in_and_out_of_bounds() {
        let c = int_col();
        assert_eq!(c.get(RowId(3)).unwrap(), Value::Int(3));
        assert!(matches!(
            c.get(RowId(10)),
            Err(DbTouchError::RowOutOfBounds { row: 10, len: 10 })
        ));
    }

    #[test]
    fn f64_at_fast_path() {
        let c = int_col();
        assert_eq!(c.f64_at(RowId(7)).unwrap(), 7.0);
        let s = Column::from_strings("s", 4, &["a", "b"]).unwrap();
        assert!(s.f64_at(RowId(0)).is_err());
        assert!(c.f64_at(RowId(99)).is_err());
    }

    #[test]
    fn push_type_checked() {
        let mut c = Column::empty("x", DataType::Int64);
        c.push(Value::Int(5)).unwrap();
        assert!(c.push(Value::Float(1.0)).is_err());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn string_column_round_trip() {
        let c = Column::from_strings("names", 8, &["ann", "bob", "charlie"]).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(RowId(0)).unwrap(), Value::Str("ann".into()));
        assert_eq!(c.get(RowId(2)).unwrap(), Value::Str("charlie".into()));
        assert_eq!(c.data_type(), DataType::FixedStr(8));
    }

    #[test]
    fn string_too_wide_rejected() {
        assert!(Column::from_strings("names", 2, &["abc"]).is_err());
        let mut c = Column::empty("n", DataType::FixedStr(2));
        assert!(c.push(Value::Str("abc".into())).is_err());
    }

    #[test]
    fn from_values_dynamic() {
        let vals = vec![Value::Float(1.0), Value::Float(2.5)];
        let c = Column::from_values("f", DataType::Float64, &vals).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(RowId(1)).unwrap(), Value::Float(2.5));
        assert!(Column::from_values("f", DataType::Int64, &vals).is_err());
    }

    #[test]
    fn slice_clamps() {
        let c = int_col();
        let vals = c.slice(RowRange::new(8, 20));
        assert_eq!(vals, vec![Value::Int(8), Value::Int(9)]);
        assert!(c.slice(RowRange::new(20, 30)).is_empty());
    }

    #[test]
    fn numeric_range_stats_basic() {
        let c = int_col();
        let (count, sum, min, max) = c.numeric_range_stats(RowRange::new(2, 5)).unwrap();
        assert_eq!(count, 3);
        assert_eq!(sum, 2.0 + 3.0 + 4.0);
        assert_eq!(min, Some(2.0));
        assert_eq!(max, Some(4.0));
    }

    #[test]
    fn numeric_range_stats_empty_and_nonnumeric() {
        let c = int_col();
        let (count, sum, min, max) = c.numeric_range_stats(RowRange::new(10, 20)).unwrap();
        assert_eq!((count, sum, min, max), (0, 0.0, None, None));
        let s = Column::from_strings("s", 4, &["a"]).unwrap();
        assert!(s.numeric_range_stats(RowRange::new(0, 1)).is_err());
    }

    #[test]
    fn segment_range_stats_matches_numeric_range_stats() {
        let c = int_col();
        let seg = c.segment_range_stats(RowRange::new(2, 7)).unwrap();
        let (count, sum, min, max) = c.numeric_range_stats(RowRange::new(2, 7)).unwrap();
        assert_eq!(seg.as_tuple(), (count, sum, min, max));
        assert_eq!(seg.sum, crate::segment::SegmentSum::Int(2 + 3 + 4 + 5 + 6));
        let f = Column::from_f64("f", vec![0.5, 1.5, 2.5]);
        let seg = f.segment_range_stats(RowRange::new(0, 3)).unwrap();
        assert_eq!(seg.sum, crate::segment::SegmentSum::Float(4.5));
        let s = Column::from_strings("s", 4, &["a"]).unwrap();
        assert!(s.segment_range_stats(RowRange::new(0, 1)).is_err());
        // Clamped empty ranges are the typed identity.
        let empty = c.segment_range_stats(RowRange::new(50, 60)).unwrap();
        assert_eq!(empty, crate::segment::SegmentStats::empty(true));
    }

    #[test]
    fn segment_stats_merge_reconstructs_whole_window() {
        let c = int_col();
        let whole = c.segment_range_stats(RowRange::new(0, 10)).unwrap();
        let mut acc = crate::segment::SegmentStats::empty(true);
        for seg in crate::segment::plan_segments(RowRange::new(0, 10), 3) {
            acc.merge(&c.segment_range_stats(seg.range).unwrap());
        }
        assert_eq!(acc, whole);
    }

    #[test]
    fn strided_sample_every_other_row() {
        let c = int_col();
        let s = c.strided_sample(2).unwrap();
        assert_eq!(s.len(), 5);
        assert_eq!(s.get(RowId(2)).unwrap(), Value::Int(4));
        // step 0 behaves as step 1
        assert_eq!(c.strided_sample(0).unwrap().len(), 10);
    }

    #[test]
    fn strided_sample_strings() {
        let c = Column::from_strings("s", 4, &["a", "b", "c", "d", "e"]).unwrap();
        let s = c.strided_sample(2).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(RowId(1)).unwrap(), Value::Str("c".into()));
    }

    #[test]
    fn project_range_copies_rows() {
        let c = int_col();
        let p = c.project_range(RowRange::new(3, 6)).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.get(RowId(0)).unwrap(), Value::Int(3));
        let s = Column::from_strings("s", 4, &["a", "b", "c"]).unwrap();
        let sp = s.project_range(RowRange::new(1, 3)).unwrap();
        assert_eq!(sp.get(RowId(0)).unwrap(), Value::Str("b".into()));
    }

    #[test]
    fn iter_yields_everything() {
        let c = int_col();
        let total: i64 = c.iter().map(|v| v.as_i64().unwrap()).sum();
        assert_eq!(total, 45);
    }

    #[test]
    fn typed_slice_accessors() {
        let c = int_col();
        assert_eq!(c.as_i64_slice().unwrap().len(), 10);
        assert!(c.as_f64_slice().is_none());
        let f = Column::from_f64("f", vec![1.0, 2.0]);
        assert!(f.as_f64_slice().is_some());
    }

    #[test]
    fn rename() {
        let mut c = int_col();
        c.set_name("renamed");
        assert_eq!(c.name(), "renamed");
    }

    #[test]
    fn empty_string_column_len() {
        let c = Column::empty("s", DataType::FixedStr(0));
        assert_eq!(c.len(), 0);
        assert!(c.is_empty());
    }

    fn paged_copy(col: &Column, policy: &EncodingPolicy, tag: &str) -> Column {
        use std::sync::atomic::{AtomicU32, Ordering};
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dbtouch-column-{}-{}-{tag}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let pager =
            std::sync::Arc::new(Pager::open_or_create(dir.join("pages.dat"), 256, 64).unwrap());
        let extent = col.persist_to_encoded(&pager, policy).unwrap();
        Column::paged(col.name(), PagedColumn::new(pager, extent).unwrap())
    }

    #[test]
    fn paged_byte_size_reports_persisted_payload() {
        let col = Column::from_i64("runs", (0..3000).map(|i| i / 500).collect());
        let raw = paged_copy(&col, &EncodingPolicy::disabled(), "size-raw");
        assert_eq!(raw.byte_size(), 3000 * 8);
        let packed = paged_copy(&col, &EncodingPolicy::default(), "size-packed");
        assert!(packed.paged_extent().unwrap().is_packed());
        assert!(
            packed.byte_size() < raw.byte_size() / 2,
            "encoded byte_size {} should be well under raw {}",
            packed.byte_size(),
            raw.byte_size()
        );
        assert_eq!(col.byte_size(), 3000 * 8);
    }

    #[test]
    fn paged_strided_sample_and_project_match_inline() {
        let col = Column::from_i64("runs", (0..3000).map(|i| (i / 100) % 5).collect());
        for policy in [EncodingPolicy::disabled(), EncodingPolicy::default()] {
            let paged = paged_copy(&col, &policy, "sample-project");
            for step in [1, 7, 997] {
                assert_eq!(
                    paged.strided_sample(step).unwrap(),
                    col.strided_sample(step).unwrap()
                );
            }
            for (start, end) in [(0, 3000), (250, 1777), (2999, 3000)] {
                assert_eq!(
                    paged.project_range(RowRange::new(start, end)).unwrap(),
                    col.project_range(RowRange::new(start, end)).unwrap()
                );
            }
            assert_eq!(paged.materialized().unwrap(), col);
            assert_eq!(paged, col);
        }
    }
}
