//! Zone-map indexing per sample level.
//!
//! Section 2.6 ("Indexing"): "When querying an indexed column or sets of
//! columns, then the slide gesture becomes the equivalent of an index scan.
//! Having a hierarchy of samples directly affects indexing decisions; for
//! example, dbTouch can maintain a separate index for each sample level."
//!
//! A [`ZoneMapIndex`] partitions a column into fixed-size blocks and keeps the
//! minimum and maximum value of each block. Selection predicates can then skip
//! blocks whose `[min, max]` interval cannot contain matching rows, which is
//! what turns a slide over an indexed column into an index scan: touches that
//! land in skippable blocks are answered without reading the block at all.
//!
//! Encoded paged columns (see [`crate::encoding`]) need no special handling
//! here: [`ZoneMapIndex::build`] goes through `Column::segment_range_stats`,
//! which aggregates RLE runs and dictionary codes directly, so building over
//! an encoded column yields bit-identical zones (and exact block sums) at a
//! fraction of the decode work — a constant run is just the degenerate zone
//! map whose block min equals its max.

use crate::column::Column;
use crate::segment::{SegmentStats, SegmentSum};
use dbtouch_types::{DbTouchError, Result, RowRange};
use serde::{Deserialize, Serialize};

/// Per-block minimum/maximum index over a numeric column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZoneMapIndex {
    block_rows: u64,
    column_len: u64,
    /// `(min, max)` per block, in block order.
    zones: Vec<(f64, f64)>,
    /// Exact per-block `i128` sums, kept for integer columns only. With them,
    /// a block-aligned segment can be *answered* from the index — count, sum,
    /// min and max — bit-identically to scanning it, so the segment kernel
    /// skips the data entirely (see [`segment_stats`](Self::segment_stats)).
    sums: Option<Vec<i128>>,
}

impl ZoneMapIndex {
    /// Build a zone map with `block_rows` rows per block over a numeric column.
    /// Integer columns also record exact per-block sums.
    pub fn build(column: &Column, block_rows: u64) -> Result<ZoneMapIndex> {
        if !column.data_type().is_numeric() {
            return Err(DbTouchError::TypeMismatch {
                expected: "numeric".into(),
                found: column.data_type().name(),
            });
        }
        let block_rows = block_rows.max(1);
        let len = column.len();
        let integer = column.data_type().is_integer();
        let block_count = len.div_ceil(block_rows);
        let mut zones = Vec::with_capacity(block_count as usize);
        let mut sums = integer.then(|| Vec::with_capacity(block_count as usize));
        for b in 0..block_count {
            let range = RowRange::new(b * block_rows, ((b + 1) * block_rows).min(len));
            let stats = column.segment_range_stats(range)?;
            // Blocks are never empty because block_count is derived from len.
            zones.push((stats.min.unwrap_or(f64::NAN), stats.max.unwrap_or(f64::NAN)));
            if let (Some(sums), SegmentSum::Int(s)) = (sums.as_mut(), stats.sum) {
                sums.push(s);
            }
        }
        Ok(ZoneMapIndex {
            block_rows,
            column_len: len,
            zones,
            sums,
        })
    }

    /// Rebuild a zone map from its persisted parts (inverse of
    /// [`zones`](ZoneMapIndex::zones) + the geometry accessors). The zone
    /// count must match the geometry. Block sums, if any, are attached with
    /// [`with_block_sums`](Self::with_block_sums).
    pub fn from_parts(
        block_rows: u64,
        column_len: u64,
        zones: Vec<(f64, f64)>,
    ) -> Result<ZoneMapIndex> {
        let block_rows = block_rows.max(1);
        if zones.len() as u64 != column_len.div_ceil(block_rows) {
            return Err(DbTouchError::Corrupt(format!(
                "zone map claims {} blocks for {column_len} rows of {block_rows}",
                zones.len()
            )));
        }
        Ok(ZoneMapIndex {
            block_rows,
            column_len,
            zones,
            sums: None,
        })
    }

    /// Attach persisted exact per-block sums (one per zone).
    pub fn with_block_sums(mut self, sums: Vec<i128>) -> Result<ZoneMapIndex> {
        if sums.len() != self.zones.len() {
            return Err(DbTouchError::Corrupt(format!(
                "zone map has {} blocks but {} block sums",
                self.zones.len(),
                sums.len()
            )));
        }
        self.sums = Some(sums);
        Ok(self)
    }

    /// Exact per-block sums, present for integer columns.
    pub fn block_sums(&self) -> Option<&[i128]> {
        self.sums.as_deref()
    }

    /// Answer a block-aligned segment from the index alone, bit-identically
    /// to scanning it: exact `i128` sum from the stored block sums, min/max
    /// folded across block bounds (associative, so identical to the
    /// per-element fold). Returns `None` unless sums are present and `range`
    /// is non-empty, within the column, and block-aligned at both ends (the
    /// column end counts as aligned).
    pub fn segment_stats(&self, range: RowRange) -> Option<SegmentStats> {
        let sums = self.sums.as_ref()?;
        if range.start >= range.end
            || range.end > self.column_len
            || !range.start.is_multiple_of(self.block_rows)
            || (!range.end.is_multiple_of(self.block_rows) && range.end != self.column_len)
        {
            return None;
        }
        let first = (range.start / self.block_rows) as usize;
        let last = range.end.div_ceil(self.block_rows) as usize;
        let mut stats = SegmentStats::empty(true);
        let mut sum = 0i128;
        for (b, block_sum) in sums.iter().enumerate().take(last).skip(first) {
            let (bmin, bmax) = self.zones[b];
            sum += block_sum;
            stats.count += self.block_range(b).len();
            stats.min = Some(stats.min.map_or(bmin, |m| m.min(bmin)));
            stats.max = Some(stats.max.map_or(bmax, |m| m.max(bmax)));
        }
        stats.sum = SegmentSum::Int(sum);
        Some(stats)
    }

    /// True if any block overlapping `range` might contain a value in
    /// `[lo, hi]` — the per-segment prune decision.
    pub fn range_may_match(&self, range: RowRange, lo: f64, hi: f64) -> bool {
        if range.start >= range.end || range.start >= self.column_len {
            return false;
        }
        let first = (range.start / self.block_rows) as usize;
        let last = range.end.min(self.column_len).div_ceil(self.block_rows) as usize;
        (first..last).any(|b| self.block_may_match(b, lo, hi))
    }

    /// The `(min, max)` pairs of every block, in block order.
    pub fn zones(&self) -> &[(f64, f64)] {
        &self.zones
    }

    /// Rows covered by the index (the indexed column's length).
    pub fn column_len(&self) -> u64 {
        self.column_len
    }

    /// Rows per block.
    pub fn block_rows(&self) -> u64 {
        self.block_rows
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.zones.len()
    }

    /// The row range covered by block `b`.
    pub fn block_range(&self, b: usize) -> RowRange {
        let start = b as u64 * self.block_rows;
        RowRange::new(start, (start + self.block_rows).min(self.column_len))
    }

    /// `(min, max)` of block `b`.
    pub fn block_bounds(&self, b: usize) -> Option<(f64, f64)> {
        self.zones.get(b).copied()
    }

    /// True if block `b` might contain a value in `[lo, hi]`.
    pub fn block_may_match(&self, b: usize, lo: f64, hi: f64) -> bool {
        match self.zones.get(b) {
            Some(&(bmin, bmax)) => bmax >= lo && bmin <= hi,
            None => false,
        }
    }

    /// True if the block containing `row` might contain a value in `[lo, hi]`.
    /// Rows beyond the column are reported as non-matching.
    pub fn row_block_may_match(&self, row: u64, lo: f64, hi: f64) -> bool {
        if row >= self.column_len {
            return false;
        }
        self.block_may_match((row / self.block_rows) as usize, lo, hi)
    }

    /// The row ranges of all blocks that may contain values in `[lo, hi]`.
    pub fn candidate_ranges(&self, lo: f64, hi: f64) -> Vec<RowRange> {
        (0..self.block_count())
            .filter(|&b| self.block_may_match(b, lo, hi))
            .map(|b| self.block_range(b))
            .collect()
    }

    /// Fraction of blocks skipped for a `[lo, hi]` predicate.
    pub fn selectivity(&self, lo: f64, hi: f64) -> f64 {
        if self.zones.is_empty() {
            return 0.0;
        }
        let matching = (0..self.block_count())
            .filter(|&b| self.block_may_match(b, lo, hi))
            .count();
        1.0 - matching as f64 / self.block_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_column() -> Column {
        Column::from_i64("c", (0..100).collect())
    }

    #[test]
    fn build_and_block_geometry() {
        let idx = ZoneMapIndex::build(&sorted_column(), 10).unwrap();
        assert_eq!(idx.block_count(), 10);
        assert_eq!(idx.block_rows(), 10);
        assert_eq!(idx.block_range(0), RowRange::new(0, 10));
        assert_eq!(idx.block_range(9), RowRange::new(90, 100));
        assert_eq!(idx.block_bounds(3), Some((30.0, 39.0)));
        assert_eq!(idx.block_bounds(10), None);
    }

    #[test]
    fn uneven_last_block() {
        let c = Column::from_i64("c", (0..25).collect());
        let idx = ZoneMapIndex::build(&c, 10).unwrap();
        assert_eq!(idx.block_count(), 3);
        assert_eq!(idx.block_range(2), RowRange::new(20, 25));
        assert_eq!(idx.block_bounds(2), Some((20.0, 24.0)));
    }

    #[test]
    fn block_matching() {
        let idx = ZoneMapIndex::build(&sorted_column(), 10).unwrap();
        assert!(idx.block_may_match(2, 25.0, 27.0));
        assert!(!idx.block_may_match(2, 35.0, 40.0));
        assert!(idx.row_block_may_match(22, 25.0, 27.0));
        assert!(!idx.row_block_may_match(55, 25.0, 27.0));
        assert!(!idx.row_block_may_match(1000, 0.0, 100.0));
    }

    #[test]
    fn candidate_ranges_and_selectivity() {
        let idx = ZoneMapIndex::build(&sorted_column(), 10).unwrap();
        let ranges = idx.candidate_ranges(15.0, 34.0);
        assert_eq!(
            ranges,
            vec![
                RowRange::new(10, 20),
                RowRange::new(20, 30),
                RowRange::new(30, 40)
            ]
        );
        assert!((idx.selectivity(15.0, 34.0) - 0.7).abs() < 1e-12);
        assert_eq!(idx.selectivity(-100.0, 1000.0), 0.0);
        assert_eq!(idx.selectivity(1000.0, 2000.0), 1.0);
    }

    #[test]
    fn integer_columns_record_exact_block_sums() {
        let idx = ZoneMapIndex::build(&sorted_column(), 10).unwrap();
        let sums = idx.block_sums().unwrap();
        assert_eq!(sums.len(), 10);
        assert_eq!(sums[3], (30..40).sum::<i128>());
        let f = Column::from_f64("f", vec![1.0, 2.0, 3.0]);
        assert!(ZoneMapIndex::build(&f, 2).unwrap().block_sums().is_none());
    }

    #[test]
    fn segment_stats_answer_equals_scanning() {
        let c = Column::from_i64("c", (0..95).map(|v| v * 7 - 300).collect());
        let idx = ZoneMapIndex::build(&c, 10).unwrap();
        // Block-aligned interior segment and ragged column tail.
        for (start, end) in [(20, 50), (0, 95), (90, 95)] {
            let answered = idx.segment_stats(RowRange::new(start, end)).unwrap();
            let scanned = c.segment_range_stats(RowRange::new(start, end)).unwrap();
            assert_eq!(answered, scanned);
        }
        // Unaligned, out-of-bounds, and empty segments are not answerable.
        assert!(idx.segment_stats(RowRange::new(5, 20)).is_none());
        assert!(idx.segment_stats(RowRange::new(20, 45)).is_none());
        assert!(idx.segment_stats(RowRange::new(0, 100)).is_none());
        assert!(idx.segment_stats(RowRange::new(10, 10)).is_none());
        // Float indexes have no sums, so they never answer.
        let f = Column::from_f64("f", (0..40).map(|v| v as f64).collect());
        let fidx = ZoneMapIndex::build(&f, 10).unwrap();
        assert!(fidx.segment_stats(RowRange::new(0, 40)).is_none());
    }

    #[test]
    fn with_block_sums_round_trip_and_validation() {
        let built = ZoneMapIndex::build(&sorted_column(), 10).unwrap();
        let restored = ZoneMapIndex::from_parts(10, 100, built.zones().to_vec()).unwrap();
        assert!(restored.block_sums().is_none());
        let restored = restored
            .with_block_sums(built.block_sums().unwrap().to_vec())
            .unwrap();
        assert_eq!(restored, built);
        let bad = ZoneMapIndex::from_parts(10, 100, built.zones().to_vec()).unwrap();
        assert!(bad.with_block_sums(vec![0; 3]).is_err());
    }

    #[test]
    fn range_matching_spans_blocks() {
        let idx = ZoneMapIndex::build(&sorted_column(), 10).unwrap();
        assert!(idx.range_may_match(RowRange::new(0, 100), 25.0, 27.0));
        assert!(idx.range_may_match(RowRange::new(20, 30), 25.0, 27.0));
        assert!(!idx.range_may_match(RowRange::new(30, 100), 25.0, 27.0));
        assert!(!idx.range_may_match(RowRange::new(0, 0), 25.0, 27.0));
        assert!(!idx.range_may_match(RowRange::new(200, 300), 0.0, 100.0));
    }

    #[test]
    fn non_numeric_rejected() {
        let c = Column::from_strings("s", 4, &["a", "b"]).unwrap();
        assert!(ZoneMapIndex::build(&c, 10).is_err());
    }

    #[test]
    fn empty_column_index() {
        let c = Column::from_i64("c", vec![]);
        let idx = ZoneMapIndex::build(&c, 10).unwrap();
        assert_eq!(idx.block_count(), 0);
        assert!(idx.candidate_ranges(0.0, 1.0).is_empty());
        assert_eq!(idx.selectivity(0.0, 1.0), 0.0);
    }

    #[test]
    fn encoded_paged_columns_index_identically() {
        use crate::encoding::EncodingPolicy;
        use crate::pager::{PagedColumn, Pager};
        use std::sync::Arc;
        // Long runs of a handful of values: packs RLE/dict under the default
        // policy.
        let c = Column::from_i64("c", (0..3000).map(|i| (i / 300) % 4).collect());
        let expected = ZoneMapIndex::build(&c, 128).unwrap();
        let dir = std::env::temp_dir().join(format!("dbtouch-index-enc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let pager =
            std::sync::Arc::new(Pager::open_or_create(dir.join("pages.dat"), 256, 64).unwrap());
        for policy in [EncodingPolicy::disabled(), EncodingPolicy::default()] {
            let extent = c.persist_to_encoded(&pager, &policy).unwrap();
            assert_eq!(extent.is_packed(), policy.enabled);
            let paged = Column::paged("c", PagedColumn::new(Arc::clone(&pager), extent).unwrap());
            let idx = ZoneMapIndex::build(&paged, 128).unwrap();
            assert_eq!(idx, expected);
            // Constant blocks degenerate to min == max, so a predicate on
            // any other value prunes them without touching data.
            assert_eq!(idx.block_bounds(0), Some((0.0, 0.0)));
            assert!(!idx.block_may_match(0, 1.0, 3.0));
            // Block-aligned segments answer from stored sums either way.
            let answered = idx.segment_stats(RowRange::new(128, 512)).unwrap();
            assert_eq!(
                answered,
                c.segment_range_stats(RowRange::new(128, 512)).unwrap()
            );
        }
    }

    #[test]
    fn zero_block_rows_clamped() {
        let idx = ZoneMapIndex::build(&sorted_column(), 0).unwrap();
        assert_eq!(idx.block_rows(), 1);
        assert_eq!(idx.block_count(), 100);
    }
}
