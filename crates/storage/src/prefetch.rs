//! Prefetching of anticipated data regions.
//!
//! Section 2.6 ("Prefetching Data"): "dbTouch can extrapolate the gesture
//! progression (speed and direction) and fetch the expected entries such that
//! they are readily available if the gesture resumes."
//!
//! The [`Prefetcher`] records prefetch *requests* (row ranges that the kernel's
//! policy expects to be touched next) and answers whether a later access was
//! covered by a previous request. All data is in memory in this reproduction,
//! so the benefit of prefetching is modelled as a per-row cost difference:
//! rows served from a prefetched (or cached) region cost
//! [`Prefetcher::WARM_COST_NANOS`] while cold rows cost
//! [`Prefetcher::COLD_COST_NANOS`], numbers in the ballpark of an L2 hit versus
//! a main-memory miss. The ablation benchmark aggregates these simulated costs
//! together with the real wall-clock work of computing the summaries.

use dbtouch_types::{RowId, RowRange};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Statistics maintained by a [`Prefetcher`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchStats {
    /// Prefetch requests issued.
    pub requests: u64,
    /// Total rows requested across all prefetches.
    pub rows_prefetched: u64,
    /// Accesses that fell inside a previously prefetched region.
    pub useful_hits: u64,
    /// Accesses that fell outside every prefetched region.
    pub cold_accesses: u64,
}

impl PrefetchStats {
    /// Fraction of accesses that were covered by a prefetch.
    pub fn hit_rate(&self) -> f64 {
        let total = self.useful_hits + self.cold_accesses;
        if total == 0 {
            0.0
        } else {
            self.useful_hits as f64 / total as f64
        }
    }

    /// Fraction of prefetched rows that were actually touched (0 when nothing
    /// was prefetched). A low ratio means the extrapolation is wasting work.
    pub fn efficiency(&self) -> f64 {
        if self.rows_prefetched == 0 {
            0.0
        } else {
            (self.useful_hits as f64 / self.rows_prefetched as f64).min(1.0)
        }
    }
}

/// Records prefetched regions and classifies later accesses as warm or cold.
#[derive(Debug, Clone)]
pub struct Prefetcher {
    regions: VecDeque<RowRange>,
    max_regions: usize,
    stats: PrefetchStats,
    enabled: bool,
}

impl Prefetcher {
    /// Simulated cost of touching a row that was prefetched or recently seen.
    pub const WARM_COST_NANOS: u64 = 20;
    /// Simulated cost of touching a cold row (cache-miss-like access).
    pub const COLD_COST_NANOS: u64 = 120;

    /// Create a prefetcher that remembers up to `max_regions` outstanding
    /// prefetched regions (oldest are forgotten first).
    pub fn new(max_regions: usize) -> Prefetcher {
        Prefetcher {
            regions: VecDeque::new(),
            max_regions: max_regions.max(1),
            stats: PrefetchStats::default(),
            enabled: true,
        }
    }

    /// A prefetcher that never prefetches; every access is cold.
    pub fn disabled() -> Prefetcher {
        Prefetcher {
            regions: VecDeque::new(),
            max_regions: 1,
            stats: PrefetchStats::default(),
            enabled: false,
        }
    }

    /// Whether prefetching is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Issue a prefetch request for `range`.
    pub fn prefetch(&mut self, range: RowRange) {
        if !self.enabled || range.is_empty() {
            return;
        }
        self.stats.requests += 1;
        self.stats.rows_prefetched += range.len();
        self.regions.push_back(range);
        while self.regions.len() > self.max_regions {
            self.regions.pop_front();
        }
    }

    /// Record an access to `row`; returns `true` (warm) if it was covered by an
    /// outstanding prefetch request.
    pub fn access(&mut self, row: RowId) -> bool {
        if self.enabled && self.regions.iter().any(|r| r.contains(row)) {
            self.stats.useful_hits += 1;
            true
        } else {
            self.stats.cold_accesses += 1;
            false
        }
    }

    /// Simulated access cost for a row, in nanoseconds, based on whether it was
    /// prefetched. Also records the access.
    pub fn access_cost_nanos(&mut self, row: RowId) -> u64 {
        if self.access(row) {
            Self::WARM_COST_NANOS
        } else {
            Self::COLD_COST_NANOS
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> PrefetchStats {
        self.stats
    }

    /// Outstanding prefetched regions (most recent last).
    pub fn outstanding(&self) -> impl Iterator<Item = &RowRange> {
        self.regions.iter()
    }

    /// Forget all outstanding prefetched regions (e.g. when the gesture
    /// direction reverses and the extrapolation is invalidated).
    pub fn invalidate(&mut self) {
        self.regions.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_and_cold_accesses() {
        let mut p = Prefetcher::new(4);
        p.prefetch(RowRange::new(100, 200));
        assert!(p.access(RowId(150)));
        assert!(!p.access(RowId(250)));
        let s = p.stats();
        assert_eq!(s.useful_hits, 1);
        assert_eq!(s.cold_accesses, 1);
        assert_eq!(s.requests, 1);
        assert_eq!(s.rows_prefetched, 100);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disabled_prefetcher_all_cold() {
        let mut p = Prefetcher::disabled();
        p.prefetch(RowRange::new(0, 100));
        assert!(!p.access(RowId(50)));
        assert_eq!(p.stats().requests, 0);
        assert!(!p.is_enabled());
    }

    #[test]
    fn access_costs() {
        let mut p = Prefetcher::new(4);
        p.prefetch(RowRange::new(0, 10));
        assert_eq!(p.access_cost_nanos(RowId(5)), Prefetcher::WARM_COST_NANOS);
        assert_eq!(p.access_cost_nanos(RowId(50)), Prefetcher::COLD_COST_NANOS);
    }

    #[test]
    fn old_regions_forgotten() {
        let mut p = Prefetcher::new(2);
        p.prefetch(RowRange::new(0, 10));
        p.prefetch(RowRange::new(10, 20));
        p.prefetch(RowRange::new(20, 30));
        // the first region has been forgotten
        assert!(!p.access(RowId(5)));
        assert!(p.access(RowId(15)));
        assert!(p.access(RowId(25)));
        assert_eq!(p.outstanding().count(), 2);
    }

    #[test]
    fn invalidate_clears_regions() {
        let mut p = Prefetcher::new(4);
        p.prefetch(RowRange::new(0, 10));
        p.invalidate();
        assert!(!p.access(RowId(5)));
        assert_eq!(p.outstanding().count(), 0);
    }

    #[test]
    fn efficiency_measures_touched_fraction() {
        let mut p = Prefetcher::new(4);
        p.prefetch(RowRange::new(0, 100));
        for i in 0..10u64 {
            p.access(RowId(i));
        }
        assert!((p.stats().efficiency() - 0.1).abs() < 1e-12);
        assert_eq!(Prefetcher::new(4).stats().efficiency(), 0.0);
    }

    #[test]
    fn empty_prefetch_ignored() {
        let mut p = Prefetcher::new(4);
        p.prefetch(RowRange::empty(7));
        assert_eq!(p.stats().requests, 0);
    }

    #[test]
    fn hit_rate_zero_without_accesses() {
        let p = Prefetcher::new(4);
        assert_eq!(p.stats().hit_rate(), 0.0);
    }
}
