//! Property tests for the storage substrate: matrix layout conversions,
//! projections and appends, the region cache, and zone-map completeness.

use dbtouch_storage::cache::RegionCache;
use dbtouch_storage::column::Column;
use dbtouch_storage::index::ZoneMapIndex;
use dbtouch_storage::layout::Layout;
use dbtouch_storage::matrix::Matrix;
use dbtouch_storage::table::Table;
use dbtouch_types::{RowId, RowRange};
use proptest::prelude::*;

fn build_matrix(rows: u64) -> Matrix {
    Matrix::from_table(
        Table::from_columns(
            "t",
            vec![
                Column::from_i64("a", (0..rows as i64).map(|i| i * 7 - 3).collect()),
                Column::from_f64("b", (0..rows).map(|i| i as f64 * 0.25).collect()),
                Column::from_strings(
                    "c",
                    6,
                    &(0..rows)
                        .map(|i| format!("s{}", i % 100))
                        .collect::<Vec<_>>(),
                )
                .unwrap(),
            ],
        )
        .unwrap(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Projecting a row range and appending the projections back in order
    /// reconstructs the original matrix, in both layouts.
    #[test]
    fn project_and_append_reconstruct(rows in 1u64..300, split in 0u64..300) {
        let matrix = build_matrix(rows);
        let split = split % (rows + 1);
        for layout in [Layout::ColumnMajor, Layout::RowMajor] {
            let converted = matrix.converted_to(layout).unwrap();
            let mut rebuilt = converted.empty_like(layout);
            rebuilt.append(&converted.project_rows(RowRange::new(0, split)).unwrap()).unwrap();
            rebuilt.append(&converted.project_rows(RowRange::new(split, rows)).unwrap()).unwrap();
            prop_assert_eq!(rebuilt.row_count(), rows);
            for probe in [0, rows / 2, rows - 1] {
                prop_assert_eq!(
                    rebuilt.get_row(RowId(probe)).unwrap(),
                    matrix.get_row(RowId(probe)).unwrap()
                );
            }
        }
    }

    /// Layout conversion preserves numeric range statistics for every column.
    #[test]
    fn layout_conversion_preserves_stats(rows in 1u64..300, lo in 0u64..300, hi in 0u64..300) {
        let matrix = build_matrix(rows);
        let row_major = matrix.converted_to(Layout::RowMajor).unwrap();
        let range = RowRange::new(lo.min(hi) % rows, (lo.max(hi) % rows) + 1);
        for column in 0..2 {
            let a = matrix.numeric_range_stats(column, range).unwrap();
            let b = row_major.numeric_range_stats(column, range).unwrap();
            prop_assert_eq!(a.0, b.0);
            prop_assert!((a.1 - b.1).abs() < 1e-9);
            prop_assert_eq!(a.2, b.2);
            prop_assert_eq!(a.3, b.3);
        }
    }

    /// The region cache never reports a hit for a row that was not inserted,
    /// and always hits rows inside the most recently inserted region (which can
    /// never have been evicted before a new insert happens).
    #[test]
    fn cache_soundness(
        inserts in prop::collection::vec((0u64..10_000, 1u64..500), 1..30),
        probes in prop::collection::vec(0u64..12_000, 1..50),
        capacity in 100u64..5_000,
    ) {
        let mut cache = RegionCache::new(capacity);
        let mut inserted: Vec<RowRange> = Vec::new();
        for (start, len) in inserts {
            let range = RowRange::new(start, start + len);
            cache.insert(range);
            inserted.push(range);
        }
        for probe in probes {
            let hit = cache.lookup(RowId(probe));
            let was_inserted = inserted.iter().any(|r| r.contains(RowId(probe)));
            if hit {
                prop_assert!(was_inserted, "cache hit for never-inserted row {probe}");
            }
        }
        // rows of the last inserted region are still resident (LRU evicts old
        // regions first and trims oversized regions from their start)
        let last = *inserted.last().unwrap();
        let tail_row = RowId(last.end - 1);
        prop_assert!(cache.lookup(tail_row));
    }

    /// Zone maps are complete: every row whose value satisfies a range
    /// predicate lies in a block the index reports as a candidate.
    #[test]
    fn zone_map_is_complete(
        rows in 1u64..2_000,
        block in 1u64..200,
        lo in -1_000i64..1_000,
        width in 0i64..500,
    ) {
        let values: Vec<i64> = (0..rows as i64).map(|i| (i * 37 + 11) % 701 - 350).collect();
        let column = Column::from_i64("c", values.clone());
        let index = ZoneMapIndex::build(&column, block).unwrap();
        let hi = lo + width;
        let candidates = index.candidate_ranges(lo as f64, hi as f64);
        for (row, &v) in values.iter().enumerate() {
            if v >= lo && v <= hi {
                let covered = candidates.iter().any(|r| r.contains(RowId(row as u64)));
                prop_assert!(covered, "row {row} with value {v} not covered by candidates");
                prop_assert!(index.row_block_may_match(row as u64, lo as f64, hi as f64));
            }
        }
    }
}
