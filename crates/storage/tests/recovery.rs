//! Crash-recovery tests of the persistent catalog store: a directory must
//! always open to its last *valid* manifest epoch — truncated appends,
//! corrupted pages and mangled manifests cost at most the broken epoch, and
//! payload corruption discovered after open surfaces as an error, never a
//! panic or a silent wrong answer.

use dbtouch_storage::column::Column;
use dbtouch_storage::page::PAGE_HEADER_BYTES;
use dbtouch_storage::pager::PagedColumn;
use dbtouch_storage::persist::{CatalogStore, ObjectRecord, StoreManifest, PAGES_FILE};
use dbtouch_types::json::Json;
use dbtouch_types::{DbTouchError, RowId, Value};
use std::fs::OpenOptions;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

const PAGE_SIZE: usize = 256;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dbtouch-recovery-{}-{}-{tag}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Persist a generation of the single object `c` holding `values`, as epoch
/// `epoch`. Returns the page-file length in bytes after the commit.
fn commit_epoch(store: &CatalogStore, epoch: u64, values: &[i64]) -> u64 {
    let column = Column::from_i64("c", values.to_vec());
    let extent = column.persist_to(store.pager()).unwrap();
    let manifest = StoreManifest {
        epoch,
        restructures: 0,
        page_size: store.pager().page_size(),
        committed_pages: store.pager().len_pages(),
        slots: vec![Some(ObjectRecord {
            name: "c".into(),
            is_table: false,
            size_w: 2.0,
            size_h: 10.0,
            action: Json::Null,
            attribute_names: vec!["c".into()],
            row_count: values.len() as u64,
            columns: vec![extent],
            sample_levels: vec![vec![]],
            zone_maps: vec![None],
        })],
    };
    store.commit(&manifest).unwrap();
    store.pager().len_pages() * store.pager().page_size() as u64
}

/// A directory with two committed epochs; returns `(dir, bytes committed by
/// epoch 1)` so tests can surgically break only epoch 2's pages.
fn two_epoch_dir(tag: &str) -> (PathBuf, u64) {
    let dir = temp_dir(tag);
    let store = CatalogStore::create(&dir, PAGE_SIZE, 16).unwrap();
    let epoch1_bytes = commit_epoch(&store, 1, &(0..500).collect::<Vec<_>>());
    commit_epoch(&store, 2, &(1000..1800).collect::<Vec<_>>());
    (dir, epoch1_bytes)
}

fn open_epoch(dir: &PathBuf) -> u64 {
    let (_store, manifest) = CatalogStore::open(dir, 16, PAGE_SIZE).unwrap();
    manifest.expect("a valid manifest must be recovered").epoch
}

#[test]
fn intact_directory_opens_to_newest_epoch() {
    let (dir, _) = two_epoch_dir("intact");
    assert_eq!(open_epoch(&dir), 2);
}

#[test]
fn truncated_page_file_recovers_to_previous_epoch() {
    // A crash mid-append: epoch 2's pages are partially written, epoch 1's
    // are intact. Open must fall back to epoch 1, not panic and not serve
    // epoch 2.
    let (dir, epoch1_bytes) = two_epoch_dir("truncate");
    let pages = dir.join(PAGES_FILE);
    let file = OpenOptions::new().write(true).open(&pages).unwrap();
    file.set_len(epoch1_bytes + (PAGE_SIZE / 2) as u64).unwrap();
    drop(file);
    assert_eq!(open_epoch(&dir), 1);
}

#[test]
fn corrupted_page_mid_file_recovers_to_previous_epoch() {
    // Bit rot (or a torn write) inside one of epoch 2's pages, hitting its
    // header: the open-time header scan rejects epoch 2 and recovers 1.
    let (dir, epoch1_bytes) = two_epoch_dir("corrupt-header");
    let pages = dir.join(PAGES_FILE);
    let mut bytes = std::fs::read(&pages).unwrap();
    let victim = epoch1_bytes as usize + PAGE_SIZE; // second page of epoch 2
    for b in &mut bytes[victim..victim + PAGE_HEADER_BYTES] {
        *b ^= 0xff;
    }
    std::fs::write(&pages, &bytes).unwrap();
    assert_eq!(open_epoch(&dir), 1);
}

#[test]
fn payload_corruption_is_an_error_at_fault_time_not_a_panic() {
    // Corruption that leaves headers intact passes the (cheap) open-time
    // scan; the checksum catches it when the page faults, as a Corrupt
    // error the session layer can surface.
    let (dir, epoch1_bytes) = two_epoch_dir("corrupt-payload");
    let pages = dir.join(PAGES_FILE);
    let mut bytes = std::fs::read(&pages).unwrap();
    let victim = epoch1_bytes as usize + PAGE_SIZE + PAGE_HEADER_BYTES + 8;
    bytes[victim] ^= 0xff;
    std::fs::write(&pages, &bytes).unwrap();

    let (store, manifest) = CatalogStore::open(&dir, 16, PAGE_SIZE).unwrap();
    let manifest = manifest.unwrap();
    assert_eq!(manifest.epoch, 2);
    let extent = manifest.slots[0].as_ref().unwrap().columns[0];
    let column = PagedColumn::new(Arc::clone(store.pager()), extent).unwrap();
    // Rows of the intact pages read fine; the corrupted page errors.
    assert_eq!(column.value_at(RowId(0)).unwrap(), Value::Int(1000));
    let result = (0..column.rows()).try_for_each(|r| column.value_at(RowId(r)).map(|_| ()));
    assert!(
        matches!(result, Err(DbTouchError::Corrupt(_))),
        "{result:?}"
    );
    // The exhaustive fsck pass pinpoints it too.
    assert!(store.verify_all(&manifest).is_err());
}

#[test]
fn mangled_manifest_recovers_to_previous_epoch() {
    let (dir, _) = two_epoch_dir("bad-manifest");
    let manifest2 = dir.join("manifest-0000000000000002.json");
    // Flip one byte in the middle of the manifest text: the embedded
    // checksum rejects it.
    let mut bytes = std::fs::read(&manifest2).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] = bytes[mid].wrapping_add(1);
    std::fs::write(&manifest2, &bytes).unwrap();
    assert_eq!(open_epoch(&dir), 1);

    // An outright unparsable manifest is skipped the same way.
    std::fs::write(&manifest2, b"{not json").unwrap();
    assert_eq!(open_epoch(&dir), 1);

    // An empty (crashed-before-write) manifest file too.
    std::fs::write(&manifest2, b"").unwrap();
    assert_eq!(open_epoch(&dir), 1);
}

#[test]
fn unrecoverable_directory_errors_instead_of_serving_empty() {
    let (dir, _) = two_epoch_dir("unrecoverable");
    // Destroy the page file wholesale: both manifests now point at garbage.
    std::fs::write(dir.join(PAGES_FILE), vec![0u8; 64]).unwrap();
    let result = CatalogStore::open(&dir, 16, PAGE_SIZE);
    assert!(
        matches!(result, Err(DbTouchError::Corrupt(_))),
        "open must refuse to silently drop all persisted epochs"
    );
}

#[test]
fn recovered_previous_epoch_reads_its_data_intact() {
    let (dir, epoch1_bytes) = two_epoch_dir("readback");
    let pages = dir.join(PAGES_FILE);
    let file = OpenOptions::new().write(true).open(&pages).unwrap();
    file.set_len(epoch1_bytes).unwrap();
    drop(file);
    let (store, manifest) = CatalogStore::open(&dir, 16, PAGE_SIZE).unwrap();
    let manifest = manifest.unwrap();
    assert_eq!(manifest.epoch, 1);
    let record = manifest.slots[0].as_ref().unwrap();
    let column = PagedColumn::new(Arc::clone(store.pager()), record.columns[0]).unwrap();
    assert_eq!(column.rows(), 500);
    for row in [0u64, 123, 499] {
        assert_eq!(column.value_at(RowId(row)).unwrap(), Value::Int(row as i64));
    }
    // Full checksum verification of the recovered epoch passes.
    store.verify_all(&manifest).unwrap();
}

#[test]
fn appends_after_recovery_commit_a_fresh_epoch() {
    // Recover to epoch 1 after a torn epoch 2, then write an epoch 3 on top:
    // the store must keep working, and the newest manifest wins again.
    let (dir, epoch1_bytes) = two_epoch_dir("append-after");
    let pages = dir.join(PAGES_FILE);
    let file = OpenOptions::new().write(true).open(&pages).unwrap();
    file.set_len(epoch1_bytes + 17).unwrap();
    drop(file);
    {
        let (store, manifest) = CatalogStore::open(&dir, 16, PAGE_SIZE).unwrap();
        assert_eq!(manifest.unwrap().epoch, 1);
        commit_epoch(&store, 3, &(5..55).collect::<Vec<_>>());
    }
    assert_eq!(open_epoch(&dir), 3);
}
