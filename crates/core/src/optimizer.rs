//! Adaptive optimization of per-touch pipelines.
//!
//! Section 2.9 ("Optimization"): with complex queries the order of operators
//! matters, but dbTouch "does not know up front how much data we are going to
//! process" and different data areas have different properties, so the kernel
//! must "figure out the proper optimization decisions on-the-fly" and keep
//! adapting them as the slide moves into new data regions.
//!
//! [`AdaptiveFilterOrder`] maintains, for a conjunction of predicates, running
//! estimates of each predicate's observed selectivity and evaluation cost over
//! the most recent touches, and evaluates the cheapest/most-selective
//! predicates first. Because the estimates are windowed, the order re-adapts
//! when the gesture moves into a data region with different properties.

use crate::operators::filter::Predicate;
use dbtouch_types::{Result, Value};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Per-predicate observed statistics over a sliding window of evaluations.
#[derive(Debug, Clone)]
struct PredicateStats {
    predicate: Predicate,
    cost: u64,
    recent: VecDeque<bool>,
    window: usize,
}

impl PredicateStats {
    fn new(predicate: Predicate, window: usize) -> PredicateStats {
        let cost = predicate.cost();
        PredicateStats {
            predicate,
            cost,
            recent: VecDeque::new(),
            window,
        }
    }

    fn observe(&mut self, passed: bool) {
        self.recent.push_back(passed);
        while self.recent.len() > self.window {
            self.recent.pop_front();
        }
    }

    /// Estimated probability that the predicate passes (optimistic 1.0 when
    /// nothing has been observed yet so that new predicates get explored).
    fn selectivity(&self) -> f64 {
        if self.recent.is_empty() {
            return 1.0;
        }
        self.recent.iter().filter(|&&b| b).count() as f64 / self.recent.len() as f64
    }

    /// Rank: predicates that are cheap and likely to reject come first
    /// (classical `cost / (1 - selectivity)` rank, guarded for selectivity 1).
    fn rank(&self) -> f64 {
        let reject_prob = 1.0 - self.selectivity();
        if reject_prob <= 1e-9 {
            f64::MAX
        } else {
            self.cost as f64 / reject_prob
        }
    }
}

/// A summary of the optimizer's current ordering decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizerSnapshot {
    /// Predicate display strings in current evaluation order.
    pub order: Vec<String>,
    /// Observed pass rate of each predicate, in the same order.
    pub selectivities: Vec<f64>,
    /// Number of values evaluated so far.
    pub evaluations: u64,
    /// Number of re-orderings performed.
    pub reorderings: u64,
}

/// Adaptively ordered conjunction of predicates.
#[derive(Debug, Clone)]
pub struct AdaptiveFilterOrder {
    stats: Vec<PredicateStats>,
    evaluations: u64,
    reorderings: u64,
    reorder_every: u64,
}

impl AdaptiveFilterOrder {
    /// Create an adaptive conjunction over `predicates`, re-evaluating the
    /// order every `reorder_every` evaluations (window of the same size).
    pub fn new(predicates: Vec<Predicate>, reorder_every: u64) -> AdaptiveFilterOrder {
        let window = reorder_every.clamp(8, 4096) as usize;
        AdaptiveFilterOrder {
            stats: predicates
                .into_iter()
                .map(|p| PredicateStats::new(p, window))
                .collect(),
            evaluations: 0,
            reorderings: 0,
            reorder_every: reorder_every.max(1),
        }
    }

    /// Number of predicates in the conjunction.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// True if there are no predicates (everything passes).
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Evaluate the conjunction against a value, updating the observed
    /// statistics and periodically re-ordering the predicates. Short-circuits
    /// on the first failing predicate, exactly like a static conjunction — only
    /// the order differs.
    pub fn eval(&mut self, value: &Value) -> Result<bool> {
        self.evaluations += 1;
        let mut verdict = true;
        for s in self.stats.iter_mut() {
            if !verdict {
                break;
            }
            let passed = s.predicate.eval(value)?;
            s.observe(passed);
            verdict = passed;
        }
        if self.evaluations.is_multiple_of(self.reorder_every) {
            self.reorder();
        }
        Ok(verdict)
    }

    fn reorder(&mut self) {
        let before: Vec<String> = self.stats.iter().map(|s| s.predicate.to_string()).collect();
        self.stats.sort_by(|a, b| {
            a.rank()
                .partial_cmp(&b.rank())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let after: Vec<String> = self.stats.iter().map(|s| s.predicate.to_string()).collect();
        if before != after {
            self.reorderings += 1;
        }
    }

    /// A snapshot of the current ordering and statistics.
    pub fn snapshot(&self) -> OptimizerSnapshot {
        OptimizerSnapshot {
            order: self.stats.iter().map(|s| s.predicate.to_string()).collect(),
            selectivities: self.stats.iter().map(|s| s.selectivity()).collect(),
            evaluations: self.evaluations,
            reorderings: self.reorderings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::filter::CompareOp;

    #[test]
    fn empty_conjunction_passes_everything() {
        let mut f = AdaptiveFilterOrder::new(vec![], 16);
        assert!(f.is_empty());
        assert!(f.eval(&Value::Int(5)).unwrap());
    }

    #[test]
    fn conjunction_semantics_preserved() {
        let mut f = AdaptiveFilterOrder::new(
            vec![
                Predicate::compare(CompareOp::Ge, 0i64),
                Predicate::compare(CompareOp::Lt, 10i64),
            ],
            16,
        );
        assert!(f.eval(&Value::Int(5)).unwrap());
        assert!(!f.eval(&Value::Int(-1)).unwrap());
        assert!(!f.eval(&Value::Int(20)).unwrap());
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn selective_predicate_moves_to_front() {
        // First predicate almost always passes; second almost always rejects.
        let mut f = AdaptiveFilterOrder::new(
            vec![
                Predicate::compare(CompareOp::Ge, 0i64), // always true for our data
                Predicate::compare(CompareOp::Gt, 1_000i64), // always false for our data
            ],
            32,
        );
        let initial_order = f.snapshot().order;
        for i in 0..200i64 {
            let _ = f.eval(&Value::Int(i % 100)).unwrap();
        }
        let snap = f.snapshot();
        assert_ne!(
            snap.order, initial_order,
            "the rejecting predicate should move first"
        );
        assert_eq!(snap.order[0], "x > 1000");
        assert!(snap.reorderings >= 1);
        assert_eq!(snap.evaluations, 200);
        // semantics still correct after reordering
        assert!(!f.eval(&Value::Int(50)).unwrap());
        assert!(f.eval(&Value::Int(2_000)).unwrap());
    }

    #[test]
    fn order_matches_static_conjunction_results() {
        let preds = vec![
            Predicate::between(10i64, 90i64),
            Predicate::compare(CompareOp::Ne, 50i64),
            Predicate::compare(CompareOp::Lt, 80i64),
        ];
        let mut adaptive = AdaptiveFilterOrder::new(preds.clone(), 8);
        for i in 0..200i64 {
            let v = Value::Int(i % 100);
            let expected = preds.iter().all(|p| p.eval(&v).unwrap());
            assert_eq!(adaptive.eval(&v).unwrap(), expected, "mismatch at {i}");
        }
    }

    #[test]
    fn snapshot_selectivities_are_probabilities() {
        let mut f = AdaptiveFilterOrder::new(vec![Predicate::compare(CompareOp::Lt, 50i64)], 200);
        for i in 0..100i64 {
            let _ = f.eval(&Value::Int(i)).unwrap();
        }
        let snap = f.snapshot();
        assert_eq!(snap.selectivities.len(), 1);
        assert!(snap.selectivities[0] > 0.0 && snap.selectivities[0] < 1.0);
    }
}
