//! Morsel-driven segment scans with deterministic merge.
//!
//! A summary window used to be folded row-by-row on the one thread that
//! processed the touch, so a giant object was bounded by a single core. This
//! module fans the window out instead: the window is planned into
//! [`Segment`]s (fixed-row partitions at absolute boundaries, see
//! [`dbtouch_storage::segment`]), the segments become *morsels* on a shared
//! work queue, and a small pool of scan helpers — sized by
//! [`KernelConfig::scan_parallelism`] — steals them while the submitting
//! session claims morsels of its own batch, so progress never depends on a
//! helper being free.
//!
//! **Determinism.** Partial results land in a [`SegmentLedger`] — the same
//! ordered-contribution log as `remote_exec::RefinementLedger`, generalized
//! to segment slots — and are folded *in segment order* once the batch
//! completes. Integer columns accumulate exact `i128` sums, so the fold is
//! also independent of how the window was decomposed; float columns never
//! decompose (f64 addition is order-dependent). Either way, the digest of a
//! run is bit-identical at every `scan_parallelism` and `segment_rows`
//! setting, which is what lets the overlapped remote executor and the local
//! parallel scan compose: both paths compute windows through the one
//! [`window_stats`] kernel below.
//!
//! **Pruning.** At the base level, a segment that exactly covers zone-map
//! blocks of an integer column is *answered* from the index's stored block
//! sums and bounds — bit-identical to scanning it — and counted as pruned.
//!
//! With `scan_parallelism = 1` no pool exists and [`window_stats`] runs the
//! same plan inline on the calling thread: one segment for any window at
//! most `segment_rows` long, i.e. the existing sequential path.

use crate::catalog::ObjectData;
use dbtouch_obs::{
    clear_trace_ctx, set_trace_ctx_full, trace_ctx, MetricSource, MetricValue, Telemetry, TraceCtx,
    TraceEventKind,
};
use dbtouch_storage::segment::{plan_segments, Segment, SegmentStats};
use dbtouch_types::{DbTouchError, Result, RowRange};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// The ordered per-segment contribution log of one fanned-out window:
/// `remote_exec::RefinementLedger`'s ordered-slot discipline, generalized
/// from refinement tickets to segment indexes. Slots resolve in any order
/// (whichever thread finishes first); [`fold`](SegmentLedger::fold) merges
/// them strictly in segment order.
#[derive(Debug)]
pub struct SegmentLedger {
    slots: Vec<Option<SegmentStats>>,
    resolved: usize,
    /// First error any segment produced; the fold is abandoned when set.
    error: Option<DbTouchError>,
    /// Segments answered from the zone-map index without reading data.
    pruned: u64,
}

impl SegmentLedger {
    /// A ledger with `len` unresolved slots.
    pub fn new(len: usize) -> SegmentLedger {
        SegmentLedger {
            slots: vec![None; len],
            resolved: 0,
            error: None,
            pruned: 0,
        }
    }

    /// Resolve slot `index` with its scanned (or index-answered) statistics.
    pub fn resolve(&mut self, index: usize, stats: SegmentStats) {
        debug_assert!(self.slots[index].is_none(), "segment resolved twice");
        self.slots[index] = Some(stats);
        self.resolved += 1;
    }

    /// Resolve slot `index` as failed, recording the first error.
    pub fn resolve_error(&mut self, error: DbTouchError) {
        self.error.get_or_insert(error);
        self.resolved += 1;
    }

    /// Whether every slot has resolved (successfully or not).
    pub fn is_complete(&self) -> bool {
        self.resolved == self.slots.len()
    }

    /// Fold the resolved contributions in segment order into the window's
    /// statistics. Call only when [`is_complete`](SegmentLedger::is_complete);
    /// returns the first recorded error, if any.
    pub fn fold(&mut self) -> Result<SegmentStats> {
        if let Some(error) = self.error.take() {
            return Err(error);
        }
        let mut slots = self.slots.iter().flatten();
        let mut acc = *slots.next().expect("fold of an empty ledger");
        for stats in slots {
            acc.merge(stats);
        }
        Ok(acc)
    }
}

/// One fanned-out window scan: the shared immutable data, the planned
/// segments, a claim cursor, and the ledger the results land in.
struct ScanBatch {
    data: Arc<ObjectData>,
    attribute: usize,
    level: u8,
    segments: Vec<Segment>,
    /// Next unclaimed segment; claimed with one `fetch_add`, so the
    /// submitter and any number of helpers partition the batch without locks.
    next: AtomicUsize,
    ledger: Mutex<SegmentLedger>,
    done: Condvar,
    /// The submitting thread's trace context: helpers stamp it so their
    /// events carry the originating session's trace id (mirroring how async
    /// refinements re-stamp theirs).
    ctx: Option<TraceCtx>,
    /// The submitting session's telemetry hub, for per-segment hot events.
    telemetry: Option<Arc<Telemetry>>,
}

impl ScanBatch {
    /// Claim the next unscanned segment, if any.
    fn claim(&self) -> Option<Segment> {
        let index = self.next.fetch_add(1, Ordering::Relaxed);
        self.segments.get(index).copied()
    }

    /// Whether unclaimed segments remain.
    fn has_work(&self) -> bool {
        self.next.load(Ordering::Relaxed) < self.segments.len()
    }

    /// Scan (or index-answer) one claimed segment and resolve its slot.
    fn process(&self, segment: Segment, shared: &PoolShared, stolen: bool) {
        if let Some(telemetry) = &self.telemetry {
            telemetry.hot_event(TraceEventKind::SegmentScanned, segment.range.len());
        }
        let result = scan_segment(&self.data, self.attribute, self.level, segment);
        shared.segments_scanned.fetch_add(1, Ordering::Relaxed);
        if stolen {
            shared.steals.fetch_add(1, Ordering::Relaxed);
        }
        let mut ledger = self.ledger.lock().unwrap_or_else(|e| e.into_inner());
        match result {
            Ok((stats, answered)) => {
                if answered {
                    ledger.pruned += 1;
                    shared.pruned_segments.fetch_add(1, Ordering::Relaxed);
                }
                ledger.resolve(segment.index, stats);
            }
            Err(e) => ledger.resolve_error(e),
        }
        if ledger.is_complete() {
            self.done.notify_all();
        }
    }

    /// Claim and process segments until none remain, recording the run as
    /// one `"segments"` span (child of the submitting gesture's service
    /// span) when the submitter carried one — each participating thread
    /// contributes one span per batch, `detail` = segments it claimed.
    fn drain(&self, shared: &PoolShared, stolen: bool) {
        let spans = match (&self.telemetry, self.ctx) {
            (Some(telemetry), Some(ctx)) if ctx.span != 0 && telemetry.spans().is_enabled() => {
                Some((telemetry, ctx))
            }
            _ => None,
        };
        let start = spans.map(|(telemetry, _)| telemetry.now_nanos());
        let mut claimed = 0u64;
        while let Some(segment) = self.claim() {
            self.process(segment, shared, stolen);
            claimed += 1;
        }
        if claimed > 0 {
            if let (Some((telemetry, ctx)), Some(start)) = (spans, start) {
                let end = telemetry.now_nanos();
                telemetry.spans().record_span(
                    ctx.session,
                    ctx.trace,
                    ctx.span,
                    "segments",
                    start,
                    end.saturating_sub(start),
                    claimed,
                );
            }
        }
    }
}

#[derive(Default)]
struct PoolQueue {
    batches: Vec<Arc<ScanBatch>>,
    shutdown: bool,
}

/// State shared between the pool handle and its helper threads (helpers hold
/// this, not the pool, so dropping the last pool handle shuts them down).
struct PoolShared {
    queue: Mutex<PoolQueue>,
    available: Condvar,
    segments_scanned: AtomicU64,
    steals: AtomicU64,
    pruned_segments: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
}

/// The shared morsel work queue and its scan-helper pool.
///
/// One pool serves every session of a catalog. A submitted batch is executed
/// cooperatively: the submitter claims and scans segments of its own batch
/// (so a batch completes even when every helper is busy elsewhere) while idle
/// helpers steal segments from whichever queued batch still has work.
pub struct MorselPool {
    shared: Arc<PoolShared>,
    helpers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for MorselPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MorselPool")
            .field("helpers", &self.helpers.len())
            .finish()
    }
}

impl MorselPool {
    /// Spawn a pool with `helpers` scan-helper threads (the submitting
    /// session is the +1 that makes `scan_parallelism` total workers).
    pub fn start(helpers: usize) -> MorselPool {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue::default()),
            available: Condvar::new(),
            segments_scanned: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            pruned_segments: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        });
        let helpers = (0..helpers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dbtouch-scan-{index}"))
                    .spawn(move || helper_loop(&shared))
                    .expect("spawn scan helper thread")
            })
            .collect();
        MorselPool { shared, helpers }
    }

    /// Number of scan-helper threads.
    pub fn helper_count(&self) -> usize {
        self.helpers.len()
    }

    /// Fan one planned window out over the pool and block until every
    /// segment resolved. The calling thread participates (it claims segments
    /// like a helper), so the scan completes even on a saturated pool.
    /// Returns the in-order fold plus how many segments were index-answered.
    pub fn scan(
        &self,
        data: Arc<ObjectData>,
        attribute: usize,
        level: u8,
        segments: Vec<Segment>,
        telemetry: Option<Arc<Telemetry>>,
    ) -> Result<(SegmentStats, u64)> {
        let batch = Arc::new(ScanBatch {
            data,
            attribute,
            level,
            ledger: Mutex::new(SegmentLedger::new(segments.len())),
            segments,
            next: AtomicUsize::new(0),
            done: Condvar::new(),
            ctx: trace_ctx(),
            telemetry,
        });
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.batches.push(Arc::clone(&batch));
            self.shared.available.notify_all();
        }
        // Work on our own batch instead of idling behind the helpers.
        batch.drain(&self.shared, false);
        let mut ledger = batch.ledger.lock().unwrap_or_else(|e| e.into_inner());
        while !ledger.is_complete() {
            ledger = batch.done.wait(ledger).unwrap_or_else(|e| e.into_inner());
        }
        let pruned = ledger.pruned;
        let folded = ledger.fold();
        drop(ledger);
        self.shared.completed.fetch_add(1, Ordering::Relaxed);
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.batches.retain(|b| !Arc::ptr_eq(b, &batch));
        }
        Ok((folded?, pruned))
    }
}

impl MetricSource for MorselPool {
    fn source_name(&self) -> &'static str {
        "morsel"
    }

    fn collect(&self) -> Vec<(&'static str, MetricValue)> {
        let s = &self.shared;
        let submitted = s.submitted.load(Ordering::Relaxed);
        let completed = s.completed.load(Ordering::Relaxed);
        vec![
            (
                "segments_scanned",
                MetricValue::Counter(s.segments_scanned.load(Ordering::Relaxed)),
            ),
            (
                "steals",
                MetricValue::Counter(s.steals.load(Ordering::Relaxed)),
            ),
            (
                "pruned_segments",
                MetricValue::Counter(s.pruned_segments.load(Ordering::Relaxed)),
            ),
            // Batches in flight: submitted but not yet folded. The counters
            // are read independently, so clamp at zero.
            (
                "queue_depth",
                MetricValue::Gauge(submitted.saturating_sub(completed)),
            ),
        ]
    }
}

impl Drop for MorselPool {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.shutdown = true;
            self.shared.available.notify_all();
        }
        for helper in self.helpers.drain(..) {
            let _ = helper.join();
        }
    }
}

/// A helper thread: steal a batch with unclaimed segments, adopt its trace
/// context, drain what can be claimed, repeat.
fn helper_loop(shared: &PoolShared) {
    loop {
        let batch = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(batch) = queue.batches.iter().find(|b| b.has_work()) {
                    break Arc::clone(batch);
                }
                if queue.shutdown {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        // Events emitted while scanning stolen segments are attributed to
        // the gesture that submitted the batch, not to this helper — the
        // span included, so stolen-segment spans nest under the submitting
        // gesture's service span.
        match batch.ctx {
            Some(ctx) => set_trace_ctx_full(ctx),
            None => clear_trace_ctx(),
        }
        batch.drain(shared, true);
        clear_trace_ctx();
    }
}

/// Scan one segment — or answer it from the zone-map index when the segment
/// exactly covers blocks of an indexed integer base column (bit-identical to
/// scanning; see [`dbtouch_storage::ZoneMapIndex::segment_stats`]). Returns
/// the statistics and whether the index answered.
fn scan_segment(
    data: &ObjectData,
    attribute: usize,
    level: u8,
    segment: Segment,
) -> Result<(SegmentStats, bool)> {
    if level == 0 {
        if let Some(index) = data.indexes().get(attribute).and_then(|i| i.as_ref()) {
            if let Some(stats) = index.segment_stats(segment.range) {
                return Ok((stats, true));
            }
        }
    }
    let hierarchy = data
        .hierarchies()
        .get(attribute)
        .ok_or_else(|| DbTouchError::NotFound(format!("attribute {attribute}")))?;
    let column = hierarchy.level(level)?;
    Ok((column.segment_range_stats(segment.range)?, false))
}

/// The merged statistics of one summary window plus how it was executed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowScan {
    /// Rows aggregated.
    pub count: u64,
    /// Sum of the values (converted from the exact integer sum at the end).
    pub sum: f64,
    /// Minimum value, `None` for an empty window.
    pub min: Option<f64>,
    /// Maximum value, `None` for an empty window.
    pub max: Option<f64>,
    /// Segments executed (scanned or index-answered); 1 for the sequential
    /// float path.
    pub segments_scanned: u64,
    /// Segments answered from the zone-map index without reading data.
    pub pruned_segments: u64,
}

/// The one window-statistics kernel every execution path computes through —
/// the session's summary scan, its pause-time refinement debt, and the
/// remote executor's server-side fetch — so no pair of paths can ever
/// disagree:
///
/// * **Integer columns** are planned into segments of `segment_rows` and
///   merged from exact `i128` partial sums: the result is bit-identical for
///   every decomposition, so `segment_rows` and `scan_parallelism` (and
///   local vs. remote) cannot perturb a digest. Windows of more than one
///   segment fan out over `pool` when one is given; otherwise the same plan
///   runs inline.
/// * **Float columns** are never decomposed (f64 addition is
///   order-dependent): one sequential ascending fold, exactly the legacy
///   arithmetic.
pub fn window_stats(
    data: &Arc<ObjectData>,
    attribute: usize,
    level: u8,
    range: RowRange,
    segment_rows: u64,
    pool: Option<&MorselPool>,
    telemetry: Option<&Arc<Telemetry>>,
) -> Result<WindowScan> {
    let hierarchy = data
        .hierarchies()
        .get(attribute)
        .ok_or_else(|| DbTouchError::NotFound(format!("attribute {attribute}")))?;
    let column = hierarchy.level(level)?;
    let range = range.clamp_to(column.len());
    if !column.data_type().is_integer() {
        let (count, sum, min, max) = column.numeric_range_stats(range)?;
        return Ok(WindowScan {
            count,
            sum,
            min,
            max,
            segments_scanned: 1,
            pruned_segments: 0,
        });
    }
    let segments = plan_segments(range, segment_rows);
    let total = segments.len() as u64;
    if segments.is_empty() {
        return Ok(WindowScan {
            count: 0,
            sum: 0.0,
            min: None,
            max: None,
            segments_scanned: 0,
            pruned_segments: 0,
        });
    }
    let (stats, pruned) = match pool {
        Some(pool) if segments.len() > 1 => pool.scan(
            Arc::clone(data),
            attribute,
            level,
            segments,
            telemetry.cloned(),
        )?,
        _ => {
            let mut acc: Option<SegmentStats> = None;
            let mut pruned = 0;
            for segment in segments {
                let (stats, answered) = scan_segment(data, attribute, level, segment)?;
                if answered {
                    pruned += 1;
                }
                match acc.as_mut() {
                    Some(acc) => acc.merge(&stats),
                    None => acc = Some(stats),
                }
            }
            (acc.expect("at least one segment"), pruned)
        }
    };
    Ok(WindowScan {
        count: stats.count,
        sum: stats.sum.as_f64(),
        min: stats.min,
        max: stats.max,
        segments_scanned: total,
        pruned_segments: pruned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::SharedCatalog;
    use dbtouch_storage::segment::SegmentSum;
    use dbtouch_types::{KernelConfig, SizeCm};

    fn object(rows: i64) -> Arc<ObjectData> {
        let catalog = SharedCatalog::new(KernelConfig::default());
        let id = catalog
            .load_column(
                "c",
                (0..rows).map(|v| v * 3 - rows).collect(),
                SizeCm::new(2.0, 10.0),
            )
            .unwrap();
        catalog.data(id).unwrap()
    }

    fn scan(
        data: &Arc<ObjectData>,
        range: RowRange,
        rows: u64,
        pool: Option<&MorselPool>,
    ) -> WindowScan {
        window_stats(data, 0, 0, range, rows, pool, None).unwrap()
    }

    #[test]
    fn window_is_identical_across_decompositions() {
        let data = object(100_000);
        let whole = scan(&data, RowRange::new(123, 99_321), u64::MAX, None);
        for segment_rows in [100, 4096, 7777, 65_536, 200_000] {
            let scanned = scan(&data, RowRange::new(123, 99_321), segment_rows, None);
            assert_eq!(
                (scanned.count, scanned.sum, scanned.min, scanned.max),
                (whole.count, whole.sum, whole.min, whole.max),
                "segment_rows={segment_rows}"
            );
        }
    }

    #[test]
    fn pooled_scan_matches_inline_scan() {
        let data = object(200_000);
        let pool = MorselPool::start(3);
        let range = RowRange::new(1_000, 180_000);
        let inline = scan(&data, range, 8192, None);
        for _ in 0..4 {
            let pooled = scan(&data, range, 8192, Some(&pool));
            assert_eq!(pooled, inline);
        }
        let metrics = pool.collect();
        let counter = |name: &str| {
            metrics
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| match v {
                    MetricValue::Counter(c) => *c,
                    MetricValue::Gauge(g) => *g,
                    _ => panic!("unexpected metric shape"),
                })
                .unwrap()
        };
        assert_eq!(counter("segments_scanned"), 4 * inline.segments_scanned);
        assert_eq!(counter("queue_depth"), 0);
        assert_eq!(counter("pruned_segments"), 4 * inline.pruned_segments);
        assert!(
            inline.pruned_segments > 0,
            "aligned segments must be answered"
        );
    }

    #[test]
    fn aligned_segments_are_answered_from_the_index() {
        let data = object(50_000);
        // 8192 = 2 zone blocks: interior segments cover whole blocks.
        let scanned = scan(&data, RowRange::new(0, 49_152), 8192, None);
        assert_eq!(scanned.segments_scanned, 6);
        assert_eq!(scanned.pruned_segments, 6);
        // An unaligned window still answers its aligned interior.
        let ragged = scan(&data, RowRange::new(5, 49_999), 8192, None);
        assert_eq!(ragged.segments_scanned, 7);
        assert_eq!(ragged.pruned_segments, 5);
        // Coarser levels have no index: everything is scanned.
        let coarse = window_stats(&data, 0, 2, RowRange::new(0, 8192), 4096, None, None).unwrap();
        assert_eq!(coarse.pruned_segments, 0);
    }

    #[test]
    fn float_windows_never_decompose() {
        let catalog = SharedCatalog::new(KernelConfig::default());
        let id = catalog
            .load_column_f64(
                "f",
                (0..100_000).map(|v| (v as f64) * 0.1).collect(),
                SizeCm::new(2.0, 10.0),
            )
            .unwrap();
        let data = catalog.data(id).unwrap();
        let pool = MorselPool::start(2);
        let scanned = scan(&data, RowRange::new(0, 100_000), 64, Some(&pool));
        assert_eq!(scanned.segments_scanned, 1);
        assert_eq!(scanned.pruned_segments, 0);
        let hierarchy = &data.hierarchies()[0];
        let (count, sum, min, max) = hierarchy
            .base()
            .numeric_range_stats(RowRange::new(0, 100_000))
            .unwrap();
        assert_eq!((scanned.count, scanned.sum), (count, sum));
        assert_eq!((scanned.min, scanned.max), (min, max));
    }

    #[test]
    fn ledger_folds_in_segment_order_and_surfaces_errors() {
        let mut ledger = SegmentLedger::new(3);
        assert!(!ledger.is_complete());
        let stats = |sum: i128, count: u64| SegmentStats {
            count,
            sum: SegmentSum::Int(sum),
            min: Some(0.0),
            max: Some(1.0),
        };
        // Resolved out of order; folded in slot order.
        ledger.resolve(2, stats(30, 3));
        ledger.resolve(0, stats(1, 1));
        ledger.resolve(1, stats(200, 2));
        assert!(ledger.is_complete());
        let folded = ledger.fold().unwrap();
        assert_eq!(folded.count, 6);
        assert_eq!(folded.sum, SegmentSum::Int(231));
        let mut failed = SegmentLedger::new(2);
        failed.resolve(0, stats(1, 1));
        failed.resolve_error(DbTouchError::Corrupt("bad page".into()));
        assert!(failed.is_complete());
        assert!(failed.fold().is_err());
    }

    #[test]
    fn empty_window_is_empty() {
        let data = object(1000);
        let scanned = scan(&data, RowRange::new(500, 500), 64, None);
        assert_eq!(scanned.count, 0);
        assert_eq!(scanned.segments_scanned, 0);
        assert_eq!((scanned.min, scanned.max), (None, None));
    }
}
