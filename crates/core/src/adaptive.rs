//! Adaptive touch granularity and sample-level selection.
//!
//! Sections 2.5 and 2.6: the gesture speed and the object size together
//! determine how many tuples one touch should cover ("the slide speed
//! determines the granularity of the data observed"), and the kernel should
//! "depending on the object size and gesture speed feed from the proper copy
//! [sample], minimizing the auxiliary data reads".
//!
//! [`GranularityPolicy`] turns the observable quantities — object size, tuple
//! count, touch resolution, current gesture speed and sampling rate — into a
//! *stride*: the expected number of base rows between two consecutively touched
//! tuples. The stride then picks the sample level to read from.

use dbtouch_gesture::view::View;
use dbtouch_storage::sample::SampleHierarchy;
use dbtouch_types::KernelConfig;
use serde::{Deserialize, Serialize};

/// The decision produced by the granularity policy for one touch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GranularityDecision {
    /// Expected number of base rows between consecutive touched tuples.
    pub stride_rows: u64,
    /// The sample level the kernel should read from (0 = base data).
    pub sample_level: u8,
    /// True if the decision came from the adaptive path (false = pinned to base
    /// data because adaptivity is disabled).
    pub adaptive: bool,
}

/// Chooses strides and sample levels from gesture dynamics and object geometry.
#[derive(Debug, Clone)]
pub struct GranularityPolicy {
    config: KernelConfig,
}

impl GranularityPolicy {
    /// Create a policy using the kernel configuration's resolution, sampling
    /// rate and adaptivity switches.
    pub fn new(config: KernelConfig) -> GranularityPolicy {
        GranularityPolicy { config }
    }

    /// The minimum stride imposed by physics: with a finite touch resolution,
    /// two adjacent distinguishable positions on the object are separated by
    /// this many rows regardless of speed.
    pub fn physical_stride(&self, view: &View) -> u64 {
        crate::mapping::TouchMapper::rows_per_touch_position(view, self.config.touch_resolution_cm)
    }

    /// The stride implied by the current gesture speed: a finger moving at
    /// `speed_cm_per_s` advances `speed / sample_rate` centimetres between two
    /// touch samples, which maps to this many rows of the object.
    pub fn speed_stride(&self, view: &View, speed_cm_per_s: f64) -> u64 {
        if view.tuple_count == 0 {
            return 1;
        }
        let extent = view.scroll_extent();
        if extent <= 0.0 || !speed_cm_per_s.is_finite() || speed_cm_per_s <= 0.0 {
            return 1;
        }
        let cm_per_sample = speed_cm_per_s / self.config.touch_sample_rate_hz;
        let rows_per_cm = view.tuple_count as f64 / extent;
        (cm_per_sample * rows_per_cm).round().max(1.0) as u64
    }

    /// Decide the stride and sample level for a touch given the current gesture
    /// speed. The stride is the larger of the physical stride and the speed
    /// stride; when adaptive sampling is disabled the sample level is pinned to
    /// base data.
    pub fn decide(
        &self,
        view: &View,
        hierarchy: &SampleHierarchy,
        speed_cm_per_s: f64,
    ) -> GranularityDecision {
        let stride = self
            .physical_stride(view)
            .max(self.speed_stride(view, speed_cm_per_s));
        if !self.config.adaptive_sampling {
            return GranularityDecision {
                stride_rows: stride,
                sample_level: 0,
                adaptive: false,
            };
        }
        GranularityDecision {
            stride_rows: stride,
            sample_level: hierarchy.level_for_stride(stride),
            adaptive: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtouch_storage::column::Column;
    use dbtouch_types::SizeCm;

    fn view(tuples: u64) -> View {
        View::for_column("c", tuples, SizeCm::new(2.0, 10.0)).unwrap()
    }

    fn hierarchy(rows: u64) -> SampleHierarchy {
        SampleHierarchy::build(Column::from_i64("c", (0..rows as i64).collect()), 10).unwrap()
    }

    #[test]
    fn physical_stride_from_resolution() {
        let p = GranularityPolicy::new(KernelConfig::default());
        // 10cm / 0.05cm = 200 positions over 1M rows -> 5000 rows per position
        assert_eq!(p.physical_stride(&view(1_000_000)), 5_000);
        // zooming in halves the stride
        let zoomed = view(1_000_000).zoomed(2.0).unwrap();
        assert_eq!(p.physical_stride(&zoomed), 2_500);
    }

    #[test]
    fn speed_stride_scales_with_speed() {
        let p = GranularityPolicy::new(KernelConfig::default());
        let v = view(1_000_000);
        // 10 cm/s at 60Hz -> 1/6 cm per sample -> ~16667 rows
        let fast = p.speed_stride(&v, 10.0);
        let slow = p.speed_stride(&v, 2.0);
        assert!(fast > slow);
        assert!((fast as i64 - 16_667).abs() <= 1);
        assert!((slow as i64 - 3_333).abs() <= 1);
        // zero, negative or NaN speeds degrade to stride 1
        assert_eq!(p.speed_stride(&v, 0.0), 1);
        assert_eq!(p.speed_stride(&v, -3.0), 1);
        assert_eq!(p.speed_stride(&v, f64::NAN), 1);
    }

    #[test]
    fn decision_takes_max_of_both_strides() {
        let p = GranularityPolicy::new(KernelConfig::default());
        let v = view(100_000);
        let h = hierarchy(100_000);
        // slow gesture: physical stride dominates (100k/200 = 500)
        let slow = p.decide(&v, &h, 0.5);
        assert_eq!(slow.stride_rows, 500);
        // very fast gesture: speed stride dominates
        let fast = p.decide(&v, &h, 50.0);
        assert!(fast.stride_rows > slow.stride_rows);
        assert!(fast.sample_level >= slow.sample_level);
        assert!(fast.adaptive);
    }

    #[test]
    fn adaptive_disabled_pins_base_level() {
        let p = GranularityPolicy::new(KernelConfig::naive());
        let v = view(1_000_000);
        let h = hierarchy(100_000);
        let d = p.decide(&v, &h, 20.0);
        assert_eq!(d.sample_level, 0);
        assert!(!d.adaptive);
        assert!(d.stride_rows > 1);
    }

    #[test]
    fn tiny_object_stride_is_one() {
        let p = GranularityPolicy::new(KernelConfig::default());
        let v = view(50);
        let h = hierarchy(50);
        let d = p.decide(&v, &h, 1.0);
        assert_eq!(d.stride_rows, 1);
        assert_eq!(d.sample_level, 0);
    }

    #[test]
    fn empty_object_safe() {
        let p = GranularityPolicy::new(KernelConfig::default());
        let v = view(0);
        assert_eq!(p.speed_stride(&v, 10.0), 1);
    }
}
