//! Per-touch response-time budget with approximate-first refinement.
//!
//! Section 4 ("Interactive Behavior"): "There should always be a maximum
//! possible wait time for a single touch regardless of the query and the data
//! sizes. Approximate query processing in combination with dbTouch may be an
//! interesting direction, i.e., results appear within the expected response
//! time and then they are continuously refined."
//!
//! [`ResponseBudget`] enforces a per-touch micro-budget: a window aggregation is
//! first computed over a shrunken window that fits the budget (based on a
//! calibrated per-row cost), delivered immediately, and the remaining rows are
//! recorded as *refinement debt* that is paid off on subsequent touches or
//! pauses, continuously improving the delivered result.

use dbtouch_types::{RowRange, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A pending refinement: rows that were skipped to meet the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefinementDebt {
    /// The rows still to be aggregated.
    pub remaining: RowRange,
    /// When the approximate result was delivered.
    pub deferred_at: Timestamp,
}

/// Statistics about budget decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BudgetStats {
    /// Touches answered exactly (full window within budget).
    pub exact: u64,
    /// Touches answered approximately (window truncated).
    pub approximate: u64,
    /// Refinement steps executed afterwards.
    pub refinements: u64,
    /// Rows deferred in total.
    pub rows_deferred: u64,
}

/// Enforces the per-touch response-time budget.
#[derive(Debug, Clone)]
pub struct ResponseBudget {
    budget_micros: u64,
    /// Calibrated cost of aggregating one row, in nanoseconds.
    nanos_per_row: f64,
    debts: VecDeque<RefinementDebt>,
    stats: BudgetStats,
    enabled: bool,
}

impl ResponseBudget {
    /// Create a budget of `budget_micros` microseconds per touch assuming the
    /// given per-row aggregation cost in nanoseconds.
    pub fn new(budget_micros: u64, nanos_per_row: f64) -> ResponseBudget {
        ResponseBudget {
            budget_micros: budget_micros.max(1),
            nanos_per_row: nanos_per_row.max(0.01),
            debts: VecDeque::new(),
            stats: BudgetStats::default(),
            enabled: true,
        }
    }

    /// A budget that never truncates windows (used by ablations).
    pub fn unlimited() -> ResponseBudget {
        ResponseBudget {
            budget_micros: u64::MAX,
            nanos_per_row: 0.01,
            debts: VecDeque::new(),
            stats: BudgetStats::default(),
            enabled: false,
        }
    }

    /// Whether the budget actively truncates work.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Maximum rows that fit the budget.
    pub fn rows_within_budget(&self) -> u64 {
        if !self.enabled {
            return u64::MAX;
        }
        ((self.budget_micros as f64 * 1000.0) / self.nanos_per_row)
            .floor()
            .max(1.0) as u64
    }

    /// Admit a window for processing: returns the (possibly truncated) range to
    /// process now. The truncated remainder, if any, is queued as refinement
    /// debt. The processed part is centred on the original window's start so
    /// the touched row itself is always covered.
    pub fn admit(&mut self, window: RowRange, now: Timestamp) -> RowRange {
        let limit = self.rows_within_budget();
        if window.len() <= limit {
            self.stats.exact += 1;
            return window;
        }
        let process = RowRange::new(window.start, window.start + limit);
        let remaining = RowRange::new(window.start + limit, window.end);
        self.stats.approximate += 1;
        self.stats.rows_deferred += remaining.len();
        self.debts.push_back(RefinementDebt {
            remaining,
            deferred_at: now,
        });
        process
    }

    /// Pop the next refinement debt (oldest first), if any. The caller
    /// aggregates those rows and merges them into the already-delivered result,
    /// realizing the "continuously refined" behaviour.
    pub fn next_refinement(&mut self) -> Option<RefinementDebt> {
        let debt = self.debts.pop_front()?;
        self.stats.refinements += 1;
        Some(debt)
    }

    /// Number of outstanding refinement debts.
    pub fn pending_refinements(&self) -> usize {
        self.debts.len()
    }

    /// Statistics so far.
    pub fn stats(&self) -> BudgetStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_windows_pass_untouched() {
        let mut b = ResponseBudget::new(1_000, 100.0); // 10k rows fit
        let w = RowRange::new(0, 500);
        assert_eq!(b.admit(w, Timestamp::ZERO), w);
        assert_eq!(b.stats().exact, 1);
        assert_eq!(b.pending_refinements(), 0);
    }

    #[test]
    fn oversized_windows_truncated_and_deferred() {
        let mut b = ResponseBudget::new(100, 1000.0); // 100 rows fit
        let w = RowRange::new(1000, 2000);
        let processed = b.admit(w, Timestamp::from_millis(5));
        assert_eq!(processed, RowRange::new(1000, 1100));
        assert_eq!(b.stats().approximate, 1);
        assert_eq!(b.stats().rows_deferred, 900);
        assert_eq!(b.pending_refinements(), 1);
        let debt = b.next_refinement().unwrap();
        assert_eq!(debt.remaining, RowRange::new(1100, 2000));
        assert_eq!(debt.deferred_at, Timestamp::from_millis(5));
        assert_eq!(b.stats().refinements, 1);
        assert!(b.next_refinement().is_none());
    }

    #[test]
    fn rows_within_budget_scales() {
        let b = ResponseBudget::new(2_000, 20.0);
        assert_eq!(b.rows_within_budget(), 100_000);
        let tight = ResponseBudget::new(1, 1_000_000.0);
        assert_eq!(tight.rows_within_budget(), 1);
    }

    #[test]
    fn unlimited_budget_never_defers() {
        let mut b = ResponseBudget::unlimited();
        assert!(!b.is_enabled());
        let w = RowRange::new(0, 10_000_000);
        assert_eq!(b.admit(w, Timestamp::ZERO), w);
        assert_eq!(b.pending_refinements(), 0);
    }

    #[test]
    fn refinements_served_oldest_first() {
        let mut b = ResponseBudget::new(100, 1000.0); // 100 rows per touch
        b.admit(RowRange::new(0, 300), Timestamp::from_millis(1));
        b.admit(RowRange::new(1000, 1300), Timestamp::from_millis(2));
        assert_eq!(b.pending_refinements(), 2);
        assert_eq!(b.next_refinement().unwrap().remaining.start, 100);
        assert_eq!(b.next_refinement().unwrap().remaining.start, 1100);
    }
}
