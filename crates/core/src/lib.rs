//! # dbtouch-core
//!
//! The dbTouch kernel: the paper's primary contribution.
//!
//! dbTouch redefines query, query plan and data flow around touch input. A
//! query is a *session* of gestures; every touch is a request to run an
//! operator (or a small pipeline of operators) over the part of the data the
//! touch addresses; the user — not the database — controls the data flow by
//! varying the gesture's speed, direction and the object's size.
//!
//! The crate is organized following the system layers of the paper's Figure 3:
//!
//! * [`mapping`] — *Map touch to data*: the Rule-of-Three translation of touch
//!   locations into tuple identifiers, for columns, tables and rotated objects
//!   (Section 2.4).
//! * [`morsel`] — segment-parallel execution: a summary window planned into
//!   fixed-row segment morsels that a shared scan-helper pool steals, partial
//!   results merged deterministically in segment order (exact integer sums),
//!   so digests stay bit-identical at any `scan_parallelism`.
//! * [`operators`] — *Execute*: per-touch operators — point scans, running
//!   aggregates, interactive summaries, selections, incremental group-bys and
//!   non-blocking joins (Sections 2.3, 2.7, 2.9).
//! * [`session`] — query sessions that feed recognized gestures through the
//!   operators and collect the result stream and its statistics.
//! * [`catalog`] — the shared data catalog: immutable loaded data (matrixes,
//!   sample hierarchies, indexes) behind `Arc`, split from per-session mutable
//!   exploration state so many concurrent sessions can share one load. The
//!   catalog is epoch-versioned: readers take wait-free snapshots, mutators
//!   publish successors by compare-and-swap.
//! * [`epoch`] — the wait-free snapshot cell (userspace-RCU style) the
//!   catalog publishes through.
//! * [`kernel`] — the single-user facade over the catalog and the top-level
//!   API: load data, choose per-object touch actions, run gesture traces,
//!   apply zoom/rotate/drag-out layout gestures (Sections 2.2, 2.5, 2.8).
//! * [`adaptive`] — touch-granularity and sample-level selection from gesture
//!   speed and object size (Sections 2.5, 2.6).
//! * [`prefetch_policy`] — gesture extrapolation into prefetch requests
//!   (Section 2.6).
//! * [`response`] — per-touch response-time budget with approximate-first
//!   refinement (Section 4, "Interactive Behavior").
//! * [`optimizer`] — adaptive ordering of filter pipelines under user-controlled
//!   data flow (Section 2.9, "Optimization").
//! * [`remote`] — simulated remote/cloud processing where the device holds only
//!   small samples (Section 4, "Remote Processing").
//! * [`remote_exec`] — the asynchronous remote-processing executor: a bounded
//!   I/O thread pool plus per-session completion queues that overlap
//!   fine-level cloud fetches with touch processing, delivering progressive
//!   answers (coarse local now, refined remote later).
//! * [`result`] — the result stream with in-place, fading result values
//!   (Section 2.3, "Inspecting Results").

pub mod adaptive;
pub mod catalog;
pub mod epoch;
pub mod join_session;
pub mod kernel;
pub mod mapping;
pub mod morsel;
pub mod operators;
pub mod optimizer;
pub mod persist;
pub mod prefetch_policy;
pub mod remote;
pub mod remote_exec;
pub mod response;
pub mod result;
pub mod screen_session;
pub mod session;

pub use adaptive::GranularityPolicy;
pub use catalog::{CatalogSnapshot, ObjectData, ObjectState, SharedCatalog};
pub use epoch::EpochCell;
pub use join_session::{JoinOutcome, JoinSession, JoinSpec};
pub use kernel::{Kernel, ObjectId, TouchAction};
pub use mapping::TouchMapper;
pub use morsel::{window_stats, MorselPool, SegmentLedger, WindowScan};
pub use remote_exec::{
    CompletionQueue, PendingRefinement, RefinementLedger, RemoteCompletion, RemoteExecutor,
    RemoteTier,
};
pub use result::{ResultStream, TouchResult};
pub use screen_session::{ScreenOutcome, ScreenSession};
pub use session::{Session, SessionOutcome, SessionStats};
