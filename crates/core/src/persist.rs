//! Catalog persistence: `SharedCatalog::open` / `persist_to` over the paged
//! store in `dbtouch_storage::persist`.
//!
//! A persisted catalog directory is **exactly one published epoch**: the
//! manifest captures the epoch's object table — names, schemas, default
//! actions, view sizes, sample hierarchies, zone maps and tombstones — and
//! points every column (and every sample level) at a page extent in the
//! directory's page file.
//!
//! **Reopening is lazy.** [`SharedCatalog::open`] rebuilds `ObjectData` whose
//! columns are paged-backed readers: no row is read at open; pages fault
//! through the store's buffer pool ([`KernelConfig::buffer_pool_pages`]) on
//! first touch, so a catalog larger than the pool — or larger than RAM —
//! streams under exploration. The wait-free `EpochCell` checkout path is
//! untouched: sessions of a reopened catalog check out, refresh and explore
//! exactly as they do against a memory-born catalog, and replayed traces
//! produce bit-identical result digests (the paged readers decode the same
//! encoding with the same fold order).
//!
//! **Fresh identities.** Reopened objects are stamped with fresh
//! [`next_object_identity`] generations, never the previous process's
//! numbers: identity uniqueness is a process-local invariant that keys the
//! shared result cache and the `ObjectState::refresh` rebuild detection.
//! Reusing persisted identities could collide with identities minted for new
//! loads and serve another object's cached windows.
//!
//! **Attached catalogs persist every publish.** A catalog opened from a
//! directory keeps the store attached and persists each published epoch
//! (loads, metadata edits and restructures alike) from inside the publish
//! path, so the directory tracks the live catalog and a crash loses at most
//! the epoch being written — never a published one. Extents of objects whose
//! identity was already persisted are reused, making the common persist
//! incremental: a restructure writes only the rebuilt objects' pages plus
//! one manifest.

use crate::catalog::{validate_action, CatalogSnapshot, ObjectData, SharedCatalog};
use crate::kernel::TouchAction;
use crate::operators::aggregate::AggregateKind;
use crate::operators::filter::{CompareOp, Predicate};
use dbtouch_gesture::view::View;
use dbtouch_storage::column::Column;
use dbtouch_storage::encoding::EncodingPolicy;
use dbtouch_storage::layout::Layout;
use dbtouch_storage::matrix::Matrix;
use dbtouch_storage::pager::{ColumnExtent, PagedColumn, PagerStats};
use dbtouch_storage::persist::{CatalogStore, ObjectRecord, StoreManifest};
use dbtouch_storage::sample::SampleHierarchy;
use dbtouch_storage::shared_cache::next_object_identity;
use dbtouch_storage::table::Table;
use dbtouch_types::json::Json;
use dbtouch_types::{DbTouchError, KernelConfig, Result, SizeCm, Value};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// The extents one immutable object build occupies on disk, remembered per
/// identity so re-persisting an unchanged object writes no pages.
#[derive(Debug, Clone)]
struct PersistedExtents {
    columns: Vec<ColumnExtent>,
    /// Per attribute: extents of sample levels `1..` (level 0 is the column).
    sample_levels: Vec<Vec<ColumnExtent>>,
}

/// A catalog's attached persistent store: the directory, the pager and the
/// identity → extents memo. One `Persistence` serializes all persists of its
/// catalog through its interior mutex.
#[derive(Debug)]
pub(crate) struct Persistence {
    store: CatalogStore,
    extents: Mutex<HashMap<u64, PersistedExtents>>,
    /// Page-span encoding choices applied when object pages are written.
    policy: EncodingPolicy,
}

/// The encoding policy a catalog's knobs ask for.
fn encoding_policy(config: &KernelConfig) -> EncodingPolicy {
    EncodingPolicy {
        enabled: config.encoding_enabled,
        dict_max_cardinality: config.dict_max_cardinality,
    }
}

impl Persistence {
    /// Persist one snapshot: append pages for object builds not yet on disk,
    /// then commit a manifest for the snapshot's epoch. Safe under live
    /// churn — the snapshot is immutable, so the manifest is one consistent
    /// epoch no matter what publishes concurrently.
    pub(crate) fn persist_snapshot(&self, snapshot: &CatalogSnapshot) -> Result<u64> {
        let mut extents = self.extents.lock().unwrap_or_else(|e| e.into_inner());
        let pager = self.store.pager();
        let mut slots = Vec::with_capacity(snapshot.slots().len());
        for slot in snapshot.slots() {
            let Some(data) = slot else {
                slots.push(None);
                continue;
            };
            let persisted = match extents.get(&data.identity()) {
                Some(existing) => existing.clone(),
                None => {
                    let written = write_object_pages(pager, data, &self.policy)?;
                    extents.insert(data.identity(), written.clone());
                    written
                }
            };
            let schema = data.schema();
            slots.push(Some(ObjectRecord {
                name: data.name().to_string(),
                is_table: schema.len() > 1,
                size_w: data.base_view().size().width,
                size_h: data.base_view().size().height,
                action: encode_action(data.default_action()),
                attribute_names: schema.iter().map(|(n, _)| n.clone()).collect(),
                row_count: data.row_count(),
                columns: persisted.columns.clone(),
                sample_levels: persisted.sample_levels.clone(),
                zone_maps: data.indexes().to_vec(),
            }));
        }
        let manifest = StoreManifest {
            epoch: snapshot.epoch(),
            restructures: snapshot.restructures(),
            page_size: pager.page_size(),
            committed_pages: pager.len_pages(),
            slots,
        };
        self.store.commit(&manifest)?;
        Ok(manifest.epoch)
    }

    /// Buffer-pool counters of the attached store.
    pub(crate) fn pager_stats(&self) -> PagerStats {
        self.store.pager().stats()
    }

    /// The attached store's buffer pool, for telemetry registration.
    pub(crate) fn pager(&self) -> &Arc<dbtouch_storage::pager::Pager> {
        self.store.pager()
    }

    /// The directory the store lives in.
    pub(crate) fn dir(&self) -> &Path {
        self.store.dir()
    }
}

/// Append every page of one object build: its columns (in schema order) and
/// the derived sample levels. Zone maps travel inline in the manifest.
fn write_object_pages(
    pager: &Arc<dbtouch_storage::pager::Pager>,
    data: &ObjectData,
    policy: &EncodingPolicy,
) -> Result<PersistedExtents> {
    // Catalog-held matrixes are column-major (loads and restructures build
    // them that way; rotation is session-private). Convert defensively if a
    // future load path registers a row-major build.
    let columnar;
    let matrix: &Matrix = if data.matrix().columns().is_some() {
        data.matrix()
    } else {
        columnar = data.matrix().converted_to(Layout::ColumnMajor)?;
        &columnar
    };
    let cols = matrix.columns().expect("column-major after conversion");
    let mut columns = Vec::with_capacity(cols.len());
    for col in cols {
        columns.push(col.persist_to_encoded(pager, policy)?);
    }
    let mut sample_levels = Vec::with_capacity(cols.len());
    for hierarchy in data.hierarchies() {
        let mut levels = Vec::new();
        for level in 1..hierarchy.level_count() {
            levels.push(hierarchy.level(level)?.persist_to_encoded(pager, policy)?);
        }
        sample_levels.push(levels);
    }
    if sample_levels.len() != columns.len() {
        return Err(DbTouchError::Internal(format!(
            "object {} has {} hierarchies for {} columns",
            data.name(),
            sample_levels.len(),
            columns.len()
        )));
    }
    Ok(PersistedExtents {
        columns,
        sample_levels,
    })
}

/// Rebuild one object from its manifest record: paged-backed columns and
/// sample levels, inline zone maps, re-derived base view, decoded default
/// action — and a **fresh** identity.
fn object_from_record(
    pager: &Arc<dbtouch_storage::pager::Pager>,
    record: &ObjectRecord,
) -> Result<(Arc<ObjectData>, PersistedExtents)> {
    let mut columns = Vec::with_capacity(record.columns.len());
    for (name, extent) in record.attribute_names.iter().zip(&record.columns) {
        if extent.rows != record.row_count {
            return Err(DbTouchError::Corrupt(format!(
                "object {}: column {name} extent holds {} rows, object claims {}",
                record.name, extent.rows, record.row_count
            )));
        }
        let reader = PagedColumn::new(Arc::clone(pager), *extent)?;
        columns.push(Column::paged(name.clone(), reader));
    }
    let mut hierarchies = Vec::with_capacity(columns.len());
    for (column, levels) in columns.iter().zip(&record.sample_levels) {
        let mut built = Vec::with_capacity(levels.len() + 1);
        built.push(column.clone());
        for extent in levels {
            let reader = PagedColumn::new(Arc::clone(pager), *extent)?;
            built.push(Column::paged(column.name(), reader));
        }
        hierarchies.push(SampleHierarchy::from_levels(built)?);
    }
    let size = SizeCm::new(record.size_w, record.size_h);
    let view = if record.is_table {
        View::for_table(record.name.clone(), record.row_count, columns.len(), size)?
    } else {
        View::for_column(record.name.clone(), record.row_count, size)?
    };
    let matrix = if record.is_table {
        Matrix::from_table(Table::from_columns(record.name.clone(), columns)?)
    } else {
        let single = columns.into_iter().next().ok_or_else(|| {
            DbTouchError::Corrupt(format!("object {} has no columns", record.name))
        })?;
        let mut matrix = Matrix::from_column(single);
        matrix.set_name(&record.name);
        matrix
    };
    let action = decode_action(&record.action)?;
    validate_action(&action, matrix.schema()).map_err(|e| {
        DbTouchError::Corrupt(format!(
            "object {}: persisted default action does not validate: {e}",
            record.name
        ))
    })?;
    let data = ObjectData::from_parts(
        record.name.clone(),
        next_object_identity(),
        Arc::new(matrix),
        Arc::new(hierarchies),
        Arc::new(record.zone_maps.clone()),
        view,
        action,
    );
    Ok((
        Arc::new(data),
        PersistedExtents {
            columns: record.columns.clone(),
            sample_levels: record.sample_levels.clone(),
        },
    ))
}

impl SharedCatalog {
    /// Open a persistent catalog directory — or create it when it holds no
    /// persisted epoch yet — and attach it, so every subsequently published
    /// epoch is persisted.
    ///
    /// Reopening recovers the newest valid manifest (see
    /// [`dbtouch_storage::persist`] for the recovery rules) and rebuilds the
    /// catalog lazily: object columns become paged-backed readers that fault
    /// pages through a buffer pool of [`KernelConfig::buffer_pool_pages`]
    /// pages on first touch. Object ids, the epoch counter and the
    /// restructure counter continue exactly where the persisted catalog left
    /// off; object identities are freshly minted (they are process-local
    /// cache keys, not durable state).
    pub fn open(dir: impl AsRef<Path>, config: KernelConfig) -> Result<SharedCatalog> {
        config.validate()?;
        let (store, manifest) = CatalogStore::open_with_retention(
            &dir,
            config.buffer_pool_pages,
            config.page_size_bytes,
            config.manifest_keep,
        )?;
        let mut extents = HashMap::new();
        let snapshot = match &manifest {
            None => CatalogSnapshot::from_parts(0, 0, Vec::new()),
            Some(manifest) => {
                let pager = store.pager();
                let mut slots = Vec::with_capacity(manifest.slots.len());
                for record in &manifest.slots {
                    match record {
                        None => slots.push(None),
                        Some(record) => {
                            let (data, persisted) = object_from_record(pager, record)?;
                            extents.insert(data.identity(), persisted);
                            slots.push(Some(data));
                        }
                    }
                }
                CatalogSnapshot::from_parts(manifest.epoch, manifest.restructures, slots)
            }
        };
        let persistence = Arc::new(Persistence {
            store,
            extents: Mutex::new(extents),
            policy: encoding_policy(&config),
        });
        // A fresh directory records epoch 0 immediately, so a server crash
        // before the first load still leaves a recognizable catalog.
        if manifest.is_none() {
            persistence.persist_snapshot(&snapshot)?;
        }
        Ok(SharedCatalog::assemble(config, snapshot, Some(persistence)))
    }

    /// Persist the current snapshot to `dir` and return the epoch written.
    ///
    /// When `dir` is the attached directory this is an incremental persist
    /// (unchanged objects write no pages). Any other directory gets a full,
    /// self-contained copy of the current epoch — and stays detached: the
    /// catalog keeps persisting to its attached directory, if any.
    pub fn persist_to(&self, dir: impl AsRef<Path>) -> Result<u64> {
        let snapshot = self.snapshot();
        if let Some(persistence) = self.persistence() {
            // Compare canonicalized paths: "./data" and "data" (or a symlink)
            // are the same store, and opening a second `Pager` over the
            // attached pages.dat would append with a stale length and
            // overwrite committed pages. A target that cannot be
            // canonicalized does not exist yet, so it cannot be the attached
            // (existing) directory.
            let attached = std::fs::canonicalize(persistence.dir());
            let target = std::fs::canonicalize(dir.as_ref());
            if let (Ok(attached), Ok(target)) = (attached, target) {
                if attached == target {
                    return persistence.persist_snapshot(&snapshot);
                }
            }
        }
        let store = CatalogStore::create_with_retention(
            &dir,
            self.config().page_size_bytes,
            self.config().buffer_pool_pages,
            self.config().manifest_keep,
        )?;
        let persistence = Persistence {
            store,
            extents: Mutex::new(HashMap::new()),
            policy: encoding_policy(self.config()),
        };
        persistence.persist_snapshot(&snapshot)
    }

    /// The attached persistent directory, when the catalog was opened with
    /// [`SharedCatalog::open`].
    pub fn catalog_dir(&self) -> Option<PathBuf> {
        self.persistence().map(|p| p.dir().to_path_buf())
    }

    /// Buffer-pool counters of the attached store (`None` for memory-only
    /// catalogs). Faults and pool hits measure how a reopened catalog
    /// streams under exploration.
    pub fn pager_stats(&self) -> Option<PagerStats> {
        self.persistence().map(|p| p.pager_stats())
    }
}

// ---------------------------------------------------------------------------
// Touch-action JSON codec. The storage manifest treats actions as opaque
// JSON; the kernel owns the schema. Integer values are encoded as strings so
// the full i64 range survives the f64-backed JSON number type.
// ---------------------------------------------------------------------------

use dbtouch_types::json::object as obj;

fn encode_value(value: &Value) -> Json {
    let (t, v) = match value {
        Value::Int(x) => ("int", Json::String(x.to_string())),
        Value::Timestamp(x) => ("timestamp", Json::String(x.to_string())),
        Value::Float(x) => ("float", Json::Number(*x)),
        Value::Bool(x) => ("bool", Json::Bool(*x)),
        Value::Str(x) => ("str", Json::String(x.clone())),
    };
    obj(vec![("t", Json::String(t.into())), ("v", v)])
}

fn decode_value(j: &Json) -> Result<Value> {
    let bad = || DbTouchError::Corrupt("manifest: malformed value".into());
    let t = j.get("t").and_then(Json::as_str).ok_or_else(bad)?;
    let v = j.get("v").ok_or_else(bad)?;
    match t {
        "int" => v
            .as_str()
            .and_then(|s| s.parse().ok())
            .map(Value::Int)
            .ok_or_else(bad),
        "timestamp" => v
            .as_str()
            .and_then(|s| s.parse().ok())
            .map(Value::Timestamp)
            .ok_or_else(bad),
        "float" => v.as_f64().map(Value::Float).ok_or_else(bad),
        "bool" => match v {
            Json::Bool(b) => Ok(Value::Bool(*b)),
            _ => Err(bad()),
        },
        "str" => v
            .as_str()
            .map(|s| Value::Str(s.to_string()))
            .ok_or_else(bad),
        _ => Err(bad()),
    }
}

fn aggregate_name(kind: AggregateKind) -> &'static str {
    match kind {
        AggregateKind::Count => "count",
        AggregateKind::Sum => "sum",
        AggregateKind::Avg => "avg",
        AggregateKind::Min => "min",
        AggregateKind::Max => "max",
    }
}

fn decode_aggregate(j: &Json) -> Result<AggregateKind> {
    match j.as_str() {
        Some("count") => Ok(AggregateKind::Count),
        Some("sum") => Ok(AggregateKind::Sum),
        Some("avg") => Ok(AggregateKind::Avg),
        Some("min") => Ok(AggregateKind::Min),
        Some("max") => Ok(AggregateKind::Max),
        _ => Err(DbTouchError::Corrupt(
            "manifest: unknown aggregate kind".into(),
        )),
    }
}

fn compare_name(op: CompareOp) -> &'static str {
    match op {
        CompareOp::Eq => "eq",
        CompareOp::Ne => "ne",
        CompareOp::Lt => "lt",
        CompareOp::Le => "le",
        CompareOp::Gt => "gt",
        CompareOp::Ge => "ge",
    }
}

fn decode_compare(j: &Json) -> Result<CompareOp> {
    match j.as_str() {
        Some("eq") => Ok(CompareOp::Eq),
        Some("ne") => Ok(CompareOp::Ne),
        Some("lt") => Ok(CompareOp::Lt),
        Some("le") => Ok(CompareOp::Le),
        Some("gt") => Ok(CompareOp::Gt),
        Some("ge") => Ok(CompareOp::Ge),
        _ => Err(DbTouchError::Corrupt("manifest: unknown compare op".into())),
    }
}

fn encode_predicate(p: &Predicate) -> Json {
    match p {
        Predicate::Compare { op, value } => obj(vec![
            ("type", Json::String("compare".into())),
            ("op", Json::String(compare_name(*op).into())),
            ("value", encode_value(value)),
        ]),
        Predicate::Between { low, high } => obj(vec![
            ("type", Json::String("between".into())),
            ("low", encode_value(low)),
            ("high", encode_value(high)),
        ]),
        Predicate::And(ps) => obj(vec![
            ("type", Json::String("and".into())),
            ("of", Json::Array(ps.iter().map(encode_predicate).collect())),
        ]),
        Predicate::Or(ps) => obj(vec![
            ("type", Json::String("or".into())),
            ("of", Json::Array(ps.iter().map(encode_predicate).collect())),
        ]),
        Predicate::Not(p) => obj(vec![
            ("type", Json::String("not".into())),
            ("of", encode_predicate(p)),
        ]),
    }
}

fn decode_predicate(j: &Json) -> Result<Predicate> {
    let bad = || DbTouchError::Corrupt("manifest: malformed predicate".into());
    let list = |j: &Json| -> Result<Vec<Predicate>> {
        j.get("of")
            .and_then(Json::as_array)
            .ok_or_else(bad)?
            .iter()
            .map(decode_predicate)
            .collect()
    };
    match j.get("type").and_then(Json::as_str).ok_or_else(bad)? {
        "compare" => Ok(Predicate::Compare {
            op: decode_compare(j.get("op").ok_or_else(bad)?)?,
            value: decode_value(j.get("value").ok_or_else(bad)?)?,
        }),
        "between" => Ok(Predicate::Between {
            low: decode_value(j.get("low").ok_or_else(bad)?)?,
            high: decode_value(j.get("high").ok_or_else(bad)?)?,
        }),
        "and" => Ok(Predicate::And(list(j)?)),
        "or" => Ok(Predicate::Or(list(j)?)),
        "not" => Ok(Predicate::Not(Box::new(decode_predicate(
            j.get("of").ok_or_else(bad)?,
        )?))),
        _ => Err(bad()),
    }
}

/// Encode a touch action for the manifest.
pub fn encode_action(action: &TouchAction) -> Json {
    match action {
        TouchAction::Scan => obj(vec![("kind", Json::String("scan".into()))]),
        TouchAction::Tuple => obj(vec![("kind", Json::String("tuple".into()))]),
        TouchAction::Aggregate(kind) => obj(vec![
            ("kind", Json::String("aggregate".into())),
            ("agg", Json::String(aggregate_name(*kind).into())),
        ]),
        TouchAction::Summary { half_window, kind } => obj(vec![
            ("kind", Json::String("summary".into())),
            (
                "half_window",
                half_window.map_or(Json::Null, |k| Json::Number(k as f64)),
            ),
            ("agg", Json::String(aggregate_name(*kind).into())),
        ]),
        TouchAction::FilteredScan { predicate } => obj(vec![
            ("kind", Json::String("filtered_scan".into())),
            ("predicate", encode_predicate(predicate)),
        ]),
        TouchAction::FilteredAggregate { predicate, kind } => obj(vec![
            ("kind", Json::String("filtered_aggregate".into())),
            ("predicate", encode_predicate(predicate)),
            ("agg", Json::String(aggregate_name(*kind).into())),
        ]),
        TouchAction::GroupBy {
            group_attribute,
            value_attribute,
            kind,
        } => obj(vec![
            ("kind", Json::String("group_by".into())),
            ("group_attribute", Json::Number(*group_attribute as f64)),
            ("value_attribute", Json::Number(*value_attribute as f64)),
            ("agg", Json::String(aggregate_name(*kind).into())),
        ]),
    }
}

/// Decode a touch action from the manifest.
pub fn decode_action(j: &Json) -> Result<TouchAction> {
    let bad = || DbTouchError::Corrupt("manifest: malformed touch action".into());
    let agg = |j: &Json| decode_aggregate(j.get("agg").ok_or_else(bad)?);
    match j.get("kind").and_then(Json::as_str).ok_or_else(bad)? {
        "scan" => Ok(TouchAction::Scan),
        "tuple" => Ok(TouchAction::Tuple),
        "aggregate" => Ok(TouchAction::Aggregate(agg(j)?)),
        "summary" => Ok(TouchAction::Summary {
            half_window: match j.get("half_window") {
                None | Some(Json::Null) => None,
                Some(n) => Some(n.as_u64().ok_or_else(bad)?),
            },
            kind: agg(j)?,
        }),
        "filtered_scan" => Ok(TouchAction::FilteredScan {
            predicate: decode_predicate(j.get("predicate").ok_or_else(bad)?)?,
        }),
        "filtered_aggregate" => Ok(TouchAction::FilteredAggregate {
            predicate: decode_predicate(j.get("predicate").ok_or_else(bad)?)?,
            kind: agg(j)?,
        }),
        "group_by" => Ok(TouchAction::GroupBy {
            group_attribute: j
                .get("group_attribute")
                .and_then(Json::as_u64)
                .ok_or_else(bad)? as usize,
            value_attribute: j
                .get("value_attribute")
                .and_then(Json::as_u64)
                .ok_or_else(bad)? as usize,
            kind: agg(j)?,
        }),
        _ => Err(bad()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    pub(crate) fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dbtouch-persist-{}-{}-{tag}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn round_trip(action: TouchAction) {
        let encoded = encode_action(&action);
        // Through text, as the manifest does.
        let text = encoded.pretty();
        let parsed = dbtouch_types::json::parse(&text).unwrap();
        assert_eq!(decode_action(&parsed).unwrap(), action);
    }

    #[test]
    fn actions_round_trip_through_json() {
        round_trip(TouchAction::Scan);
        round_trip(TouchAction::Tuple);
        round_trip(TouchAction::Aggregate(AggregateKind::Max));
        round_trip(TouchAction::Summary {
            half_window: None,
            kind: AggregateKind::Avg,
        });
        round_trip(TouchAction::Summary {
            half_window: Some(2_000),
            kind: AggregateKind::Sum,
        });
        round_trip(TouchAction::FilteredScan {
            predicate: Predicate::compare(CompareOp::Ge, Value::Int(i64::MAX - 7)),
        });
        round_trip(TouchAction::FilteredAggregate {
            predicate: Predicate::Not(Box::new(Predicate::Or(vec![
                Predicate::between(Value::Float(0.25), Value::Float(0.75)),
                Predicate::And(vec![Predicate::compare(CompareOp::Ne, Value::Bool(true))]),
            ]))),
            kind: AggregateKind::Count,
        });
        round_trip(TouchAction::GroupBy {
            group_attribute: 0,
            value_attribute: 3,
            kind: AggregateKind::Min,
        });
    }

    #[test]
    fn persist_then_open_round_trips_catalog_and_results() {
        use crate::session::Session;
        use dbtouch_gesture::synthesizer::GestureSynthesizer;

        let dir = temp_dir("round-trip");
        let catalog = SharedCatalog::new(KernelConfig::default());
        catalog
            .load_column(
                "signal",
                (0..60_000).map(|i| i % 997).collect(),
                SizeCm::new(2.0, 12.0),
            )
            .unwrap();
        let table = dbtouch_storage::table::Table::from_columns(
            "t",
            vec![
                dbtouch_storage::column::Column::from_i64("id", (0..500).collect()),
                dbtouch_storage::column::Column::from_f64(
                    "v",
                    (0..500).map(|i| i as f64 * 0.5).collect(),
                ),
            ],
        )
        .unwrap();
        let tid = catalog.load_table(table, SizeCm::new(6.0, 10.0)).unwrap();
        catalog.set_default_action(tid, TouchAction::Tuple).unwrap();
        let persisted_epoch = catalog.persist_to(&dir).unwrap();
        assert_eq!(persisted_epoch, catalog.epoch());

        let reopened = SharedCatalog::open(&dir, KernelConfig::default()).unwrap();
        assert_eq!(reopened.epoch(), catalog.epoch());
        assert_eq!(reopened.restructure_count(), catalog.restructure_count());
        assert_eq!(reopened.names(), catalog.names());
        let sid = reopened.object_id("signal").unwrap();
        let original = catalog.data(catalog.object_id("signal").unwrap()).unwrap();
        let back = reopened.data(sid).unwrap();
        assert_eq!(back.schema(), original.schema());
        assert_eq!(back.row_count(), original.row_count());
        assert_eq!(
            back.hierarchies()[0].level_count(),
            original.hierarchies()[0].level_count()
        );
        // Paged-backed: no row data resident until touched.
        assert!(back.matrix().columns().unwrap()[0].paged_extent().is_some());
        let t_back = reopened.data(reopened.object_id("t").unwrap()).unwrap();
        assert_eq!(t_back.default_action(), &TouchAction::Tuple);

        // Same trace, bit-identical results against the reopened catalog.
        let view = original.base_view().clone();
        let trace = GestureSynthesizer::new(60.0).slide_down(&view, 1.5);
        let run = |catalog: &SharedCatalog, id| {
            let mut state = catalog.checkout(id).unwrap();
            state.set_action(TouchAction::Summary {
                half_window: Some(50),
                kind: AggregateKind::Avg,
            });
            Session::new(&mut state, catalog.config())
                .run(&trace)
                .unwrap()
        };
        let a = run(&catalog, catalog.object_id("signal").unwrap());
        let b = run(&reopened, sid);
        assert_eq!(a.results, b.results);
        assert_eq!(a.stats.rows_touched, b.stats.rows_touched);
        let stats = reopened.pager_stats().unwrap();
        assert!(
            stats.faults > 0,
            "reopened reads must fault pages: {stats:?}"
        );
    }

    #[test]
    fn encoded_catalog_round_trips_and_exposes_encoding_metrics() {
        use crate::session::Session;
        use dbtouch_gesture::synthesizer::GestureSynthesizer;

        // Long constant runs: prime RLE territory for the page-span encoder.
        let rows: Vec<i64> = (0..60_000).map(|i| (i / 500) % 4).collect();
        let run = |config: KernelConfig, tag: &str| {
            let dir = temp_dir(&format!("encoded-rt-{tag}"));
            {
                // Attached open: the load's auto-persist packs pages through
                // this catalog's own pager, so pack counters land here.
                let writer = SharedCatalog::open(&dir, config.clone()).unwrap();
                writer
                    .load_column("steps", rows.clone(), SizeCm::new(2.0, 12.0))
                    .unwrap();
                let packed = writer.telemetry().snapshot();
                if config.encoding_enabled {
                    let rle = packed.scalar("encoding.rle_pages").unwrap();
                    let saved = packed.scalar("encoding.bytes_saved").unwrap();
                    assert!(rle > 0, "runs of 500 must pack as RLE: {rle}");
                    assert!(saved > 0, "packing must shrink the page count: {saved}");
                } else {
                    assert_eq!(packed.scalar("encoding.rle_pages"), Some(0));
                    assert_eq!(packed.scalar("encoding.bytes_saved"), Some(0));
                }
            }
            let reopened = SharedCatalog::open(&dir, config).unwrap();
            let id = reopened.object_id("steps").unwrap();
            let data = reopened.data(id).unwrap();
            let view = data.base_view().clone();
            let trace = GestureSynthesizer::new(60.0).slide_down(&view, 1.5);
            let mut state = reopened.checkout(id).unwrap();
            state.set_action(TouchAction::Summary {
                half_window: Some(200),
                kind: AggregateKind::Sum,
            });
            let outcome = Session::new(&mut state, reopened.config())
                .run(&trace)
                .unwrap();
            drop(state);
            (reopened, outcome)
        };

        let (encoded, enc_out) = run(KernelConfig::default(), "on");
        let (_, raw_out) = run(KernelConfig::default().with_encoding(false), "off");
        // Bit-identical answers regardless of the on-disk representation.
        assert_eq!(enc_out.results, raw_out.results);
        assert_eq!(enc_out.stats.rows_touched, raw_out.stats.rows_touched);

        // Drive the segment kernel straight at the reopened packed column
        // (zone maps answer aligned segments without touching pages, so the
        // session above may never fault one) and confirm the run fast path.
        let data = encoded.data(encoded.object_id("steps").unwrap()).unwrap();
        let col = &data.matrix().columns().unwrap()[0];
        assert!(col.paged_extent().is_some());
        let stats = col
            .segment_range_stats(dbtouch_types::RowRange::new(0, 60_000))
            .unwrap();
        assert_eq!(stats.count, 60_000);
        assert!(
            encoded
                .telemetry()
                .snapshot()
                .scalar("encoding.run_skips")
                .unwrap()
                > 0,
            "scans over reopened RLE pages must take the run fast path"
        );
    }

    #[test]
    fn attached_catalog_persists_every_publish_and_resumes() {
        let dir = temp_dir("attached");
        {
            let catalog = SharedCatalog::open(&dir, KernelConfig::default()).unwrap();
            assert_eq!(catalog.epoch(), 0);
            let table = dbtouch_storage::table::Table::from_columns(
                "t",
                vec![
                    dbtouch_storage::column::Column::from_i64("id", (0..2_000).collect()),
                    dbtouch_storage::column::Column::from_i64("m", (0..2_000).rev().collect()),
                ],
            )
            .unwrap();
            let tid = catalog.load_table(table, SizeCm::new(6.0, 10.0)).unwrap();
            let cid = catalog
                .drag_column_out(tid, "m", SizeCm::new(2.0, 10.0))
                .unwrap();
            catalog.drag_column_into(tid, cid).unwrap();
            assert_eq!(catalog.epoch(), 3);
            // No explicit persist_to: every publish persisted itself.
        }
        let reopened = SharedCatalog::open(&dir, KernelConfig::default()).unwrap();
        assert_eq!(reopened.epoch(), 3);
        assert_eq!(reopened.restructure_count(), 2);
        assert_eq!(reopened.names(), vec!["t".to_string()]);
        // The tombstone of the merged-away column survives the restart.
        assert_eq!(reopened.object_count(), 1);
        assert!(reopened.snapshot().slot_count() > 1);
        let tid = reopened.object_id("t").unwrap();
        let data = reopened.data(tid).unwrap();
        let schema: Vec<&str> = data.schema().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(schema, vec!["id", "m"]);
        // Ids continue after the tombstone, never reusing it.
        let next = reopened
            .load_column("x", vec![1, 2, 3], SizeCm::new(2.0, 10.0))
            .unwrap();
        assert_eq!(next.0, reopened.snapshot().slot_count() as u64 - 1);
        assert_eq!(reopened.epoch(), 4);
    }

    #[test]
    fn reopened_catalogs_mint_fresh_identities() {
        let dir = temp_dir("identities");
        let catalog = SharedCatalog::new(KernelConfig::default());
        let id = catalog
            .load_column("a", (0..100).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        catalog.persist_to(&dir).unwrap();
        let first = SharedCatalog::open(&dir, KernelConfig::default()).unwrap();
        let second = SharedCatalog::open(&dir, KernelConfig::default()).unwrap();
        // Identities key the shared result cache; two opens of the same
        // directory (or an open beside the original) must never collide.
        let originals = catalog.data(id).unwrap().identity();
        let a = first
            .data(first.object_id("a").unwrap())
            .unwrap()
            .identity();
        let b = second
            .data(second.object_id("a").unwrap())
            .unwrap()
            .identity();
        assert_ne!(a, b);
        assert_ne!(a, originals);
        assert_ne!(b, originals);
    }

    /// Regression mirror of the PR 2 `drag_column_out` carryover fix, for the
    /// reopen path: a session on a *reopened* catalog that observes a
    /// restructure must come back with a cold region cache and prefetcher —
    /// reopening must not introduce any path that carries session state
    /// across a rebuild.
    #[test]
    fn reopened_catalog_refresh_starts_cold_after_restructure() {
        use crate::session::Session;
        use dbtouch_gesture::synthesizer::GestureSynthesizer;

        let dir = temp_dir("cold-refresh");
        {
            let catalog = SharedCatalog::open(&dir, KernelConfig::default()).unwrap();
            let table = dbtouch_storage::table::Table::from_columns(
                "t",
                vec![
                    dbtouch_storage::column::Column::from_i64("id", (0..50_000).collect()),
                    dbtouch_storage::column::Column::from_f64(
                        "v",
                        (0..50_000).map(|i| i as f64).collect(),
                    ),
                ],
            )
            .unwrap();
            catalog.load_table(table, SizeCm::new(6.0, 10.0)).unwrap();
        }
        let catalog = SharedCatalog::open(&dir, KernelConfig::default()).unwrap();
        let tid = catalog.object_id("t").unwrap();
        let mut state = catalog.checkout(tid).unwrap();
        state.set_action(TouchAction::Tuple);
        let view = state.view().clone();
        let trace = GestureSynthesizer::new(60.0).exploratory_slide(&view, 2.0);
        Session::new(&mut state, catalog.config())
            .run(&trace)
            .unwrap();
        assert!(
            state.cache.stats().resident_rows > 0,
            "session must warm its region cache against the paged catalog"
        );

        catalog
            .drag_column_out(tid, "v", SizeCm::new(2.0, 10.0))
            .unwrap();
        assert!(state.refresh(&catalog).unwrap());
        assert_eq!(state.restructures_seen(), 1);
        assert_eq!(
            state.cache.stats(),
            dbtouch_storage::cache::CacheStats::default(),
            "region cache must start cold after a restructure on a reopened catalog"
        );
        assert_eq!(
            state.prefetcher.stats(),
            dbtouch_storage::prefetch::PrefetchStats::default(),
            "prefetcher must start cold after a restructure on a reopened catalog"
        );
    }

    #[test]
    fn malformed_actions_are_corrupt_not_panics() {
        for text in [
            "{}",
            r#"{"kind": "warp"}"#,
            r#"{"kind": "aggregate"}"#,
            r#"{"kind": "summary", "agg": "median"}"#,
            r#"{"kind": "group_by", "agg": "sum", "group_attribute": -1, "value_attribute": 0}"#,
        ] {
            let parsed = dbtouch_types::json::parse(text).unwrap();
            assert!(decode_action(&parsed).is_err(), "accepted {text}");
        }
    }
}
