//! Incremental grouping.
//!
//! Hash-based grouping is blocking in the same way hash joins are (Section 2.9).
//! The incremental group-by keeps one running aggregate per group and absorbs
//! one `(group, value)` pair per touch, so partial group results are available
//! and continuously refined throughout the gesture.

use crate::operators::aggregate::{AggregateKind, RunningAggregate};
use dbtouch_types::Value;
use std::collections::HashMap;

/// An incrementally maintained group-by with one running aggregate per group.
#[derive(Debug, Clone)]
pub struct IncrementalGroupBy {
    kind: AggregateKind,
    groups: HashMap<String, (Value, RunningAggregate)>,
    rows_consumed: u64,
}

impl IncrementalGroupBy {
    /// Create a group-by maintaining the given aggregate per group.
    pub fn new(kind: AggregateKind) -> IncrementalGroupBy {
        IncrementalGroupBy {
            kind,
            groups: HashMap::new(),
            rows_consumed: 0,
        }
    }

    fn group_key(value: &Value) -> String {
        match value.as_f64() {
            Ok(v) => format!("n:{v}"),
            Err(_) => format!("s:{value}"),
        }
    }

    /// Absorb one `(group, value)` pair.
    pub fn update(&mut self, group: Value, value: f64) {
        self.rows_consumed += 1;
        let key = Self::group_key(&group);
        let entry = self
            .groups
            .entry(key)
            .or_insert_with(|| (group, RunningAggregate::new(self.kind)));
        entry.1.update(value);
    }

    /// Number of distinct groups seen so far.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Rows consumed so far.
    pub fn rows_consumed(&self) -> u64 {
        self.rows_consumed
    }

    /// The current `(group, aggregate value)` pairs, sorted by group for
    /// deterministic output.
    pub fn results(&self) -> Vec<(Value, f64)> {
        let mut out: Vec<(Value, f64)> = self
            .groups
            .values()
            .filter_map(|(g, agg)| agg.value().map(|v| (g.clone(), v)))
            .collect();
        out.sort_by(|a, b| a.0.total_cmp(&b.0));
        out
    }

    /// The aggregate for one specific group, if that group has been seen.
    pub fn group(&self, group: &Value) -> Option<f64> {
        self.groups
            .get(&Self::group_key(group))
            .and_then(|(_, agg)| agg.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_accumulate_independently() {
        let mut g = IncrementalGroupBy::new(AggregateKind::Sum);
        g.update(Value::Str("a".into()), 1.0);
        g.update(Value::Str("b".into()), 10.0);
        g.update(Value::Str("a".into()), 2.0);
        assert_eq!(g.group_count(), 2);
        assert_eq!(g.rows_consumed(), 3);
        assert_eq!(g.group(&Value::Str("a".into())), Some(3.0));
        assert_eq!(g.group(&Value::Str("b".into())), Some(10.0));
        assert_eq!(g.group(&Value::Str("c".into())), None);
    }

    #[test]
    fn results_sorted_by_group() {
        let mut g = IncrementalGroupBy::new(AggregateKind::Count);
        g.update(Value::Int(3), 0.0);
        g.update(Value::Int(1), 0.0);
        g.update(Value::Int(2), 0.0);
        g.update(Value::Int(1), 0.0);
        let results = g.results();
        assert_eq!(
            results,
            vec![
                (Value::Int(1), 2.0),
                (Value::Int(2), 1.0),
                (Value::Int(3), 1.0)
            ]
        );
    }

    #[test]
    fn avg_per_group() {
        let mut g = IncrementalGroupBy::new(AggregateKind::Avg);
        g.update(Value::Int(1), 10.0);
        g.update(Value::Int(1), 20.0);
        assert_eq!(g.group(&Value::Int(1)), Some(15.0));
    }

    #[test]
    fn numeric_groups_unify_across_types() {
        let mut g = IncrementalGroupBy::new(AggregateKind::Count);
        g.update(Value::Int(2), 0.0);
        g.update(Value::Float(2.0), 0.0);
        assert_eq!(g.group_count(), 1);
        assert_eq!(g.group(&Value::Int(2)), Some(2.0));
    }

    #[test]
    fn empty_group_by() {
        let g = IncrementalGroupBy::new(AggregateKind::Sum);
        assert_eq!(g.group_count(), 0);
        assert!(g.results().is_empty());
    }
}
