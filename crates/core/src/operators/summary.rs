//! Interactive summaries (Section 2.7).
//!
//! "When during a slide we register position p which corresponds to tuple
//! identifier id_p, then dbTouch scans all entries within the tuple identifier
//! range [id_p − k, id_p + k] and calculates a single aggregate value."
//!
//! Summaries let each touch inspect more data than the single touched entry and
//! expose local patterns (the aggregate of a small, controlled group of rows).

use crate::operators::aggregate::AggregateKind;
use dbtouch_storage::column::Column;
use dbtouch_types::{Result, RowId, RowRange};
use serde::{Deserialize, Serialize};

/// The aggregate of one summary window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SummaryValue {
    /// The touched tuple identifier at the centre of the window.
    pub center: RowId,
    /// The window of rows actually aggregated (clamped to the data bounds).
    pub window: RowRange,
    /// Number of rows aggregated.
    pub count: u64,
    /// The aggregate value (`None` only for an empty window with a non-count
    /// aggregate, which can only happen on an empty column).
    pub value: Option<f64>,
}

/// Computes `[id−k, id+k]` window aggregates around touched rows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InteractiveSummary {
    /// Half-window `k`.
    pub half_window: u64,
    /// Aggregate used inside the window. The paper recommends average as the
    /// default.
    pub kind: AggregateKind,
}

impl Default for InteractiveSummary {
    fn default() -> Self {
        InteractiveSummary {
            half_window: 5,
            kind: AggregateKind::Avg,
        }
    }
}

impl InteractiveSummary {
    /// Create a summary operator with half-window `k` and aggregate `kind`.
    pub fn new(half_window: u64, kind: AggregateKind) -> InteractiveSummary {
        InteractiveSummary { half_window, kind }
    }

    /// Number of rows a full (unclamped) window covers: `2k + 1`.
    pub fn window_rows(&self) -> u64 {
        2 * self.half_window + 1
    }

    /// Compute the summary for a touch that mapped to `center` over `column`.
    pub fn summarize(&self, column: &Column, center: RowId) -> Result<SummaryValue> {
        let window = RowRange::window(center, self.half_window, column.len());
        let (count, sum, min, max) = column.numeric_range_stats(window)?;
        let value = match self.kind {
            AggregateKind::Count => Some(count as f64),
            AggregateKind::Sum => (count > 0).then_some(sum),
            AggregateKind::Avg => (count > 0).then(|| sum / count as f64),
            AggregateKind::Min => min,
            AggregateKind::Max => max,
        };
        Ok(SummaryValue {
            center,
            window,
            count,
            value,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col() -> Column {
        Column::from_i64("c", (0..100).collect())
    }

    #[test]
    fn window_rows() {
        assert_eq!(
            InteractiveSummary::new(5, AggregateKind::Avg).window_rows(),
            11
        );
        assert_eq!(
            InteractiveSummary::new(0, AggregateKind::Avg).window_rows(),
            1
        );
    }

    #[test]
    fn average_summary_centre_of_column() {
        let s = InteractiveSummary::new(2, AggregateKind::Avg);
        let v = s.summarize(&col(), RowId(50)).unwrap();
        assert_eq!(v.window, RowRange::new(48, 53));
        assert_eq!(v.count, 5);
        assert_eq!(v.value, Some(50.0));
        assert_eq!(v.center, RowId(50));
    }

    #[test]
    fn summary_clamped_at_edges() {
        let s = InteractiveSummary::new(5, AggregateKind::Avg);
        let start = s.summarize(&col(), RowId(1)).unwrap();
        assert_eq!(start.window, RowRange::new(0, 7));
        assert_eq!(start.count, 7);
        assert_eq!(start.value, Some(3.0));
        let end = s.summarize(&col(), RowId(99)).unwrap();
        assert_eq!(end.window, RowRange::new(94, 100));
        assert_eq!(end.value, Some(96.5));
    }

    #[test]
    fn different_aggregate_kinds() {
        let c = col();
        let min = InteractiveSummary::new(3, AggregateKind::Min)
            .summarize(&c, RowId(10))
            .unwrap();
        assert_eq!(min.value, Some(7.0));
        let max = InteractiveSummary::new(3, AggregateKind::Max)
            .summarize(&c, RowId(10))
            .unwrap();
        assert_eq!(max.value, Some(13.0));
        let sum = InteractiveSummary::new(1, AggregateKind::Sum)
            .summarize(&c, RowId(10))
            .unwrap();
        assert_eq!(sum.value, Some(9.0 + 10.0 + 11.0));
        let count = InteractiveSummary::new(1, AggregateKind::Count)
            .summarize(&c, RowId(10))
            .unwrap();
        assert_eq!(count.value, Some(3.0));
    }

    #[test]
    fn zero_half_window_is_point_read() {
        let s = InteractiveSummary::new(0, AggregateKind::Avg);
        let v = s.summarize(&col(), RowId(42)).unwrap();
        assert_eq!(v.count, 1);
        assert_eq!(v.value, Some(42.0));
    }

    #[test]
    fn empty_column_summary() {
        let empty = Column::from_i64("e", vec![]);
        let s = InteractiveSummary::default();
        let v = s.summarize(&empty, RowId(0)).unwrap();
        assert_eq!(v.count, 0);
        assert_eq!(v.value, None);
    }

    #[test]
    fn non_numeric_column_rejected() {
        let strings = Column::from_strings("s", 4, &["a", "b"]).unwrap();
        assert!(InteractiveSummary::default()
            .summarize(&strings, RowId(0))
            .is_err());
    }

    #[test]
    fn center_beyond_column_clamps() {
        let s = InteractiveSummary::new(2, AggregateKind::Avg);
        let v = s.summarize(&col(), RowId(500)).unwrap();
        assert_eq!(v.window, RowRange::new(97, 100));
        assert_eq!(v.value, Some(98.0));
    }
}
