//! Joins under user-controlled data flow (Section 2.9).
//!
//! "The join is primarily a blocking operator as the hash-join is the typical
//! choice. [...] However, in dbTouch we do not know up front all the data we
//! are going to process. [...] As such, exploiting non blocking options is a
//! necessary path in dbTouch."
//!
//! [`SymmetricHashJoin`] is the non-blocking option: both inputs maintain a hash
//! table; a touched row from either side is inserted into its own table and
//! probed against the other side's table, producing matches immediately.
//! [`BlockingHashJoin`] is the classical build-then-probe hash join used as the
//! comparison point in the ablation benchmark: nothing is produced until the
//! entire build side has been consumed.

use dbtouch_types::{RowId, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which input of the join a touched row belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinSide {
    /// The left input.
    Left,
    /// The right input.
    Right,
}

/// One produced join match.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinMatch {
    /// Row of the left input.
    pub left_row: RowId,
    /// Row of the right input.
    pub right_row: RowId,
    /// The join key value.
    pub key: Value,
}

/// Key normalization: numeric keys join across Int/Float/Timestamp by value.
fn key_of(value: &Value) -> String {
    match value.as_f64() {
        Ok(v) => format!("n:{v}"),
        Err(_) => format!("s:{value}"),
    }
}

/// A non-blocking symmetric hash join.
#[derive(Debug, Clone, Default)]
pub struct SymmetricHashJoin {
    left: HashMap<String, Vec<(RowId, Value)>>,
    right: HashMap<String, Vec<(RowId, Value)>>,
    matches_produced: u64,
    rows_consumed: u64,
}

impl SymmetricHashJoin {
    /// Create an empty join.
    pub fn new() -> SymmetricHashJoin {
        SymmetricHashJoin::default()
    }

    /// Feed one touched row from one side; returns the matches it produces
    /// immediately (possibly empty).
    pub fn push(&mut self, side: JoinSide, row: RowId, key: Value) -> Vec<JoinMatch> {
        self.rows_consumed += 1;
        let k = key_of(&key);
        let (own, other) = match side {
            JoinSide::Left => (&mut self.left, &self.right),
            JoinSide::Right => (&mut self.right, &self.left),
        };
        own.entry(k.clone()).or_default().push((row, key.clone()));
        let matches: Vec<JoinMatch> = other
            .get(&k)
            .map(|rows| {
                rows.iter()
                    .map(|(other_row, other_key)| match side {
                        JoinSide::Left => JoinMatch {
                            left_row: row,
                            right_row: *other_row,
                            key: other_key.clone(),
                        },
                        JoinSide::Right => JoinMatch {
                            left_row: *other_row,
                            right_row: row,
                            key: other_key.clone(),
                        },
                    })
                    .collect()
            })
            .unwrap_or_default();
        self.matches_produced += matches.len() as u64;
        matches
    }

    /// Total matches produced so far.
    pub fn matches_produced(&self) -> u64 {
        self.matches_produced
    }

    /// Total rows consumed (both sides).
    pub fn rows_consumed(&self) -> u64 {
        self.rows_consumed
    }

    /// Number of distinct keys currently held across both hash tables (a proxy
    /// for the operator's memory footprint).
    pub fn state_size(&self) -> usize {
        self.left.len() + self.right.len()
    }
}

/// A classical blocking hash join: build the whole left side, then probe.
#[derive(Debug, Clone, Default)]
pub struct BlockingHashJoin {
    build: HashMap<String, Vec<(RowId, Value)>>,
    built: bool,
}

impl BlockingHashJoin {
    /// Create an empty blocking join.
    pub fn new() -> BlockingHashJoin {
        BlockingHashJoin::default()
    }

    /// Add one row to the build side. Panics if probing has already begun —
    /// that is exactly the rigidity the non-blocking join avoids.
    pub fn build_row(&mut self, row: RowId, key: Value) {
        assert!(!self.built, "cannot add build rows after probing started");
        self.build.entry(key_of(&key)).or_default().push((row, key));
    }

    /// Finish the build phase.
    pub fn finish_build(&mut self) {
        self.built = true;
    }

    /// True if the build phase has been finished.
    pub fn is_built(&self) -> bool {
        self.built
    }

    /// Probe with one right-side row; only valid after `finish_build`.
    pub fn probe(&self, row: RowId, key: Value) -> Vec<JoinMatch> {
        assert!(self.built, "probe before finish_build");
        self.build
            .get(&key_of(&key))
            .map(|rows| {
                rows.iter()
                    .map(|(left_row, left_key)| JoinMatch {
                        left_row: *left_row,
                        right_row: row,
                        key: left_key.clone(),
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Number of rows on the build side.
    pub fn build_rows(&self) -> usize {
        self.build.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_join_produces_matches_immediately() {
        let mut j = SymmetricHashJoin::new();
        assert!(j.push(JoinSide::Left, RowId(0), Value::Int(7)).is_empty());
        let m = j.push(JoinSide::Right, RowId(10), Value::Int(7));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].left_row, RowId(0));
        assert_eq!(m[0].right_row, RowId(10));
        assert_eq!(j.matches_produced(), 1);
        assert_eq!(j.rows_consumed(), 2);
    }

    #[test]
    fn symmetric_join_handles_duplicates() {
        let mut j = SymmetricHashJoin::new();
        j.push(JoinSide::Left, RowId(0), Value::Int(1));
        j.push(JoinSide::Left, RowId(1), Value::Int(1));
        let m = j.push(JoinSide::Right, RowId(5), Value::Int(1));
        assert_eq!(m.len(), 2);
        // another right row with the same key matches both left rows again
        let m2 = j.push(JoinSide::Right, RowId(6), Value::Int(1));
        assert_eq!(m2.len(), 2);
        assert_eq!(j.matches_produced(), 4);
    }

    #[test]
    fn symmetric_join_no_match_for_missing_keys() {
        let mut j = SymmetricHashJoin::new();
        j.push(JoinSide::Left, RowId(0), Value::Int(1));
        assert!(j.push(JoinSide::Right, RowId(1), Value::Int(2)).is_empty());
        assert_eq!(j.state_size(), 2);
    }

    #[test]
    fn numeric_keys_join_across_types() {
        let mut j = SymmetricHashJoin::new();
        j.push(JoinSide::Left, RowId(0), Value::Int(3));
        let m = j.push(JoinSide::Right, RowId(1), Value::Float(3.0));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn string_keys_join() {
        let mut j = SymmetricHashJoin::new();
        j.push(JoinSide::Left, RowId(0), Value::Str("eu".into()));
        let m = j.push(JoinSide::Right, RowId(1), Value::Str("eu".into()));
        assert_eq!(m.len(), 1);
        assert!(j
            .push(JoinSide::Right, RowId(2), Value::Str("us".into()))
            .is_empty());
    }

    #[test]
    fn symmetric_matches_blocking_results() {
        // Same inputs through both joins produce the same set of matched pairs.
        let left: Vec<(RowId, Value)> = (0..20)
            .map(|i| (RowId(i), Value::Int((i % 5) as i64)))
            .collect();
        let right: Vec<(RowId, Value)> = (0..15)
            .map(|i| (RowId(i), Value::Int((i % 7) as i64)))
            .collect();

        let mut sym = SymmetricHashJoin::new();
        let mut sym_pairs = Vec::new();
        for (row, key) in &left {
            sym_pairs.extend(sym.push(JoinSide::Left, *row, key.clone()));
        }
        for (row, key) in &right {
            sym_pairs.extend(sym.push(JoinSide::Right, *row, key.clone()));
        }

        let mut blocking = BlockingHashJoin::new();
        for (row, key) in &left {
            blocking.build_row(*row, key.clone());
        }
        blocking.finish_build();
        let mut blk_pairs = Vec::new();
        for (row, key) in &right {
            blk_pairs.extend(blocking.probe(*row, key.clone()));
        }

        let normalize = |mut v: Vec<JoinMatch>| {
            let mut pairs: Vec<(u64, u64)> =
                v.drain(..).map(|m| (m.left_row.0, m.right_row.0)).collect();
            pairs.sort_unstable();
            pairs
        };
        assert_eq!(normalize(sym_pairs), normalize(blk_pairs));
    }

    #[test]
    fn blocking_join_produces_nothing_until_built() {
        let mut b = BlockingHashJoin::new();
        b.build_row(RowId(0), Value::Int(1));
        assert!(!b.is_built());
        b.finish_build();
        assert!(b.is_built());
        assert_eq!(b.build_rows(), 1);
        assert_eq!(b.probe(RowId(9), Value::Int(1)).len(), 1);
        assert!(b.probe(RowId(9), Value::Int(2)).is_empty());
    }

    #[test]
    #[should_panic(expected = "probe before finish_build")]
    fn blocking_join_probe_before_build_panics() {
        let b = BlockingHashJoin::new();
        b.probe(RowId(0), Value::Int(1));
    }

    #[test]
    #[should_panic(expected = "cannot add build rows")]
    fn blocking_join_build_after_probe_panics() {
        let mut b = BlockingHashJoin::new();
        b.finish_build();
        b.build_row(RowId(0), Value::Int(1));
    }
}
