//! Selection predicates ("where" restrictions on a scan).
//!
//! Section 2.9: "the slide gesture can be used in order to run any kind of
//! aggregate over a column object or to perform selections by posing a where
//! restriction to the scan." A predicate is evaluated per touched value (or per
//! summary window); values failing the predicate are simply not delivered and
//! not aggregated.

use dbtouch_types::{Result, Value};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompareOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CompareOp {
    fn matches(&self, ordering: Ordering) -> bool {
        match self {
            CompareOp::Eq => ordering == Ordering::Equal,
            CompareOp::Ne => ordering != Ordering::Equal,
            CompareOp::Lt => ordering == Ordering::Less,
            CompareOp::Le => ordering != Ordering::Greater,
            CompareOp::Gt => ordering == Ordering::Greater,
            CompareOp::Ge => ordering != Ordering::Less,
        }
    }

    /// SQL-ish symbol for display.
    pub fn symbol(&self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        }
    }
}

/// A predicate over a single value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// Compare the value against a constant.
    Compare {
        /// Comparison operator.
        op: CompareOp,
        /// Constant to compare against.
        value: Value,
    },
    /// True when the value falls in `[low, high]` (inclusive).
    Between {
        /// Lower bound.
        low: Value,
        /// Upper bound.
        high: Value,
    },
    /// Conjunction of predicates (all must hold).
    And(Vec<Predicate>),
    /// Disjunction of predicates (any may hold).
    Or(Vec<Predicate>),
    /// Negation of a predicate.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Convenience constructor for a comparison predicate.
    pub fn compare(op: CompareOp, value: impl Into<Value>) -> Predicate {
        Predicate::Compare {
            op,
            value: value.into(),
        }
    }

    /// Convenience constructor for a between predicate.
    pub fn between(low: impl Into<Value>, high: impl Into<Value>) -> Predicate {
        Predicate::Between {
            low: low.into(),
            high: high.into(),
        }
    }

    /// Evaluate the predicate against a value.
    pub fn eval(&self, value: &Value) -> Result<bool> {
        Ok(match self {
            Predicate::Compare { op, value: rhs } => op.matches(value.total_cmp(rhs)),
            Predicate::Between { low, high } => {
                value.total_cmp(low) != Ordering::Less && value.total_cmp(high) != Ordering::Greater
            }
            Predicate::And(ps) => {
                for p in ps {
                    if !p.eval(value)? {
                        return Ok(false);
                    }
                }
                true
            }
            Predicate::Or(ps) => {
                for p in ps {
                    if p.eval(value)? {
                        return Ok(true);
                    }
                }
                false
            }
            Predicate::Not(p) => !p.eval(value)?,
        })
    }

    /// An estimate of how expensive the predicate is to evaluate (number of
    /// primitive comparisons). Used by the adaptive optimizer to order filter
    /// pipelines.
    pub fn cost(&self) -> u64 {
        match self {
            Predicate::Compare { .. } => 1,
            Predicate::Between { .. } => 2,
            Predicate::And(ps) | Predicate::Or(ps) => {
                ps.iter().map(Predicate::cost).sum::<u64>() + 1
            }
            Predicate::Not(p) => p.cost() + 1,
        }
    }

    /// The numeric bounds `[lo, hi]` the predicate can restrict a value to, if
    /// derivable. Used to exploit zone-map indexes during filtered slides.
    pub fn numeric_bounds(&self) -> Option<(f64, f64)> {
        match self {
            Predicate::Compare { op, value } => {
                let v = value.as_f64().ok()?;
                Some(match op {
                    CompareOp::Eq => (v, v),
                    CompareOp::Lt | CompareOp::Le => (f64::NEG_INFINITY, v),
                    CompareOp::Gt | CompareOp::Ge => (v, f64::INFINITY),
                    CompareOp::Ne => return None,
                })
            }
            Predicate::Between { low, high } => Some((low.as_f64().ok()?, high.as_f64().ok()?)),
            Predicate::And(ps) => {
                let mut lo = f64::NEG_INFINITY;
                let mut hi = f64::INFINITY;
                let mut any = false;
                for p in ps {
                    if let Some((l, h)) = p.numeric_bounds() {
                        lo = lo.max(l);
                        hi = hi.min(h);
                        any = true;
                    }
                }
                any.then_some((lo, hi))
            }
            _ => None,
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Compare { op, value } => write!(f, "x {} {}", op.symbol(), value),
            Predicate::Between { low, high } => write!(f, "x between {low} and {high}"),
            Predicate::And(ps) => {
                let parts: Vec<String> = ps.iter().map(|p| p.to_string()).collect();
                write!(f, "({})", parts.join(" and "))
            }
            Predicate::Or(ps) => {
                let parts: Vec<String> = ps.iter().map(|p| p.to_string()).collect();
                write!(f, "({})", parts.join(" or "))
            }
            Predicate::Not(p) => write!(f, "not {p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparisons() {
        let v = Value::Int(5);
        assert!(Predicate::compare(CompareOp::Eq, 5i64).eval(&v).unwrap());
        assert!(Predicate::compare(CompareOp::Ne, 4i64).eval(&v).unwrap());
        assert!(Predicate::compare(CompareOp::Lt, 6i64).eval(&v).unwrap());
        assert!(Predicate::compare(CompareOp::Le, 5i64).eval(&v).unwrap());
        assert!(Predicate::compare(CompareOp::Gt, 4i64).eval(&v).unwrap());
        assert!(Predicate::compare(CompareOp::Ge, 5i64).eval(&v).unwrap());
        assert!(!Predicate::compare(CompareOp::Gt, 5i64).eval(&v).unwrap());
    }

    #[test]
    fn mixed_numeric_comparison() {
        // ints compare against float constants via total numeric ordering
        assert!(Predicate::compare(CompareOp::Gt, 4.5f64)
            .eval(&Value::Int(5))
            .unwrap());
        assert!(!Predicate::compare(CompareOp::Gt, 5.5f64)
            .eval(&Value::Int(5))
            .unwrap());
    }

    #[test]
    fn between_inclusive() {
        let p = Predicate::between(10i64, 20i64);
        assert!(p.eval(&Value::Int(10)).unwrap());
        assert!(p.eval(&Value::Int(20)).unwrap());
        assert!(p.eval(&Value::Int(15)).unwrap());
        assert!(!p.eval(&Value::Int(9)).unwrap());
        assert!(!p.eval(&Value::Int(21)).unwrap());
    }

    #[test]
    fn boolean_combinators() {
        let p = Predicate::And(vec![
            Predicate::compare(CompareOp::Ge, 0i64),
            Predicate::compare(CompareOp::Lt, 10i64),
        ]);
        assert!(p.eval(&Value::Int(5)).unwrap());
        assert!(!p.eval(&Value::Int(15)).unwrap());

        let q = Predicate::Or(vec![
            Predicate::compare(CompareOp::Lt, 0i64),
            Predicate::compare(CompareOp::Gt, 100i64),
        ]);
        assert!(q.eval(&Value::Int(-1)).unwrap());
        assert!(q.eval(&Value::Int(101)).unwrap());
        assert!(!q.eval(&Value::Int(50)).unwrap());

        let n = Predicate::Not(Box::new(Predicate::compare(CompareOp::Eq, 3i64)));
        assert!(n.eval(&Value::Int(4)).unwrap());
        assert!(!n.eval(&Value::Int(3)).unwrap());
    }

    #[test]
    fn string_predicates() {
        let p = Predicate::compare(CompareOp::Eq, "error");
        assert!(p.eval(&Value::Str("error".into())).unwrap());
        assert!(!p.eval(&Value::Str("ok".into())).unwrap());
    }

    #[test]
    fn cost_estimates() {
        assert_eq!(Predicate::compare(CompareOp::Eq, 1i64).cost(), 1);
        assert_eq!(Predicate::between(0i64, 1i64).cost(), 2);
        let and = Predicate::And(vec![
            Predicate::compare(CompareOp::Eq, 1i64),
            Predicate::between(0i64, 1i64),
        ]);
        assert_eq!(and.cost(), 4);
        assert_eq!(Predicate::Not(Box::new(and)).cost(), 5);
    }

    #[test]
    fn numeric_bounds_extraction() {
        assert_eq!(
            Predicate::between(5i64, 10i64).numeric_bounds(),
            Some((5.0, 10.0))
        );
        assert_eq!(
            Predicate::compare(CompareOp::Eq, 3i64).numeric_bounds(),
            Some((3.0, 3.0))
        );
        let (lo, hi) = Predicate::compare(CompareOp::Gt, 7i64)
            .numeric_bounds()
            .unwrap();
        assert_eq!(lo, 7.0);
        assert!(hi.is_infinite());
        let and = Predicate::And(vec![
            Predicate::compare(CompareOp::Ge, 0i64),
            Predicate::compare(CompareOp::Le, 9i64),
        ]);
        assert_eq!(and.numeric_bounds(), Some((0.0, 9.0)));
        assert_eq!(
            Predicate::compare(CompareOp::Ne, 3i64).numeric_bounds(),
            None
        );
        assert_eq!(
            Predicate::compare(CompareOp::Eq, "abc").numeric_bounds(),
            None
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Predicate::compare(CompareOp::Gt, 5i64).to_string(), "x > 5");
        assert_eq!(
            Predicate::between(1i64, 2i64).to_string(),
            "x between 1 and 2"
        );
    }
}
