//! Running aggregates.
//!
//! When an aggregation action is selected, dbTouch "computes a running aggregate
//! and continuously updates this result" as the slide progresses (Section 2.3).
//! [`RunningAggregate`] is that state: it absorbs one value per touch (or one
//! summary window per touch) and can report the current aggregate at any time.

use dbtouch_types::{DbTouchError, Result};
use serde::{Deserialize, Serialize};

/// The aggregate function being maintained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggregateKind {
    /// Number of values touched.
    Count,
    /// Sum of touched values.
    Sum,
    /// Arithmetic mean of touched values.
    Avg,
    /// Minimum touched value.
    Min,
    /// Maximum touched value.
    Max,
}

impl AggregateKind {
    /// All supported aggregate kinds (useful for sweeps in tests/benches).
    pub const ALL: [AggregateKind; 5] = [
        AggregateKind::Count,
        AggregateKind::Sum,
        AggregateKind::Avg,
        AggregateKind::Min,
        AggregateKind::Max,
    ];

    /// Lowercase name (`count`, `sum`, ...).
    pub fn name(&self) -> &'static str {
        match self {
            AggregateKind::Count => "count",
            AggregateKind::Sum => "sum",
            AggregateKind::Avg => "avg",
            AggregateKind::Min => "min",
            AggregateKind::Max => "max",
        }
    }
}

/// Incrementally maintained aggregate over the values touched so far.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunningAggregate {
    kind: AggregateKind,
    count: u64,
    sum: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl RunningAggregate {
    /// Create an empty aggregate of the given kind.
    pub fn new(kind: AggregateKind) -> RunningAggregate {
        RunningAggregate {
            kind,
            count: 0,
            sum: 0.0,
            min: None,
            max: None,
        }
    }

    /// The aggregate kind.
    pub fn kind(&self) -> AggregateKind {
        self.kind
    }

    /// Absorb a single value.
    pub fn update(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = Some(self.min.map_or(value, |m| m.min(value)));
        self.max = Some(self.max.map_or(value, |m| m.max(value)));
    }

    /// Absorb a pre-aggregated batch described by `(count, sum, min, max)` —
    /// the shape produced by the storage layer's range statistics. This lets an
    /// interactive-summary window feed the running aggregate without
    /// re-touching individual rows.
    pub fn update_batch(&mut self, count: u64, sum: f64, min: Option<f64>, max: Option<f64>) {
        if count == 0 {
            return;
        }
        self.count += count;
        self.sum += sum;
        if let Some(m) = min {
            self.min = Some(self.min.map_or(m, |cur| cur.min(m)));
        }
        if let Some(m) = max {
            self.max = Some(self.max.map_or(m, |cur| cur.max(m)));
        }
    }

    /// Merge another running aggregate of the same kind into this one.
    pub fn merge(&mut self, other: &RunningAggregate) -> Result<()> {
        if self.kind != other.kind {
            return Err(DbTouchError::InvalidPlan(format!(
                "cannot merge {} aggregate into {} aggregate",
                other.kind.name(),
                self.kind.name()
            )));
        }
        self.update_batch(other.count, other.sum, other.min, other.max);
        Ok(())
    }

    /// Values absorbed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The current value of the aggregate, or `None` before any input (except
    /// `Count`, which is 0).
    pub fn value(&self) -> Option<f64> {
        match self.kind {
            AggregateKind::Count => Some(self.count as f64),
            AggregateKind::Sum => {
                if self.count == 0 {
                    None
                } else {
                    Some(self.sum)
                }
            }
            AggregateKind::Avg => {
                if self.count == 0 {
                    None
                } else {
                    Some(self.sum / self.count as f64)
                }
            }
            AggregateKind::Min => self.min,
            AggregateKind::Max => self.max,
        }
    }

    /// Reset to the empty state.
    pub fn reset(&mut self) {
        self.count = 0;
        self.sum = 0.0;
        self.min = None;
        self.max = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_sum_avg_min_max() {
        let values = [3.0, 1.0, 4.0, 1.0, 5.0];
        let mut aggs: Vec<RunningAggregate> = AggregateKind::ALL
            .iter()
            .map(|k| RunningAggregate::new(*k))
            .collect();
        for v in values {
            for a in &mut aggs {
                a.update(v);
            }
        }
        assert_eq!(aggs[0].value(), Some(5.0)); // count
        assert_eq!(aggs[1].value(), Some(14.0)); // sum
        assert_eq!(aggs[2].value(), Some(2.8)); // avg
        assert_eq!(aggs[3].value(), Some(1.0)); // min
        assert_eq!(aggs[4].value(), Some(5.0)); // max
    }

    #[test]
    fn empty_aggregates() {
        assert_eq!(
            RunningAggregate::new(AggregateKind::Count).value(),
            Some(0.0)
        );
        assert_eq!(RunningAggregate::new(AggregateKind::Sum).value(), None);
        assert_eq!(RunningAggregate::new(AggregateKind::Avg).value(), None);
        assert_eq!(RunningAggregate::new(AggregateKind::Min).value(), None);
        assert_eq!(RunningAggregate::new(AggregateKind::Max).value(), None);
    }

    #[test]
    fn batch_update_matches_individual_updates() {
        let mut a = RunningAggregate::new(AggregateKind::Avg);
        let mut b = RunningAggregate::new(AggregateKind::Avg);
        for v in [2.0, 4.0, 6.0] {
            a.update(v);
        }
        b.update_batch(3, 12.0, Some(2.0), Some(6.0));
        assert_eq!(a.value(), b.value());
        assert_eq!(a.count(), b.count());
        // empty batch is a no-op
        b.update_batch(0, 100.0, Some(-5.0), Some(50.0));
        assert_eq!(a.value(), b.value());
    }

    #[test]
    fn merge_same_kind() {
        let mut a = RunningAggregate::new(AggregateKind::Max);
        a.update(3.0);
        let mut b = RunningAggregate::new(AggregateKind::Max);
        b.update(7.0);
        a.merge(&b).unwrap();
        assert_eq!(a.value(), Some(7.0));
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn merge_kind_mismatch_rejected() {
        let mut a = RunningAggregate::new(AggregateKind::Min);
        let b = RunningAggregate::new(AggregateKind::Max);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn reset_clears_state() {
        let mut a = RunningAggregate::new(AggregateKind::Sum);
        a.update(5.0);
        a.reset();
        assert_eq!(a.value(), None);
        assert_eq!(a.count(), 0);
    }

    #[test]
    fn running_avg_updates_continuously() {
        let mut a = RunningAggregate::new(AggregateKind::Avg);
        a.update(10.0);
        assert_eq!(a.value(), Some(10.0));
        a.update(20.0);
        assert_eq!(a.value(), Some(15.0));
        a.update(30.0);
        assert_eq!(a.value(), Some(20.0));
    }

    #[test]
    fn kind_names() {
        assert_eq!(AggregateKind::Avg.name(), "avg");
        assert_eq!(AggregateKind::ALL.len(), 5);
    }
}
