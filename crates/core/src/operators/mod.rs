//! Per-touch query operators.
//!
//! "Every single touch on a data object can be seen as a request to run an
//! operator or a collection of operators over part of the data." The operators
//! here are deliberately incremental: each call processes the data addressed by
//! one touch and updates running state, so the kernel can respond to every touch
//! within its response-time budget regardless of data size.

pub mod aggregate;
pub mod filter;
pub mod groupby;
pub mod join;
pub mod scan;
pub mod summary;

pub use aggregate::{AggregateKind, RunningAggregate};
pub use filter::{CompareOp, Predicate};
pub use groupby::IncrementalGroupBy;
pub use join::{BlockingHashJoin, JoinMatch, SymmetricHashJoin};
pub use scan::PointScan;
pub use summary::{InteractiveSummary, SummaryValue};
