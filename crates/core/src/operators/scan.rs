//! Point scans: delivering the touched value itself.
//!
//! The plain-scan action "delivers the actual data as is" (Section 2.3): each
//! touch reveals the value (or the full tuple, for table objects) stored at the
//! tuple identifier the touch mapped to.

use dbtouch_storage::matrix::Matrix;
use dbtouch_types::{Result, RowId, Value};

/// Reads individual values or tuples addressed by touches.
#[derive(Debug, Clone, Copy, Default)]
pub struct PointScan;

impl PointScan {
    /// Read a single attribute value at `(row, attribute)`.
    pub fn value(matrix: &Matrix, row: RowId, attribute: usize) -> Result<Value> {
        matrix.get(row, attribute)
    }

    /// Read the whole tuple at `row` (what a tap over a table object reveals).
    pub fn tuple(matrix: &Matrix, row: RowId) -> Result<Vec<Value>> {
        matrix.get_row(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtouch_storage::column::Column;
    use dbtouch_storage::table::Table;

    fn matrix() -> Matrix {
        Matrix::from_table(
            Table::from_columns(
                "t",
                vec![
                    Column::from_i64("id", vec![10, 20, 30]),
                    Column::from_strings("tag", 4, &["a", "b", "c"]).unwrap(),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn point_value() {
        let m = matrix();
        assert_eq!(PointScan::value(&m, RowId(1), 0).unwrap(), Value::Int(20));
        assert_eq!(
            PointScan::value(&m, RowId(2), 1).unwrap(),
            Value::Str("c".into())
        );
        assert!(PointScan::value(&m, RowId(9), 0).is_err());
    }

    #[test]
    fn full_tuple() {
        let m = matrix();
        assert_eq!(
            PointScan::tuple(&m, RowId(0)).unwrap(),
            vec![Value::Int(10), Value::Str("a".into())]
        );
        assert!(PointScan::tuple(&m, RowId(3)).is_err());
    }
}
