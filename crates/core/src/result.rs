//! Result delivery: in-place, fading result values.
//!
//! Section 2.3 ("Inspecting Results"): results appear in place as the gesture
//! progresses — "every single result value pops up from the position in the
//! data object where the raw value responsible for this result lies" — and
//! "soon after a result value becomes visible, it subsequently fades away,
//! making room for more results".
//!
//! The [`ResultStream`] keeps every produced [`TouchResult`] together with the
//! information a front-end needs to render that behaviour: where on the object
//! the value belongs (as a fraction of the object extent) and how visible it is
//! at a given time according to the fade policy.

use dbtouch_types::{RowId, Timestamp, Value};
use serde::{Deserialize, Serialize};

/// What kind of computation produced a result value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResultKind {
    /// A plain scan: the touched raw value itself.
    Scan,
    /// A running aggregate over everything touched so far.
    RunningAggregate,
    /// An interactive summary of a `[id-k, id+k]` window.
    Summary,
    /// A value that passed a where-restriction.
    FilteredScan,
    /// A join match (the value is the join key).
    JoinMatch,
    /// A group-by partial result (the value is the group's aggregate).
    GroupResult,
    /// A full tuple revealed by a tap on a table.
    Tuple,
}

/// One result value produced in response to one touch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TouchResult {
    /// The tuple identifier responsible for the result.
    pub row: RowId,
    /// Where the result appears on the object, as a fraction of its scroll
    /// extent in `[0, 1]` (used to render "in place").
    pub position_fraction: f64,
    /// The produced value(s). Scans and aggregates produce one value; tuple
    /// taps produce one value per attribute.
    pub values: Vec<Value>,
    /// When the result was produced (session-relative).
    pub produced_at: Timestamp,
    /// What produced it.
    pub kind: ResultKind,
}

impl TouchResult {
    /// Convenience constructor for a single-value result.
    pub fn single(
        row: RowId,
        position_fraction: f64,
        value: Value,
        produced_at: Timestamp,
        kind: ResultKind,
    ) -> TouchResult {
        TouchResult {
            row,
            position_fraction,
            values: vec![value],
            produced_at,
            kind,
        }
    }

    /// The first (usually only) value.
    pub fn value(&self) -> Option<&Value> {
        self.values.first()
    }
}

/// The fade policy: how long results stay visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FadePolicy {
    /// Milliseconds a result stays fully visible.
    pub visible_ms: u64,
    /// Milliseconds over which it then fades to invisible.
    pub fade_ms: u64,
}

impl Default for FadePolicy {
    fn default() -> Self {
        FadePolicy {
            visible_ms: 400,
            fade_ms: 800,
        }
    }
}

impl FadePolicy {
    /// Opacity of a result produced at `produced_at` when observed at `now`:
    /// 1.0 while fully visible, linearly decreasing to 0.0 over the fade
    /// window, 0.0 afterwards.
    pub fn opacity(&self, produced_at: Timestamp, now: Timestamp) -> f64 {
        let age_ms = now.since(produced_at).as_millis() as u64;
        if age_ms <= self.visible_ms {
            1.0
        } else if self.fade_ms == 0 {
            0.0
        } else {
            let fade_age = age_ms - self.visible_ms;
            (1.0 - fade_age as f64 / self.fade_ms as f64).max(0.0)
        }
    }
}

/// The ordered stream of results produced during a session.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResultStream {
    results: Vec<TouchResult>,
    fade: FadePolicy,
}

impl ResultStream {
    /// Create an empty stream with the given fade policy.
    pub fn new(fade: FadePolicy) -> ResultStream {
        ResultStream {
            results: Vec::new(),
            fade,
        }
    }

    /// Append a result.
    pub fn push(&mut self, result: TouchResult) {
        self.results.push(result);
    }

    /// Number of results produced.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// True if nothing has been produced.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// All results in production order.
    pub fn results(&self) -> &[TouchResult] {
        &self.results
    }

    /// The fade policy results are rendered under.
    pub fn fade(&self) -> FadePolicy {
        self.fade
    }

    /// Replace the value of the result at `index` in place — the progressive
    /// refinement of remote processing: a provisional coarse answer already
    /// on screen is upgraded to the fine answer without disturbing the
    /// stream's order. Returns `false` when `index` is out of bounds.
    pub fn set_value(&mut self, index: usize, value: Value) -> bool {
        match self.results.get_mut(index) {
            Some(result) => {
                result.values = vec![value];
                true
            }
            None => false,
        }
    }

    /// The most recent result (the boldest one on screen).
    pub fn latest(&self) -> Option<&TouchResult> {
        self.results.last()
    }

    /// The results still visible at `now` (opacity > 0), most recent last.
    pub fn visible_at(&self, now: Timestamp) -> Vec<(&TouchResult, f64)> {
        self.results
            .iter()
            .filter_map(|r| {
                let o = self.fade.opacity(r.produced_at, now);
                (o > 0.0).then_some((r, o))
            })
            .collect()
    }

    /// Count of results of a given kind.
    pub fn count_of(&self, kind: ResultKind) -> usize {
        self.results.iter().filter(|r| r.kind == kind).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_at(ms: u64, row: u64) -> TouchResult {
        TouchResult::single(
            RowId(row),
            row as f64 / 100.0,
            Value::Int(row as i64),
            Timestamp::from_millis(ms),
            ResultKind::Scan,
        )
    }

    #[test]
    fn stream_collects_results_in_order() {
        let mut s = ResultStream::default();
        assert!(s.is_empty());
        s.push(result_at(0, 1));
        s.push(result_at(10, 2));
        assert_eq!(s.len(), 2);
        assert_eq!(s.latest().unwrap().row, RowId(2));
        assert_eq!(s.results()[0].row, RowId(1));
        assert_eq!(s.count_of(ResultKind::Scan), 2);
        assert_eq!(s.count_of(ResultKind::Summary), 0);
    }

    #[test]
    fn single_value_accessor() {
        let r = result_at(0, 7);
        assert_eq!(r.value(), Some(&Value::Int(7)));
        assert_eq!(r.position_fraction, 0.07);
    }

    #[test]
    fn opacity_fully_visible_then_fades() {
        let fade = FadePolicy {
            visible_ms: 100,
            fade_ms: 100,
        };
        let produced = Timestamp::from_millis(1000);
        assert_eq!(fade.opacity(produced, Timestamp::from_millis(1000)), 1.0);
        assert_eq!(fade.opacity(produced, Timestamp::from_millis(1100)), 1.0);
        let half = fade.opacity(produced, Timestamp::from_millis(1150));
        assert!((half - 0.5).abs() < 1e-9);
        assert_eq!(fade.opacity(produced, Timestamp::from_millis(1300)), 0.0);
    }

    #[test]
    fn zero_fade_duration_disappears_instantly() {
        let fade = FadePolicy {
            visible_ms: 50,
            fade_ms: 0,
        };
        let produced = Timestamp::ZERO;
        assert_eq!(fade.opacity(produced, Timestamp::from_millis(50)), 1.0);
        assert_eq!(fade.opacity(produced, Timestamp::from_millis(51)), 0.0);
    }

    #[test]
    fn visible_at_filters_faded_results() {
        let mut s = ResultStream::new(FadePolicy {
            visible_ms: 100,
            fade_ms: 100,
        });
        s.push(result_at(0, 1)); // fully faded by t=500
        s.push(result_at(450, 2)); // still visible at t=500
        let visible = s.visible_at(Timestamp::from_millis(500));
        assert_eq!(visible.len(), 1);
        assert_eq!(visible[0].0.row, RowId(2));
        assert_eq!(visible[0].1, 1.0);
        // at t=120 the first result is mid-fade and the second not yet produced
        let visible = s.visible_at(Timestamp::from_millis(120));
        assert_eq!(visible.len(), 2); // produced_at in the future -> age 0 -> visible
    }

    #[test]
    fn most_recent_result_is_boldest() {
        // "the most recently touched data entry is responsible for the most
        // bold result value visible"
        let mut s = ResultStream::new(FadePolicy {
            visible_ms: 0,
            fade_ms: 1000,
        });
        s.push(result_at(0, 1));
        s.push(result_at(400, 2));
        let now = Timestamp::from_millis(500);
        let visible = s.visible_at(now);
        let older = visible.iter().find(|(r, _)| r.row == RowId(1)).unwrap().1;
        let newer = visible.iter().find(|(r, _)| r.row == RowId(2)).unwrap().1;
        assert!(newer > older);
    }
}
