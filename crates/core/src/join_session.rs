//! Gesture-driven join sessions (Section 2.9, "Complex Queries" / "Joins").
//!
//! "We can enable a join for a pair of columns. Then, with the slide gesture
//! over one of the columns [...] a user can go through the data and drive the
//! query processing steps. The tuple identifiers captured in the object where
//! we apply the slide gesture define the data processed."
//!
//! A [`JoinSession`] binds two column objects on their key attributes. The user
//! slides over the *driving* (left) object; every touch maps to a left tuple,
//! which is pushed into a non-blocking symmetric hash join. Because the paper's
//! kernel must produce results without consuming the full right input up front,
//! the session also streams the right side incrementally: for every touched
//! left tuple it feeds the right-object rows at the same relative position
//! (same fraction of the object), modelling a user sweeping both objects
//! together — the closest gesture-level analogue of pipelined join execution.
//! Matches appear immediately as they are found.

use crate::kernel::{Kernel, ObjectId};
use crate::mapping::TouchMapper;
use crate::operators::join::{JoinMatch, JoinSide, SymmetricHashJoin};
use dbtouch_gesture::recognizer::{GestureEvent, GestureRecognizer};
use dbtouch_gesture::trace::GestureTrace;
use dbtouch_types::{DbTouchError, Result, RowId};
use serde::{Deserialize, Serialize};

/// Statistics of a join session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinSessionStats {
    /// Touches on the driving object that addressed a new tuple.
    pub driving_touches: u64,
    /// Rows fed from the left (driving) object.
    pub left_rows: u64,
    /// Rows fed from the right object.
    pub right_rows: u64,
    /// Matches produced.
    pub matches: u64,
    /// Rows consumed before the first match appeared (0 when no match).
    pub rows_to_first_match: u64,
}

/// The outcome of a gesture-driven join.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct JoinOutcome {
    /// All matches in production order.
    pub matches: Vec<JoinMatch>,
    /// Session statistics.
    pub stats: JoinSessionStats,
}

/// Configuration of a gesture-driven join between two column objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinSpec {
    /// The object the user slides over.
    pub driving: ObjectId,
    /// The other join input.
    pub other: ObjectId,
    /// Key attribute index of the driving object.
    pub driving_key: usize,
    /// Key attribute index of the other object.
    pub other_key: usize,
}

/// Runs gesture traces as join sessions on top of a [`Kernel`].
#[derive(Debug)]
pub struct JoinSession<'a> {
    kernel: &'a Kernel,
    spec: JoinSpec,
    join: SymmetricHashJoin,
    /// Rows of the other object already fed (monotone cursor).
    other_cursor: u64,
    stats: JoinSessionStats,
    last_left_row: Option<RowId>,
}

impl<'a> JoinSession<'a> {
    /// Create a join session; both objects must exist and the key attributes
    /// must be valid.
    pub fn new(kernel: &'a Kernel, spec: JoinSpec) -> Result<JoinSession<'a>> {
        for (id, attr) in [
            (spec.driving, spec.driving_key),
            (spec.other, spec.other_key),
        ] {
            let schema_len = kernel.schema(id)?.len();
            if attr >= schema_len {
                return Err(DbTouchError::NotFound(format!(
                    "join key attribute {attr} (object has {schema_len} attributes)"
                )));
            }
        }
        Ok(JoinSession {
            kernel,
            spec,
            join: SymmetricHashJoin::new(),
            other_cursor: 0,
            stats: JoinSessionStats::default(),
            last_left_row: None,
        })
    }

    /// Run a gesture trace over the driving object and return the join outcome.
    pub fn run(mut self, trace: &GestureTrace) -> Result<JoinOutcome> {
        trace.validate()?;
        let mut recognizer = GestureRecognizer::default();
        let mut matches = Vec::new();
        let driving_view = self.kernel.view(self.spec.driving)?;
        let other_rows = self.kernel.row_count(self.spec.other)?;
        let driving_rows = self.kernel.row_count(self.spec.driving)?;

        for event in &trace.events {
            for gesture in recognizer.feed(event) {
                let location = match gesture {
                    GestureEvent::Tap { location, .. }
                    | GestureEvent::SlideBegan { location, .. }
                    | GestureEvent::SlideStep { location, .. } => location,
                    _ => continue,
                };
                let Some(left_row) = TouchMapper::row_for_touch(&driving_view, location)? else {
                    continue;
                };
                if self.last_left_row == Some(left_row) {
                    continue;
                }
                self.last_left_row = Some(left_row);
                self.stats.driving_touches += 1;

                // Feed the touched left tuple.
                let left_key =
                    self.kernel
                        .cell(self.spec.driving, left_row, self.spec.driving_key)?;
                self.stats.left_rows += 1;
                let new_matches = self.join.push(JoinSide::Left, left_row, left_key);
                self.absorb(new_matches, &mut matches);

                // Stream the right side up to the same relative position, so the
                // join state on both sides advances with the gesture.
                if driving_rows > 0 && other_rows > 0 {
                    let target = ((left_row.0 + 1) as f64 / driving_rows as f64 * other_rows as f64)
                        .ceil() as u64;
                    let target = target.min(other_rows);
                    while self.other_cursor < target {
                        let right_row = RowId(self.other_cursor);
                        let right_key =
                            self.kernel
                                .cell(self.spec.other, right_row, self.spec.other_key)?;
                        self.stats.right_rows += 1;
                        let new_matches = self.join.push(JoinSide::Right, right_row, right_key);
                        self.absorb(new_matches, &mut matches);
                        self.other_cursor += 1;
                    }
                }
            }
        }
        self.stats.matches = matches.len() as u64;
        Ok(JoinOutcome {
            matches,
            stats: self.stats,
        })
    }

    fn absorb(&mut self, new_matches: Vec<JoinMatch>, out: &mut Vec<JoinMatch>) {
        if !new_matches.is_empty() && self.stats.rows_to_first_match == 0 {
            self.stats.rows_to_first_match = self.stats.left_rows + self.stats.right_rows;
        }
        out.extend(new_matches);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Kernel;
    use dbtouch_gesture::synthesizer::GestureSynthesizer;
    use dbtouch_types::{KernelConfig, SizeCm};

    fn kernel_with_join_inputs() -> (Kernel, ObjectId, ObjectId) {
        let mut kernel = Kernel::new(KernelConfig::default());
        // left: keys 0..100 repeated; right: keys 0..50 repeated -> plenty of matches
        let left = kernel
            .load_column(
                "orders",
                (0..20_000).map(|i| i % 100).collect(),
                SizeCm::new(2.0, 10.0),
            )
            .unwrap();
        let right = kernel
            .load_column(
                "customers",
                (0..10_000).map(|i| i % 50).collect(),
                SizeCm::new(2.0, 10.0),
            )
            .unwrap();
        (kernel, left, right)
    }

    #[test]
    fn gesture_driven_join_produces_matches_incrementally() {
        let (kernel, left, right) = kernel_with_join_inputs();
        let spec = JoinSpec {
            driving: left,
            other: right,
            driving_key: 0,
            other_key: 0,
        };
        let view = kernel.view(left).unwrap();
        let trace = GestureSynthesizer::new(60.0).slide_down(&view, 1.0);
        let outcome = JoinSession::new(&kernel, spec)
            .unwrap()
            .run(&trace)
            .unwrap();
        assert!(outcome.stats.matches > 0);
        assert_eq!(outcome.matches.len() as u64, outcome.stats.matches);
        // non-blocking: the first match appears long before both inputs are consumed
        assert!(outcome.stats.rows_to_first_match > 0);
        assert!(
            outcome.stats.rows_to_first_match
                < (outcome.stats.left_rows + outcome.stats.right_rows) / 2
        );
        // only a fraction of the right side was streamed per touch granularity
        assert!(outcome.stats.right_rows <= 10_000);
        // every produced match really joins equal keys
        for m in outcome.matches.iter().take(50) {
            let l = kernel.cell(left, m.left_row, 0).unwrap();
            let r = kernel.cell(right, m.right_row, 0).unwrap();
            assert_eq!(l.as_i64().unwrap(), r.as_i64().unwrap());
        }
    }

    #[test]
    fn partial_slide_joins_only_touched_prefix() {
        let (kernel, left, right) = kernel_with_join_inputs();
        let spec = JoinSpec {
            driving: left,
            other: right,
            driving_key: 0,
            other_key: 0,
        };
        let view = kernel.view(left).unwrap();
        let mut synthesizer = GestureSynthesizer::new(60.0);
        // slide only over the first 30% of the driving object
        let trace = synthesizer.slide(&view, 0.0, 0.3, 1.0);
        let outcome = JoinSession::new(&kernel, spec)
            .unwrap()
            .run(&trace)
            .unwrap();
        // the right side was only streamed up to ~30% as well
        assert!(outcome.stats.right_rows < 4_000);
        assert!(outcome.matches.iter().all(|m| m.left_row.0 <= 6_100));
    }

    #[test]
    fn invalid_key_attribute_rejected() {
        let (kernel, left, right) = kernel_with_join_inputs();
        let bad = JoinSpec {
            driving: left,
            other: right,
            driving_key: 3,
            other_key: 0,
        };
        assert!(JoinSession::new(&kernel, bad).is_err());
    }
}
