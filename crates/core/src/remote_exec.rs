//! Asynchronous remote processing: overlapped device/cloud execution with
//! progressive answers (Section 4, "Remote Processing").
//!
//! "dbTouch needs to carefully exploit both local and remote data, i.e., use
//! local data to feed partial answers, while in the mean time more
//! fine-grained answers are produced and delivered by the server."
//!
//! [`crate::remote`] models the device/cloud *cost* of that split
//! synchronously; this module makes the split part of execution. When a
//! catalog runs with [`dbtouch_types::RemoteSplitConfig`] in overlapped mode,
//! a session's summary touch at a sample level finer than the device holds
//! answers immediately from the coarsest local level (a *provisional* result)
//! and ships the fine-level request to the [`RemoteExecutor`]:
//!
//! * a bounded I/O thread pool computes the fine window statistics off the
//!   shared immutable [`ObjectData`] (the "server's copy"),
//! * a delay line injects the modelled network latency without occupying a
//!   compute thread (the completion is held until its due time),
//! * the finished [`RemoteCompletion`] lands in the session's
//!   [`CompletionQueue`], where the session's owner (the kernel after a
//!   trace, a server worker at event boundaries) applies it to the issuing
//!   trace's [`SessionOutcome`] — patching the provisional value in place,
//!   charging the deferred rows and re-folding the running aggregate.
//!
//! **Result transparency.** A drained outcome is bit-identical to what the
//! all-local configuration produces: the refinement computes the exact
//! window the budget admitted, on the exact immutable build the trace ran
//! against, and the [`RefinementLedger`] replays aggregate contributions in
//! touch order (floating-point accumulation order matters). **Epoch
//! safety.** Every refinement is stamped with the immutable build identity it
//! was computed against; a completion whose identity does not match its
//! pending entry — the object was restructured out from under an executor
//! that somehow served a different build — is dropped, never applied.

use crate::catalog::ObjectData;
use crate::operators::aggregate::{AggregateKind, RunningAggregate};
use crate::remote::NetworkModel;
use crate::session::SessionOutcome;
use dbtouch_types::{DbTouchError, Result, RowRange, Value};
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The `(count, sum, min, max)` tuple the storage layer produces for a
/// window — what a refinement computes remotely. The same shape the shared
/// result cache stores, reused rather than redefined.
pub use dbtouch_storage::shared_cache::RangeAggregate as RangeStats;

/// The summary value a `(kind, window stats)` pair produces — shared by the
/// session's inline path and the refinement apply path so the two can never
/// diverge.
pub fn summary_value(kind: AggregateKind, stats: &RangeStats) -> Option<f64> {
    match kind {
        AggregateKind::Count => Some(stats.count as f64),
        AggregateKind::Sum => (stats.count > 0).then_some(stats.sum),
        AggregateKind::Avg => (stats.count > 0).then(|| stats.sum / stats.count as f64),
        AggregateKind::Min => stats.min,
        AggregateKind::Max => stats.max,
    }
}

/// One aggregate contribution of a summary session, in touch order.
///
/// All-local sessions feed their running aggregate inline, touch by touch.
/// A remote session defers instead: every contribution — computed locally or
/// pending remotely — is appended here, and the final aggregate is produced
/// by folding the ledger *in order* once every pending slot resolved. This
/// keeps the floating-point accumulation order identical to the all-local
/// run no matter when refinements complete.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Contribution {
    /// A contribution whose statistics are known (local level, or a landed
    /// refinement).
    Ready {
        /// Rows aggregated.
        count: u64,
        /// Sum of the values.
        sum: f64,
        /// Minimum, `None` for empty.
        min: Option<f64>,
        /// Maximum, `None` for empty.
        max: Option<f64>,
    },
    /// A contribution whose refinement is still in flight.
    Pending {
        /// The executor ticket that will resolve it.
        ticket: u64,
    },
    /// A refinement that was dropped (stale build): excluded from the fold.
    Dropped {
        /// The ticket that was dropped.
        ticket: u64,
    },
}

/// The ordered aggregate-contribution log of one summary session.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RefinementLedger {
    /// The aggregate kind the session maintains, `None` when the ledger is
    /// inactive (all-local session, or an action without an aggregate).
    pub kind: Option<AggregateKind>,
    /// Contributions in touch order.
    pub contribs: Vec<Contribution>,
}

impl RefinementLedger {
    /// Whether the ledger is collecting contributions.
    pub fn is_active(&self) -> bool {
        self.kind.is_some()
    }

    /// Fold the resolved contributions, in order, into the final aggregate
    /// value (exactly the sequence of batch updates an all-local session
    /// performs inline).
    pub fn fold_value(&self) -> Option<f64> {
        let kind = self.kind?;
        let mut aggregate = RunningAggregate::new(kind);
        for contribution in &self.contribs {
            if let Contribution::Ready {
                count,
                sum,
                min,
                max,
            } = contribution
            {
                aggregate.update_batch(*count, *sum, *min, *max);
            }
        }
        aggregate.value()
    }

    /// Unresolved contributions still awaiting a refinement.
    pub fn pending_count(&self) -> usize {
        self.contribs
            .iter()
            .filter(|c| matches!(c, Contribution::Pending { .. }))
            .count()
    }
}

/// One refinement a session is still waiting for: which provisional result
/// it patches, which ledger slot it resolves, and the immutable build it must
/// match.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PendingRefinement {
    /// The executor ticket of the in-flight request.
    pub ticket: u64,
    /// Identity of the immutable [`ObjectData`] build the request was issued
    /// against; a completion for any other build is dropped.
    pub object_identity: u64,
    /// Index of the provisional result in the outcome's result stream.
    pub result_index: u64,
    /// Index of the `Pending` slot in the outcome's ledger.
    pub contrib_index: u64,
    /// The summary aggregate kind (derives the patched value).
    pub kind: AggregateKind,
    /// The fine sample level the refinement reads.
    pub level: u8,
}

/// A finished remote fetch, delivered to the issuing session's queue once
/// its simulated network latency elapsed.
#[derive(Debug)]
pub struct RemoteCompletion {
    /// The ticket handed out at submission.
    pub ticket: u64,
    /// Identity of the immutable build the statistics were computed on.
    pub object_identity: u64,
    /// The computed window statistics (an error if the remote read failed).
    pub stats: Result<RangeStats>,
    /// The simulated network cost charged to this fetch, in microseconds.
    pub simulated_micros: u64,
    /// When the request was submitted (measures real refinement latency).
    pub submitted: Instant,
}

/// The per-session landing strip for remote completions.
///
/// The executor pushes, the session's owner drains — non-blocking between
/// events ([`drain_ready`](CompletionQueue::drain_ready)), blocking at
/// barriers ([`wait_ready`](CompletionQueue::wait_ready)).
#[derive(Debug, Default)]
pub struct CompletionQueue {
    inner: Mutex<Vec<RemoteCompletion>>,
    ready: Condvar,
}

impl CompletionQueue {
    /// An empty queue.
    pub fn new() -> CompletionQueue {
        CompletionQueue::default()
    }

    /// Deliver a completion (called by the executor's timer thread).
    pub fn push(&self, completion: RemoteCompletion) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.push(completion);
        self.ready.notify_all();
    }

    /// Take every completion currently ready, without blocking.
    pub fn drain_ready(&self) -> Vec<RemoteCompletion> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *inner)
    }

    /// Take every ready completion, waiting up to `timeout` when none is.
    pub fn wait_ready(&self, timeout: Duration) -> Vec<RemoteCompletion> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.is_empty() {
            let (guard, _timed_out) = self
                .ready
                .wait_timeout(inner, timeout)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
        std::mem::take(&mut *inner)
    }
}

/// One submitted fetch travelling to the I/O pool.
struct IoJob {
    ticket: u64,
    data: Arc<ObjectData>,
    attribute: usize,
    level: u8,
    range: RowRange,
    sink: Arc<CompletionQueue>,
    submitted: Instant,
}

/// A completion waiting in the delay line for its due time.
struct DelayedCompletion {
    due: Instant,
    seq: u64,
    sink: Arc<CompletionQueue>,
    completion: RemoteCompletion,
}

impl PartialEq for DelayedCompletion {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for DelayedCompletion {}
impl PartialOrd for DelayedCompletion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DelayedCompletion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest due first.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Default)]
struct DelayState {
    heap: BinaryHeap<DelayedCompletion>,
    shutdown: bool,
}

/// The latency-injection stage: completions parked until due, delivered by
/// one timer thread so simulated waiting never occupies an I/O thread.
#[derive(Default)]
struct DelayLine {
    state: Mutex<DelayState>,
    tick: Condvar,
}

impl DelayLine {
    fn push(&self, entry: DelayedCompletion) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.heap.push(entry);
        self.tick.notify_all();
    }

    fn shutdown(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.shutdown = true;
        self.tick.notify_all();
    }

    /// The timer loop: deliver each completion at (or after) its due time;
    /// on shutdown, flush everything immediately so no drain ever hangs.
    fn run(&self, delivered: &AtomicU64) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            let now = Instant::now();
            let due_now = state
                .heap
                .peek()
                .map(|e| state.shutdown || e.due <= now)
                .unwrap_or(false);
            if due_now {
                let entry = state.heap.pop().expect("peeked entry");
                drop(state);
                // Counted before the push: a receiver that already holds the
                // completion must never observe a smaller delivered count.
                delivered.fetch_add(1, Ordering::Relaxed);
                entry.sink.push(entry.completion);
                state = self.state.lock().unwrap_or_else(|e| e.into_inner());
                continue;
            }
            match state.heap.peek() {
                Some(entry) => {
                    let wait = entry.due.saturating_duration_since(now);
                    let (guard, _) = self
                        .tick
                        .wait_timeout(state, wait)
                        .unwrap_or_else(|e| e.into_inner());
                    state = guard;
                }
                None => {
                    if state.shutdown {
                        return;
                    }
                    state = self.tick.wait(state).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }
}

/// Counters of the executor's lifetime activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemoteExecStats {
    /// Fetches submitted.
    pub submitted: u64,
    /// Completions delivered to their session queues.
    pub delivered: u64,
}

/// The bounded I/O thread-pool / completion-queue executor serving remote
/// fetches for every session of one catalog.
///
/// Submission blocks once `queue_depth` fetches are in flight through the
/// pool (backpressure); computed completions move to the delay line until
/// their simulated network latency elapsed, then land in the submitting
/// session's [`CompletionQueue`]. Dropping the executor drains the pool,
/// flushes the delay line and joins every thread — a submitted fetch is
/// always eventually delivered, so drains never hang.
#[derive(Debug)]
pub struct RemoteExecutor {
    submit: Option<SyncSender<IoJob>>,
    network: NetworkModel,
    delay: Arc<DelayLine>,
    io_threads: Vec<JoinHandle<()>>,
    timer: Option<JoinHandle<()>>,
    next_ticket: AtomicU64,
    submitted: AtomicU64,
    delivered: Arc<AtomicU64>,
}

impl std::fmt::Debug for DelayLine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("DelayLine")
    }
}

impl RemoteExecutor {
    /// Spawn the pool: `io_threads` compute threads behind a submission
    /// queue bounded at `queue_depth`, plus the delay-line timer.
    /// `segment_rows` is the window-decomposition unit the "server" computes
    /// with — the same [`crate::morsel::window_stats`] kernel the local scan
    /// path uses, so a refinement is bit-identical to the local answer.
    pub fn start(
        io_threads: usize,
        queue_depth: usize,
        network: NetworkModel,
        segment_rows: u64,
    ) -> RemoteExecutor {
        let (submit, receiver) = sync_channel::<IoJob>(queue_depth.max(1));
        let receiver = Arc::new(Mutex::new(receiver));
        let delay = Arc::new(DelayLine::default());
        let threads = (0..io_threads.max(1))
            .map(|index| {
                let receiver = Arc::clone(&receiver);
                let delay = Arc::clone(&delay);
                std::thread::Builder::new()
                    .name(format!("dbtouch-remote-io-{index}"))
                    .spawn(move || io_loop(&receiver, &delay, network, segment_rows))
                    .expect("spawn remote I/O thread")
            })
            .collect();
        let delivered = Arc::new(AtomicU64::new(0));
        let timer = {
            let delay = Arc::clone(&delay);
            let delivered = Arc::clone(&delivered);
            std::thread::Builder::new()
                .name("dbtouch-remote-timer".into())
                .spawn(move || delay.run(&delivered))
                .expect("spawn remote timer thread")
        };
        RemoteExecutor {
            submit: Some(submit),
            network,
            delay,
            io_threads: threads,
            timer: Some(timer),
            next_ticket: AtomicU64::new(1),
            submitted: AtomicU64::new(0),
            delivered,
        }
    }

    /// The network model latency is injected from.
    pub fn network(&self) -> NetworkModel {
        self.network
    }

    /// Submit a fine-level window fetch. Blocks while the submission queue is
    /// at capacity (backpressure), returns the ticket the completion will
    /// carry. `range` is in `level` coordinates of `attribute`'s hierarchy.
    pub fn submit(
        &self,
        data: Arc<ObjectData>,
        attribute: usize,
        level: u8,
        range: RowRange,
        sink: &Arc<CompletionQueue>,
    ) -> Result<u64> {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        let job = IoJob {
            ticket,
            data,
            attribute,
            level,
            range,
            sink: Arc::clone(sink),
            submitted: Instant::now(),
        };
        self.submit
            .as_ref()
            .expect("executor running")
            .send(job)
            .map_err(|_| DbTouchError::Internal("remote executor has shut down".into()))?;
        self.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(ticket)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> RemoteExecStats {
        RemoteExecStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
        }
    }
}

impl dbtouch_obs::MetricSource for RemoteExecutor {
    fn source_name(&self) -> &'static str {
        "remote_exec"
    }

    fn collect(&self) -> Vec<(&'static str, dbtouch_obs::MetricValue)> {
        use dbtouch_obs::MetricValue;
        let stats = self.stats();
        vec![
            ("submitted", MetricValue::Counter(stats.submitted)),
            ("delivered", MetricValue::Counter(stats.delivered)),
            // In-flight fetches: submitted but not yet landed in a queue.
            // The two counters are read independently, so clamp at zero.
            (
                "backlog",
                MetricValue::Gauge(stats.submitted.saturating_sub(stats.delivered)),
            ),
        ]
    }
}

impl Drop for RemoteExecutor {
    fn drop(&mut self) {
        // Close the submission channel: I/O threads drain what is queued and
        // exit, having pushed every completion into the delay line.
        self.submit.take();
        for thread in self.io_threads.drain(..) {
            let _ = thread.join();
        }
        // Then flush the delay line (completions deliver immediately,
        // regardless of remaining simulated latency) and stop the timer.
        self.delay.shutdown();
        if let Some(timer) = self.timer.take() {
            let _ = timer.join();
        }
    }
}

fn io_loop(
    receiver: &Mutex<Receiver<IoJob>>,
    delay: &DelayLine,
    network: NetworkModel,
    segment_rows: u64,
) {
    let mut seq = 0u64;
    loop {
        let job = {
            let guard = receiver.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        let Ok(job) = job else { return };
        let stats = compute_window(&job, segment_rows);
        let rows = stats.as_ref().map(|s| s.count).unwrap_or(0);
        let simulated_micros = network.cost_micros(rows);
        // Cap the injected wait so adversarial network models flush instead
        // of parking a completion for centuries.
        let wait = Duration::from_micros(simulated_micros.min(60 * 60 * 1_000_000));
        seq += 1;
        delay.push(DelayedCompletion {
            due: job.submitted + wait,
            seq,
            sink: job.sink,
            completion: RemoteCompletion {
                ticket: job.ticket,
                object_identity: job.data.identity(),
                stats,
                simulated_micros,
                submitted: job.submitted,
            },
        });
    }
}

/// The "server side" of a fetch: the fine-level window statistics, computed
/// through the same [`crate::morsel::window_stats`] kernel as a local scan
/// (exact integer sums, sequential float folds) so a landed refinement is
/// bit-identical to the answer the all-local configuration produces.
fn compute_window(job: &IoJob, segment_rows: u64) -> Result<RangeStats> {
    let scan = crate::morsel::window_stats(
        &job.data,
        job.attribute,
        job.level,
        job.range,
        segment_rows,
        None,
        None,
    )?;
    Ok(RangeStats {
        count: scan.count,
        sum: scan.sum,
        min: scan.min,
        max: scan.max,
    })
}

/// What applying one completion to an outcome did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefinementApplied {
    /// The refinement landed: provisional value patched, rows charged.
    Applied {
        /// Rows the refinement read (now charged to the outcome).
        rows: u64,
    },
    /// The completion's build identity did not match the pending entry: the
    /// object was rebuilt, the refinement is dropped, the provisional value
    /// stays.
    DroppedStaleBuild,
    /// No pending entry with this ticket exists in the outcome.
    UnknownTicket,
}

/// Apply one completion to the outcome whose trace issued it: patch the
/// provisional result with the refined value, charge the deferred rows,
/// resolve the ledger slot, and — once nothing is pending — re-fold the
/// running aggregate in touch order.
pub fn apply_completion(
    outcome: &mut SessionOutcome,
    completion: RemoteCompletion,
) -> Result<RefinementApplied> {
    let Some(position) = outcome
        .pending
        .iter()
        .position(|p| p.ticket == completion.ticket)
    else {
        return Ok(RefinementApplied::UnknownTicket);
    };
    let entry = outcome.pending.remove(position);
    // Any outcome that cannot be applied — a stale build, a failed remote
    // read, a value that cannot be derived — resolves the ledger slot as
    // Dropped: the slot must never be left Pending once its entry is gone,
    // or the fold would silently skip it while the report claims a full
    // drain.
    let drop_slot = |outcome: &mut SessionOutcome| {
        if let Some(slot) = outcome
            .ledger
            .contribs
            .get_mut(entry.contrib_index as usize)
        {
            *slot = Contribution::Dropped {
                ticket: entry.ticket,
            };
        }
        outcome.stats.remote_refinements_dropped += 1;
    };
    let applied = if entry.object_identity != completion.object_identity {
        // Epoch safety: never apply a refinement computed on a different
        // immutable build than the one the trace ran against.
        drop_slot(outcome);
        RefinementApplied::DroppedStaleBuild
    } else {
        let stats = match completion.stats {
            Ok(stats) => stats,
            Err(e) => {
                drop_slot(outcome);
                refold_if_drained(outcome);
                return Err(e);
            }
        };
        let Some(value) = summary_value(entry.kind, &stats) else {
            drop_slot(outcome);
            refold_if_drained(outcome);
            return Err(DbTouchError::Internal(
                "refined window produced no value".into(),
            ));
        };
        if !outcome
            .results
            .set_value(entry.result_index as usize, Value::Float(value))
        {
            drop_slot(outcome);
            refold_if_drained(outcome);
            return Err(DbTouchError::Internal(format!(
                "refinement result index {} out of bounds",
                entry.result_index
            )));
        }
        if let Some(slot) = outcome
            .ledger
            .contribs
            .get_mut(entry.contrib_index as usize)
        {
            *slot = Contribution::Ready {
                count: stats.count,
                sum: stats.sum,
                min: stats.min,
                max: stats.max,
            };
        }
        // Exactly the accounting the all-local inline path performs.
        outcome.stats.rows_touched += stats.count;
        outcome.stats.bytes_touched += stats.count * 8;
        outcome.stats.remote.rows_shipped = outcome
            .stats
            .remote
            .rows_shipped
            .saturating_add(stats.count);
        outcome.stats.remote.remote_wait_micros = outcome
            .stats
            .remote
            .remote_wait_micros
            .saturating_add(completion.simulated_micros);
        outcome.stats.remote_refinements_applied += 1;
        RefinementApplied::Applied { rows: stats.count }
    };
    refold_if_drained(outcome);
    Ok(applied)
}

/// Once nothing is pending, re-fold the ledger into the final aggregate.
fn refold_if_drained(outcome: &mut SessionOutcome) {
    if outcome.pending.is_empty() && outcome.ledger.is_active() {
        outcome.final_aggregate = outcome.ledger.fold_value();
    }
}

/// Block until every pending refinement of `outcome` landed, applying
/// completions from `queue` as they arrive. Returns how many were applied.
/// Used by the single-user kernel (a trace boundary is a drain barrier);
/// the server drains incrementally instead and only blocks at
/// snapshot/close barriers.
pub fn drain_outcome(outcome: &mut SessionOutcome, queue: &CompletionQueue) -> Result<u64> {
    let mut applied = 0;
    while !outcome.pending.is_empty() {
        for completion in queue.wait_ready(Duration::from_millis(20)) {
            match apply_completion(outcome, completion)? {
                RefinementApplied::Applied { .. } | RefinementApplied::DroppedStaleBuild => {
                    applied += 1;
                }
                RefinementApplied::UnknownTicket => {}
            }
        }
    }
    Ok(applied)
}

/// A session's handle onto the device/cloud split: the tier boundary, the
/// link model, and (in overlapped mode) the executor plus the completion
/// queue refinements land in. Created at checkout from
/// [`dbtouch_types::RemoteSplitConfig`]; cloning shares the queue.
#[derive(Debug, Clone)]
pub struct RemoteTier {
    pub(crate) local_min_level: u8,
    pub(crate) network: NetworkModel,
    pub(crate) overlapped: bool,
    pub(crate) executor: Option<Arc<RemoteExecutor>>,
    pub(crate) queue: Arc<CompletionQueue>,
}

impl RemoteTier {
    /// The queue this session's refinements land in.
    pub fn queue(&self) -> &Arc<CompletionQueue> {
        &self.queue
    }

    /// Whether remote fetches overlap with touch processing (vs. blocking
    /// the session inline).
    pub fn overlapped(&self) -> bool {
        self.overlapped
    }

    /// The coarsest device-resident level for an object with `level_count`
    /// sample levels: the configured boundary, clamped so an object with a
    /// shallow hierarchy is simply all-local.
    pub fn effective_local_min(&self, level_count: u8) -> u8 {
        self.local_min_level.min(level_count.saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::SharedCatalog;
    use dbtouch_types::{KernelConfig, SizeCm};

    fn object_data() -> Arc<ObjectData> {
        let catalog = SharedCatalog::new(KernelConfig::default());
        let id = catalog
            .load_column("c", (0..10_000).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        catalog.data(id).unwrap()
    }

    fn fast_network() -> NetworkModel {
        NetworkModel {
            round_trip_micros: 500,
            rows_per_milli: 10_000,
        }
    }

    #[test]
    fn executor_round_trip_delivers_exact_window_stats() {
        let data = object_data();
        let executor = RemoteExecutor::start(2, 16, fast_network(), 65_536);
        let queue = Arc::new(CompletionQueue::new());
        let range = RowRange::new(100, 200);
        let ticket = executor
            .submit(Arc::clone(&data), 0, 0, range, &queue)
            .unwrap();
        let completion = loop {
            let mut ready = queue.wait_ready(Duration::from_millis(50));
            if let Some(c) = ready.pop() {
                break c;
            }
        };
        assert_eq!(completion.ticket, ticket);
        assert_eq!(completion.object_identity, data.identity());
        let stats = completion.stats.unwrap();
        assert_eq!(stats.count, 100);
        assert_eq!(stats.sum, (100..200).sum::<i64>() as f64);
        assert_eq!(stats.min, Some(100.0));
        assert_eq!(stats.max, Some(199.0));
        // The completion was held for at least the simulated latency.
        assert!(completion.submitted.elapsed() >= Duration::from_micros(500));
        assert_eq!(completion.simulated_micros, fast_network().cost_micros(100));
        assert_eq!(executor.stats().submitted, 1);
        assert_eq!(executor.stats().delivered, 1);
    }

    #[test]
    fn completions_are_delivered_in_due_order_not_submit_order() {
        // Zero-latency link: completions become due as soon as computed; the
        // delay line must deliver all of them, whatever the interleaving.
        let data = object_data();
        let executor = RemoteExecutor::start(
            4,
            64,
            NetworkModel {
                round_trip_micros: 0,
                rows_per_milli: 0,
            },
            65_536,
        );
        let queue = Arc::new(CompletionQueue::new());
        let mut tickets = Vec::new();
        for i in 0..32u64 {
            tickets.push(
                executor
                    .submit(
                        Arc::clone(&data),
                        0,
                        0,
                        RowRange::new(i * 10, i * 10 + 10),
                        &queue,
                    )
                    .unwrap(),
            );
        }
        let mut seen = Vec::new();
        while seen.len() < 32 {
            for c in queue.wait_ready(Duration::from_millis(50)) {
                seen.push(c.ticket);
            }
        }
        seen.sort_unstable();
        tickets.sort_unstable();
        assert_eq!(seen, tickets);
    }

    #[test]
    fn dropping_the_executor_flushes_in_flight_completions() {
        let data = object_data();
        // An hour of simulated latency: only the shutdown flush can deliver.
        let executor = RemoteExecutor::start(
            1,
            16,
            NetworkModel {
                round_trip_micros: 3_600_000_000,
                rows_per_milli: 0,
            },
            65_536,
        );
        let queue = Arc::new(CompletionQueue::new());
        executor
            .submit(Arc::clone(&data), 0, 0, RowRange::new(0, 10), &queue)
            .unwrap();
        drop(executor);
        let ready = queue.drain_ready();
        assert_eq!(ready.len(), 1, "shutdown must flush, not lose, completions");
        assert!(ready[0].stats.is_ok());
    }

    #[test]
    fn stale_build_completions_are_dropped_never_applied() {
        use crate::kernel::TouchAction;
        use crate::operators::aggregate::AggregateKind;
        use crate::session::Session;
        use dbtouch_gesture::synthesizer::GestureSynthesizer;
        use dbtouch_types::RemoteSplitConfig;

        let split = RemoteSplitConfig::default()
            .with_local_min_level(11)
            .with_network(200, 10_000);
        let catalog = SharedCatalog::new(
            KernelConfig::default()
                .with_sample_levels(12)
                .with_remote_split(Some(split)),
        );
        let id = catalog
            .load_column("col", (0..150_000).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        let view = catalog.data(id).unwrap().base_view().clone();
        let mut state = catalog.checkout(id).unwrap();
        state.set_action(TouchAction::Summary {
            half_window: Some(5),
            kind: AggregateKind::Avg,
        });
        let queue = Arc::clone(state.remote_tier().unwrap().queue());
        let trace = GestureSynthesizer::new(60.0).slide_down(&view, 2.8);
        let mut outcome = Session::new(&mut state, catalog.config())
            .run(&trace)
            .unwrap();
        assert!(!outcome.pending.is_empty());

        // Forge the first completion as if an executor had computed it on a
        // different (restructured) build: it must be dropped, the
        // provisional value must survive, and the ledger slot must be
        // excluded from the fold — never applied across builds.
        let victim = outcome.pending[0].clone();
        let provisional = outcome.results.results()[victim.result_index as usize].clone();
        let rows_before = outcome.stats.rows_touched;
        let applied = apply_completion(
            &mut outcome,
            RemoteCompletion {
                ticket: victim.ticket,
                object_identity: victim.object_identity ^ 0xdead_beef,
                stats: Ok(RangeStats {
                    count: 11,
                    sum: 11_000.0,
                    min: Some(0.0),
                    max: Some(2_000.0),
                }),
                simulated_micros: 200,
                submitted: Instant::now(),
            },
        )
        .unwrap();
        assert_eq!(applied, RefinementApplied::DroppedStaleBuild);
        assert_eq!(
            &outcome.results.results()[victim.result_index as usize],
            &provisional,
            "a dropped refinement must leave the provisional answer in place"
        );
        assert_eq!(outcome.stats.rows_touched, rows_before, "nothing charged");
        assert_eq!(outcome.stats.remote_refinements_dropped, 1);
        assert!(matches!(
            outcome.ledger.contribs[victim.contrib_index as usize],
            Contribution::Dropped { .. }
        ));
        // A completion for an unknown ticket is ignored outright.
        assert_eq!(
            apply_completion(
                &mut outcome,
                RemoteCompletion {
                    ticket: u64::MAX,
                    object_identity: victim.object_identity,
                    stats: Ok(RangeStats {
                        count: 1,
                        sum: 1.0,
                        min: Some(1.0),
                        max: Some(1.0),
                    }),
                    simulated_micros: 0,
                    submitted: Instant::now(),
                },
            )
            .unwrap(),
            RefinementApplied::UnknownTicket
        );
        // A completion whose remote read *failed* surfaces the error but
        // still resolves its ledger slot as Dropped — it must never be left
        // Pending with its entry gone, or the fold after a "full" drain
        // would silently exclude the window.
        let failed = outcome.pending[0].clone();
        let err = apply_completion(
            &mut outcome,
            RemoteCompletion {
                ticket: failed.ticket,
                object_identity: failed.object_identity,
                stats: Err(DbTouchError::Corrupt("rotted page".into())),
                simulated_micros: 0,
                submitted: Instant::now(),
            },
        );
        assert!(err.is_err(), "a failed remote read is reported");
        assert!(!outcome.pending.iter().any(|p| p.ticket == failed.ticket));
        assert!(matches!(
            outcome.ledger.contribs[failed.contrib_index as usize],
            Contribution::Dropped { .. }
        ));
        assert_eq!(outcome.stats.remote_refinements_dropped, 2);
        assert_eq!(outcome.ledger.pending_count(), outcome.pending.len());

        // The rest of the refinements drain normally.
        drain_outcome(&mut outcome, &queue).unwrap();
        assert!(outcome.is_drained());
        assert_eq!(
            outcome.stats.remote_refinements_applied,
            outcome.stats.remote.progressive_requests - 2
        );
    }

    #[test]
    fn ledger_folds_in_touch_order() {
        let mut ledger = RefinementLedger {
            kind: Some(AggregateKind::Avg),
            contribs: vec![
                Contribution::Ready {
                    count: 2,
                    sum: 10.0,
                    min: Some(4.0),
                    max: Some(6.0),
                },
                Contribution::Pending { ticket: 7 },
            ],
        };
        assert_eq!(ledger.pending_count(), 1);
        // A pending slot is excluded from the provisional fold.
        assert_eq!(ledger.fold_value(), Some(5.0));
        ledger.contribs[1] = Contribution::Ready {
            count: 2,
            sum: 30.0,
            min: Some(14.0),
            max: Some(16.0),
        };
        assert_eq!(ledger.pending_count(), 0);
        assert_eq!(ledger.fold_value(), Some(10.0));
        // Dropped slots stay excluded.
        ledger.contribs[1] = Contribution::Dropped { ticket: 7 };
        assert_eq!(ledger.fold_value(), Some(5.0));
    }

    #[test]
    fn summary_value_matches_the_session_inline_semantics() {
        let full = RangeStats {
            count: 4,
            sum: 12.0,
            min: Some(1.0),
            max: Some(5.0),
        };
        assert_eq!(summary_value(AggregateKind::Count, &full), Some(4.0));
        assert_eq!(summary_value(AggregateKind::Sum, &full), Some(12.0));
        assert_eq!(summary_value(AggregateKind::Avg, &full), Some(3.0));
        assert_eq!(summary_value(AggregateKind::Min, &full), Some(1.0));
        assert_eq!(summary_value(AggregateKind::Max, &full), Some(5.0));
        let empty = RangeStats {
            count: 0,
            sum: 0.0,
            min: None,
            max: None,
        };
        assert_eq!(summary_value(AggregateKind::Count, &empty), Some(0.0));
        assert_eq!(summary_value(AggregateKind::Sum, &empty), None);
        assert_eq!(summary_value(AggregateKind::Avg, &empty), None);
    }
}
