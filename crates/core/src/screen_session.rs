//! Screen-level sessions: several data objects visible and touchable at once.
//!
//! Section 2.2: "several objects may be visible at any time, representing data
//! (columns and tables) stored in the database. The user has the option to
//! touch and manipulate whole tables or to visualize and work on the columns of
//! a table independently."
//!
//! The per-object [`crate::session::Session`] assumes the touch trace is aimed
//! at one object (that is what the touch OS delivers once a gesture is bound to
//! a view). The [`ScreenSession`] sits one level above: it owns the screen
//! layout — where each object's view is placed inside the master view — and
//! routes raw *screen-coordinate* touch traces to whichever object they land
//! on, so exploration across multiple objects can be driven by a single
//! recorded trace.

use crate::kernel::{Kernel, ObjectId};
use crate::session::SessionOutcome;
use dbtouch_gesture::touch::TouchEvent;
use dbtouch_gesture::trace::GestureTrace;
use dbtouch_gesture::view::Screen;
use dbtouch_types::{DbTouchError, PointCm, Result};
use std::collections::HashMap;

/// The outcome of a screen-level trace: one session outcome per object touched,
/// plus the touches that landed on empty space.
#[derive(Debug, Clone, Default)]
pub struct ScreenOutcome {
    /// Per-object outcomes, keyed by object id, in no particular order.
    pub per_object: HashMap<ObjectId, SessionOutcome>,
    /// Touch samples that did not hit any object.
    pub missed_touches: u64,
}

impl ScreenOutcome {
    /// Total entries returned across all touched objects.
    pub fn total_entries(&self) -> u64 {
        self.per_object
            .values()
            .map(|o| o.stats.entries_returned)
            .sum()
    }

    /// Total rows touched across all touched objects.
    pub fn total_rows_touched(&self) -> u64 {
        self.per_object.values().map(|o| o.stats.rows_touched).sum()
    }
}

/// A screen layout binding kernel objects to positions in the master view.
#[derive(Debug)]
pub struct ScreenSession {
    screen: Screen,
    names: HashMap<String, ObjectId>,
}

impl ScreenSession {
    /// Create an empty screen.
    pub fn new() -> ScreenSession {
        ScreenSession {
            screen: Screen::new(),
            names: HashMap::new(),
        }
    }

    /// Place an object's view at `origin` (screen coordinates, centimetres).
    /// The view geometry is taken from the kernel's current view of the object.
    pub fn place(&mut self, kernel: &Kernel, id: ObjectId, origin: PointCm) -> Result<()> {
        let view = kernel.view(id)?;
        if self.names.contains_key(&view.name) {
            return Err(DbTouchError::AlreadyExists(view.name));
        }
        self.names.insert(view.name.clone(), id);
        self.screen.add(view.positioned_at(origin));
        Ok(())
    }

    /// Number of placed objects.
    pub fn placed_count(&self) -> usize {
        self.names.len()
    }

    /// Which object (if any) a screen-coordinate point lands on.
    pub fn hit(&self, point: PointCm) -> Option<ObjectId> {
        self.screen
            .hit_test(point)
            .and_then(|(view, _)| self.names.get(&view.name).copied())
    }

    /// Run a screen-coordinate touch trace: every touch is hit-tested, its
    /// location translated into the target view's local coordinates, and the
    /// per-object sub-traces are then executed as ordinary kernel sessions.
    ///
    /// Gestures that span multiple objects are split at the object boundary
    /// (each object sees its own sub-trace), which matches how view-bound
    /// gesture recognizers behave on a touch OS.
    pub fn run_trace(&self, kernel: &mut Kernel, trace: &GestureTrace) -> Result<ScreenOutcome> {
        trace.validate()?;
        let mut per_object_events: HashMap<ObjectId, Vec<TouchEvent>> = HashMap::new();
        let mut missed = 0u64;
        for event in &trace.events {
            match self.screen.hit_test(event.location) {
                Some((view, local)) => {
                    let id = self
                        .names
                        .get(&view.name)
                        .copied()
                        .ok_or_else(|| DbTouchError::NotFound(view.name.clone()))?;
                    let mut translated = *event;
                    translated.location = local;
                    per_object_events.entry(id).or_default().push(translated);
                }
                None => missed += 1,
            }
        }

        let mut outcome = ScreenOutcome {
            missed_touches: missed,
            ..ScreenOutcome::default()
        };
        for (id, mut events) in per_object_events {
            // Each sub-trace must start with a Began sample for the recognizer.
            if let Some(first) = events.first_mut() {
                first.phase = dbtouch_gesture::touch::TouchPhase::Began;
            }
            let sub_trace = GestureTrace::from_events(kernel.view(id)?.name.clone(), events)?;
            let session_outcome = kernel.run_trace(id, &sub_trace)?;
            outcome.per_object.insert(id, session_outcome);
        }
        Ok(outcome)
    }
}

impl Default for ScreenSession {
    fn default() -> Self {
        ScreenSession::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::TouchAction;
    use dbtouch_gesture::touch::TouchPhase;
    use dbtouch_types::{KernelConfig, SizeCm, Timestamp};

    fn setup() -> (Kernel, ScreenSession, ObjectId, ObjectId) {
        let mut kernel = Kernel::new(KernelConfig::default());
        let a = kernel
            .load_column("a", (0..10_000).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        let b = kernel
            .load_column("b", (10_000..20_000).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        kernel.set_action(a, TouchAction::Scan).unwrap();
        kernel.set_action(b, TouchAction::Scan).unwrap();
        let mut screen = ScreenSession::new();
        // two columns side by side with a 1cm gap
        screen.place(&kernel, a, PointCm::new(1.0, 1.0)).unwrap();
        screen.place(&kernel, b, PointCm::new(4.0, 1.0)).unwrap();
        (kernel, screen, a, b)
    }

    fn screen_slide(xs: &[(f64, f64)]) -> GestureTrace {
        let mut trace = GestureTrace::new("screen");
        for (i, (x, y)) in xs.iter().enumerate() {
            let phase = if i == 0 {
                TouchPhase::Began
            } else if i + 1 == xs.len() {
                TouchPhase::Ended
            } else {
                TouchPhase::Moved
            };
            trace.push(TouchEvent::new(
                PointCm::new(*x, *y),
                Timestamp::from_millis(i as u64 * 16),
                phase,
            ));
        }
        trace
    }

    #[test]
    fn placement_and_hit_testing() {
        let (_, screen, a, b) = setup();
        assert_eq!(screen.placed_count(), 2);
        assert_eq!(screen.hit(PointCm::new(2.0, 5.0)), Some(a));
        assert_eq!(screen.hit(PointCm::new(5.0, 5.0)), Some(b));
        assert_eq!(screen.hit(PointCm::new(3.5, 5.0)), None); // the gap
        assert_eq!(screen.hit(PointCm::new(50.0, 50.0)), None);
    }

    #[test]
    fn duplicate_placement_rejected() {
        let (kernel, mut screen, a, _) = setup();
        assert!(screen.place(&kernel, a, PointCm::new(8.0, 1.0)).is_err());
    }

    #[test]
    fn trace_routed_to_the_touched_object() {
        let (mut kernel, screen, a, b) = setup();
        // a vertical slide entirely within object a
        let points: Vec<(f64, f64)> = (0..30).map(|i| (2.0, 1.5 + i as f64 * 0.3)).collect();
        let outcome = screen
            .run_trace(&mut kernel, &screen_slide(&points))
            .unwrap();
        assert!(outcome.per_object.contains_key(&a));
        assert!(!outcome.per_object.contains_key(&b));
        assert_eq!(outcome.missed_touches, 0);
        assert!(outcome.total_entries() > 5);
    }

    #[test]
    fn trace_spanning_two_objects_splits() {
        let (mut kernel, screen, a, b) = setup();
        // a horizontal sweep crossing a, the gap, then b
        let points: Vec<(f64, f64)> = (0..40).map(|i| (1.2 + i as f64 * 0.15, 5.0)).collect();
        let outcome = screen
            .run_trace(&mut kernel, &screen_slide(&points))
            .unwrap();
        assert!(outcome.per_object.contains_key(&a));
        assert!(outcome.per_object.contains_key(&b));
        assert!(outcome.missed_touches > 0); // the gap between the objects
                                             // values delivered by each object come from that object's data
        let a_values = &outcome.per_object[&a];
        for r in a_values.results.results() {
            assert!(r.value().unwrap().as_i64().unwrap() < 10_000);
        }
        let b_values = &outcome.per_object[&b];
        for r in b_values.results.results() {
            assert!(r.value().unwrap().as_i64().unwrap() >= 10_000);
        }
    }

    #[test]
    fn touches_on_empty_space_are_counted() {
        let (mut kernel, screen, _, _) = setup();
        let points: Vec<(f64, f64)> = (0..10).map(|i| (20.0, 1.0 + i as f64)).collect();
        let outcome = screen
            .run_trace(&mut kernel, &screen_slide(&points))
            .unwrap();
        assert_eq!(outcome.missed_touches, 10);
        assert!(outcome.per_object.is_empty());
        assert_eq!(outcome.total_entries(), 0);
        assert_eq!(outcome.total_rows_touched(), 0);
    }
}
