//! From touch to tuple identifiers (Section 2.4).
//!
//! "If the touch location is `t`, the size of the data object is `o` and the
//! number of total tuples is `n`, then the tuple identifier we are looking for
//! is `id = n * t / o`."
//!
//! For single-column objects only the scroll-axis dimension is used. For table
//! objects both dimensions may be needed: the scroll axis addresses the tuple
//! and the cross axis addresses the attribute. Rotated objects need no special
//! handling because the mapping always works in the view's own coordinate
//! space along its (possibly flipped) scroll axis.

use dbtouch_gesture::view::View;
use dbtouch_types::{DbTouchError, PointCm, Result, RowId};

/// Maps touch locations within a view to tuple identifiers and attribute
/// indexes.
#[derive(Debug, Clone, Copy, Default)]
pub struct TouchMapper;

impl TouchMapper {
    /// Map a touch at `location` (view-local coordinates) to a tuple identifier
    /// using the Rule of Three. Returns `None` for an empty data object.
    ///
    /// Locations outside the view are clamped to its edge — the touch OS only
    /// delivers in-view touches, but synthesized traces with jitter may fall a
    /// hair outside.
    pub fn row_for_touch(view: &View, location: PointCm) -> Result<Option<RowId>> {
        if !location.is_finite() {
            return Err(DbTouchError::InvalidGeometry(format!(
                "touch location {location} is not finite"
            )));
        }
        let extent = view.scroll_extent();
        if extent <= 0.0 {
            return Err(DbTouchError::InvalidGeometry(format!(
                "view {} has zero scroll extent",
                view.name
            )));
        }
        if view.tuple_count == 0 {
            return Ok(None);
        }
        let t = view
            .orientation
            .scroll_coordinate(location)
            .clamp(0.0, extent);
        // Rule of Three: id = n * t / o.
        let id = (view.tuple_count as f64 * t / extent) as u64;
        Ok(Some(RowId(id.min(view.tuple_count - 1))))
    }

    /// Map a touch to `(tuple identifier, attribute index)` for a table object:
    /// the scroll axis picks the tuple, the cross axis picks the attribute.
    pub fn row_and_attribute_for_touch(
        view: &View,
        location: PointCm,
    ) -> Result<Option<(RowId, usize)>> {
        let row = match Self::row_for_touch(view, location)? {
            Some(row) => row,
            None => return Ok(None),
        };
        let cross_extent = view.cross_extent();
        if cross_extent <= 0.0 || view.attribute_count == 0 {
            return Ok(Some((row, 0)));
        }
        let c = view
            .orientation
            .cross_coordinate(location)
            .clamp(0.0, cross_extent);
        let attr = ((view.attribute_count as f64 * c / cross_extent) as usize)
            .min(view.attribute_count - 1);
        Ok(Some((row, attr)))
    }

    /// The number of base rows between the tuples addressed by two adjacent
    /// distinguishable touch positions. This is the object's *touch
    /// granularity* (Section 2.5): the physical limit on how many tuples a
    /// slide over this object can process.
    pub fn rows_per_touch_position(view: &View, touch_resolution_cm: f64) -> u64 {
        let positions = view.addressable_positions(touch_resolution_cm);
        if positions == 0 {
            return view.tuple_count.max(1);
        }
        (view.tuple_count / positions).max(1)
    }

    /// The fraction of the object (in `[0, 1]`) a given tuple identifier
    /// corresponds to: the inverse of the Rule of Three, used to place results
    /// on screen "in place".
    pub fn fraction_for_row(view: &View, row: RowId) -> f64 {
        if view.tuple_count == 0 {
            return 0.0;
        }
        (row.0 as f64 / view.tuple_count as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtouch_types::SizeCm;

    fn column_view(tuples: u64) -> View {
        View::for_column("c", tuples, SizeCm::new(2.0, 10.0)).unwrap()
    }

    #[test]
    fn rule_of_three_basic() {
        let v = column_view(1000);
        // touch at 5cm of a 10cm object with 1000 tuples -> tuple 500
        let row = TouchMapper::row_for_touch(&v, PointCm::new(1.0, 5.0)).unwrap();
        assert_eq!(row, Some(RowId(500)));
        // top edge
        assert_eq!(
            TouchMapper::row_for_touch(&v, PointCm::new(1.0, 0.0)).unwrap(),
            Some(RowId(0))
        );
        // bottom edge clamps to the last tuple
        assert_eq!(
            TouchMapper::row_for_touch(&v, PointCm::new(1.0, 10.0)).unwrap(),
            Some(RowId(999))
        );
    }

    #[test]
    fn out_of_view_touches_clamp() {
        let v = column_view(1000);
        assert_eq!(
            TouchMapper::row_for_touch(&v, PointCm::new(1.0, -3.0)).unwrap(),
            Some(RowId(0))
        );
        assert_eq!(
            TouchMapper::row_for_touch(&v, PointCm::new(1.0, 30.0)).unwrap(),
            Some(RowId(999))
        );
    }

    #[test]
    fn non_finite_touch_rejected() {
        let v = column_view(1000);
        assert!(TouchMapper::row_for_touch(&v, PointCm::new(1.0, f64::NAN)).is_err());
    }

    #[test]
    fn empty_object_maps_to_none() {
        let v = column_view(0);
        assert_eq!(
            TouchMapper::row_for_touch(&v, PointCm::new(1.0, 5.0)).unwrap(),
            None
        );
    }

    #[test]
    fn mapping_is_monotone_in_touch_position() {
        let v = column_view(12345);
        let mut last = 0u64;
        for i in 0..100 {
            let y = 10.0 * i as f64 / 99.0;
            let row = TouchMapper::row_for_touch(&v, PointCm::new(1.0, y))
                .unwrap()
                .unwrap();
            assert!(row.0 >= last);
            last = row.0;
        }
        assert_eq!(last, 12344);
    }

    #[test]
    fn zoom_in_gives_finer_mapping() {
        let v = column_view(10_000_000);
        let z = v.zoomed(2.0).unwrap();
        // the same physical movement (0.1cm) addresses fewer tuples on the
        // zoomed (larger) object -> finer granularity
        let before = TouchMapper::row_for_touch(&v, PointCm::new(1.0, 0.1))
            .unwrap()
            .unwrap();
        let after = TouchMapper::row_for_touch(&z, PointCm::new(1.0, 0.1))
            .unwrap()
            .unwrap();
        assert!(after.0 < before.0);
        assert_eq!(before.0, 100_000);
        assert_eq!(after.0, 50_000);
    }

    #[test]
    fn rotated_object_maps_along_new_axis() {
        let v = column_view(1000);
        let r = v.rotated();
        // After rotation the object lies horizontally: x addresses tuples.
        let row = TouchMapper::row_for_touch(&r, PointCm::new(5.0, 1.0)).unwrap();
        assert_eq!(row, Some(RowId(500)));
        // The same relative position maps to the same tuple before and after
        // rotation (Section 2.4).
        let before = TouchMapper::row_for_touch(&v, PointCm::new(1.0, 2.5)).unwrap();
        let after = TouchMapper::row_for_touch(&r, PointCm::new(2.5, 1.0)).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn table_touch_selects_attribute_by_cross_axis() {
        let v = View::for_table("t", 1000, 4, SizeCm::new(8.0, 10.0)).unwrap();
        let (row, attr) = TouchMapper::row_and_attribute_for_touch(&v, PointCm::new(1.0, 5.0))
            .unwrap()
            .unwrap();
        assert_eq!(row, RowId(500));
        assert_eq!(attr, 0);
        let (_, attr) = TouchMapper::row_and_attribute_for_touch(&v, PointCm::new(7.9, 5.0))
            .unwrap()
            .unwrap();
        assert_eq!(attr, 3);
        let (_, attr) = TouchMapper::row_and_attribute_for_touch(&v, PointCm::new(4.1, 5.0))
            .unwrap()
            .unwrap();
        assert_eq!(attr, 2);
    }

    #[test]
    fn horizontal_table_slide_walks_attributes_vertically() {
        let v = View::for_table("t", 1000, 4, SizeCm::new(8.0, 10.0))
            .unwrap()
            .rotated();
        // now the scroll axis is x (10cm wide after transpose? size transposed to 10x8)
        let (row, attr) = TouchMapper::row_and_attribute_for_touch(&v, PointCm::new(5.0, 2.0))
            .unwrap()
            .unwrap();
        assert_eq!(row, RowId(500));
        assert_eq!(attr, 1);
    }

    #[test]
    fn rows_per_touch_position() {
        let v = column_view(10_000_000);
        // 10cm / 0.05cm = 200 positions -> 50k rows between adjacent positions
        assert_eq!(TouchMapper::rows_per_touch_position(&v, 0.05), 50_000);
        let z = v.zoomed(2.0).unwrap();
        assert_eq!(TouchMapper::rows_per_touch_position(&z, 0.05), 25_000);
        // tiny object: at least 1
        let small = column_view(10);
        assert_eq!(TouchMapper::rows_per_touch_position(&small, 0.05), 1);
    }

    #[test]
    fn fraction_for_row_inverse_of_mapping() {
        let v = column_view(1000);
        let row = TouchMapper::row_for_touch(&v, PointCm::new(1.0, 7.0))
            .unwrap()
            .unwrap();
        let frac = TouchMapper::fraction_for_row(&v, row);
        assert!((frac - 0.7).abs() < 1e-3);
        assert_eq!(
            TouchMapper::fraction_for_row(&column_view(0), RowId(5)),
            0.0
        );
    }
}
