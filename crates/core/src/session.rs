//! Query sessions: gestures driving per-touch query processing.
//!
//! "In dbTouch, a query is a session of one or more continuous gestures and the
//! system needs to react to every touch, while the user is now in control of the
//! data flow."
//!
//! A [`Session`] consumes the gesture events recognized from a touch trace over
//! one data object and, for every touch, (1) maps the touch to a tuple
//! identifier, (2) picks the granularity / sample level from the gesture speed
//! and object size, (3) runs the object's configured per-touch action, and
//! (4) appends the produced value to the result stream. Pauses trigger the
//! prefetching policy and pay down any refinement debt left by the response
//! budget.

use crate::adaptive::GranularityPolicy;
use crate::catalog::ObjectState;
use crate::kernel::TouchAction;
use crate::mapping::TouchMapper;
use crate::operators::aggregate::RunningAggregate;
use crate::operators::groupby::IncrementalGroupBy;
use crate::operators::scan::PointScan;
use crate::prefetch_policy::PrefetchPolicy;
use crate::remote::RemoteStats;
use crate::remote_exec::{
    summary_value, Contribution, PendingRefinement, RangeStats, RefinementLedger, RemoteTier,
};
use crate::response::ResponseBudget;
use crate::result::{FadePolicy, ResultKind, ResultStream, TouchResult};
use dbtouch_gesture::kinematics::GestureKinematics;
use dbtouch_gesture::recognizer::{GestureEvent, GestureRecognizer};
use dbtouch_gesture::trace::GestureTrace;
use dbtouch_obs::TraceEventKind;
use dbtouch_storage::shared_cache::{RangeAggregate, SummaryKey};
use dbtouch_types::{
    DbTouchError, KernelConfig, PointCm, Result, RowId, RowRange, Timestamp, Value,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Statistics collected while a session runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionStats {
    /// Raw touch samples consumed.
    pub touches: u64,
    /// Gesture events recognized.
    pub gesture_events: u64,
    /// Result values delivered (the paper's "# of data entries returned").
    pub entries_returned: u64,
    /// Rows read from storage (including summary windows and refinements).
    pub rows_touched: u64,
    /// Bytes read from storage.
    pub bytes_touched: u64,
    /// Touches skipped because they mapped to the same tuple as the previous
    /// touch (no new data requested).
    pub duplicate_touches: u64,
    /// Zoom gestures applied.
    pub zooms: u64,
    /// Rotate gestures applied.
    pub rotations: u64,
    /// Prefetch requests issued by the policy.
    pub prefetches_issued: u64,
    /// Refinement steps executed.
    pub refinements: u64,
    /// Touches answered without reading data because the zone-map index proved
    /// the touched block cannot satisfy the filter predicate (Section 2.6,
    /// "Indexing": the slide becomes an index scan).
    pub index_skips: u64,
    /// Column segments executed by the segment kernel for this session's
    /// summary windows (scanned or index-answered); see [`crate::morsel`].
    #[serde(default)]
    pub segments_scanned: u64,
    /// Segments answered from the zone-map index's stored block statistics
    /// without reading data (segment-granularity pruning).
    #[serde(default)]
    pub pruned_segments: u64,
    /// Simulated memory-access cost accumulated (nanoseconds).
    pub simulated_access_nanos: u64,
    /// Real compute time spent inside per-touch processing (nanoseconds).
    pub compute_nanos: u64,
    /// Maximum per-touch processing time observed (nanoseconds).
    pub max_touch_nanos: u64,
    /// Histogram of sample levels used: level -> touches served from it.
    pub sample_level_usage: BTreeMap<u8, u64>,
    /// Cache hits and misses observed during the session.
    pub cache_hits: u64,
    /// Cache misses observed during the session.
    pub cache_misses: u64,
    /// Summary windows answered from the shared cross-session result cache.
    pub shared_cache_hits: u64,
    /// Summary windows the shared cache did not hold (computed from storage).
    pub shared_cache_misses: u64,
    /// Window aggregates this session inserted into the shared cache.
    pub shared_cache_inserts: u64,
    /// Device/cloud traffic of the session's remote split (all zero without
    /// one). Progressive requests are fine-level summaries answered coarse
    /// locally with an asynchronous refinement; `rows_shipped` and
    /// `remote_wait_micros` accrue when refinements land (or inline, in
    /// blocking mode).
    #[serde(default)]
    pub remote: RemoteStats,
    /// Microseconds this session actually stalled waiting for the simulated
    /// server link (blocking-mode fetches). Overlapped sessions keep
    /// processing — their stall, if any, happens at the owner's drain
    /// barrier and is recorded there.
    #[serde(default)]
    pub remote_blocked_micros: u64,
    /// Refinements applied to this session's outcomes so far.
    #[serde(default)]
    pub remote_refinements_applied: u64,
    /// Refinements dropped because the object was rebuilt before they landed.
    #[serde(default)]
    pub remote_refinements_dropped: u64,
}

impl SessionStats {
    /// Mean per-touch processing time in nanoseconds (0 when no touches).
    pub fn mean_touch_nanos(&self) -> u64 {
        (self.compute_nanos + self.simulated_access_nanos)
            .checked_div(self.touches)
            .unwrap_or(0)
    }
}

/// The outcome of running a gesture trace through a session.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionOutcome {
    /// The result stream produced, in production order.
    pub results: ResultStream,
    /// Statistics about the processing.
    pub stats: SessionStats,
    /// Final value of the running aggregate, if the action maintains one.
    /// Provisional while refinements are [`pending`](Self::pending); exact
    /// once drained.
    pub final_aggregate: Option<f64>,
    /// Final per-group aggregates, if the action is a group-by (sorted by
    /// group value).
    pub final_groups: Vec<(Value, f64)>,
    /// Refinements still in flight on the remote executor, in touch order.
    /// Empty for all-local and blocking-mode sessions; drained by the
    /// outcome's owner (see [`crate::remote_exec::drain_outcome`]).
    #[serde(default)]
    pub pending: Vec<PendingRefinement>,
    /// The ordered aggregate-contribution log of an overlapped summary
    /// session (inactive otherwise); re-folded when refinements land so the
    /// drained aggregate is bit-identical to the all-local run.
    #[serde(default)]
    pub ledger: RefinementLedger,
}

impl SessionOutcome {
    /// Whether every refinement has landed (always true for all-local runs).
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty()
    }
}

/// A query session over one data object.
///
/// A session borrows one [`ObjectState`] (per-session mutable exploration
/// state) and reads the shared, immutable object data through it. Sessions on
/// different states never contend: `dbtouch-server` runs many of them
/// concurrently over one [`crate::catalog::SharedCatalog`].
pub struct Session<'a> {
    object: &'a mut ObjectState,
    config: &'a KernelConfig,
    recognizer: GestureRecognizer,
    kinematics: GestureKinematics,
    granularity: GranularityPolicy,
    prefetch_policy: PrefetchPolicy,
    budget: ResponseBudget,
    aggregate: Option<RunningAggregate>,
    groupby: Option<IncrementalGroupBy>,
    results: ResultStream,
    stats: SessionStats,
    last_row: Option<RowId>,
    /// Refinements submitted to the remote executor during this run.
    pending: Vec<PendingRefinement>,
    /// Ordered aggregate contributions; active only for summary sessions on
    /// an overlapped device/cloud split (see [`RefinementLedger`]).
    ledger: RefinementLedger,
}

impl<'a> Session<'a> {
    /// Create a session over checked-out object state with the kernel
    /// configuration (use [`crate::catalog::SharedCatalog::checkout`] to
    /// obtain the state).
    pub fn new(object: &'a mut ObjectState, config: &'a KernelConfig) -> Session<'a> {
        let aggregate = object.action.aggregate_kind().map(RunningAggregate::new);
        let groupby = match &object.action {
            TouchAction::GroupBy { kind, .. } => Some(IncrementalGroupBy::new(*kind)),
            _ => None,
        };
        let budget = if config.touch_budget_micros == u64::MAX {
            ResponseBudget::unlimited()
        } else {
            // ~4ns per aggregated row is a reasonable in-memory estimate; the
            // budget only needs the right order of magnitude.
            ResponseBudget::new(config.touch_budget_micros, 4.0)
        };
        // An overlapped split defers summary-window aggregate contributions
        // to the ledger (folded in touch order at drain) so refinements that
        // land out of order cannot perturb the floating-point accumulation.
        let ledger = RefinementLedger {
            kind: match (&object.action, object.remote.as_ref()) {
                (TouchAction::Summary { kind, .. }, Some(tier)) if tier.overlapped() => Some(*kind),
                _ => None,
            },
            contribs: Vec::new(),
        };
        Session {
            object,
            config,
            recognizer: GestureRecognizer::default(),
            kinematics: GestureKinematics::default(),
            granularity: GranularityPolicy::new(config.clone()),
            prefetch_policy: PrefetchPolicy::new(config),
            budget,
            aggregate,
            groupby,
            results: ResultStream::new(FadePolicy {
                visible_ms: config.result_fade_after_ms,
                fade_ms: config.result_fade_duration_ms,
            }),
            stats: SessionStats::default(),
            last_row: None,
            pending: Vec::new(),
            ledger,
        }
    }

    /// Run a full gesture trace through the session and return its outcome.
    pub fn run(mut self, trace: &GestureTrace) -> Result<SessionOutcome> {
        trace.validate()?;
        for event in &trace.events {
            self.stats.touches += 1;
            self.kinematics.observe(event);
            let gestures = self.recognizer.feed(event);
            for g in gestures {
                self.stats.gesture_events += 1;
                self.handle_gesture(g)?;
            }
        }
        Ok(SessionOutcome {
            // With an active ledger the aggregate is the in-order fold of
            // the contributions (provisional while refinements are pending —
            // re-folded at drain); otherwise the inline running aggregate.
            final_aggregate: if self.ledger.is_active() {
                self.ledger.fold_value()
            } else {
                self.aggregate.and_then(|a| a.value())
            },
            final_groups: self
                .groupby
                .as_ref()
                .map(|g| g.results())
                .unwrap_or_default(),
            results: self.results,
            stats: self.stats,
            pending: self.pending,
            ledger: self.ledger,
        })
    }

    fn handle_gesture(&mut self, gesture: GestureEvent) -> Result<()> {
        match gesture {
            GestureEvent::Tap {
                location,
                timestamp,
            }
            | GestureEvent::SlideBegan {
                location,
                timestamp,
            }
            | GestureEvent::SlideStep {
                location,
                timestamp,
            } => self.process_touch(location, timestamp),
            GestureEvent::SlidePaused {
                location,
                timestamp,
            } => self.on_pause(location, timestamp),
            GestureEvent::SlideEnded { .. } => {
                self.last_row = None;
                Ok(())
            }
            GestureEvent::Pinch { scale, .. } => {
                self.object.view = self.object.view.zoomed(scale)?;
                self.stats.zooms += 1;
                Ok(())
            }
            GestureEvent::Rotate { .. } => {
                self.object.rotate_layout(self.config.rotation_chunk_rows)?;
                self.stats.rotations += 1;
                Ok(())
            }
        }
    }

    /// Process one touch that addresses data.
    fn process_touch(&mut self, location: PointCm, timestamp: Timestamp) -> Result<()> {
        let started = Instant::now();
        let mapped = TouchMapper::row_and_attribute_for_touch(&self.object.view, location)?;
        let (row, attribute) = match mapped {
            Some(m) => m,
            None => return Ok(()),
        };
        if self.last_row == Some(row) {
            self.stats.duplicate_touches += 1;
            return Ok(());
        }
        self.last_row = Some(row);

        // Cache / prefetch accounting for the touched row.
        if self.object.cache.lookup(row) {
            self.stats.cache_hits += 1;
        } else {
            self.stats.cache_misses += 1;
        }
        self.stats.simulated_access_nanos += self.object.prefetcher.access_cost_nanos(row);

        let fraction = TouchMapper::fraction_for_row(&self.object.view, row);
        let action = self.object.action.clone();
        match action {
            TouchAction::Scan => self.do_scan(row, attribute, fraction, timestamp, None)?,
            TouchAction::FilteredScan { predicate } => {
                self.do_scan(row, attribute, fraction, timestamp, Some(&predicate))?
            }
            TouchAction::Aggregate(_) => {
                self.do_aggregate(row, attribute, fraction, timestamp, None)?
            }
            TouchAction::FilteredAggregate { predicate, .. } => {
                self.do_aggregate(row, attribute, fraction, timestamp, Some(&predicate))?
            }
            TouchAction::Summary { half_window, kind } => {
                let k = half_window.unwrap_or(self.config.summary_half_window);
                self.do_summary(row, attribute, fraction, timestamp, k, kind)?
            }
            TouchAction::Tuple => self.do_tuple(row, fraction, timestamp)?,
            TouchAction::GroupBy {
                group_attribute,
                value_attribute,
                ..
            } => self.do_group_by(row, group_attribute, value_attribute, fraction, timestamp)?,
        }

        // Keep the touched neighbourhood warm for re-examination.
        if self.config.cache_enabled {
            let window = RowRange::window(
                row,
                self.config.summary_half_window,
                self.object.row_count(),
            );
            self.object.cache.insert(window);
        }

        let elapsed = started.elapsed().as_nanos() as u64;
        self.stats.compute_nanos += elapsed;
        self.stats.max_touch_nanos = self.stats.max_touch_nanos.max(elapsed);
        self.object
            .telemetry
            .hot_event(TraceEventKind::TouchReceived, elapsed);
        Ok(())
    }

    fn emit(&mut self, result: TouchResult) {
        self.stats.entries_returned += 1;
        self.results.push(result);
    }

    fn charge_rows(&mut self, rows: u64) {
        self.stats.rows_touched += rows;
        self.stats.bytes_touched += rows * 8; // fixed-width 8-byte numeric fields
    }

    /// Compute one summary window through the shared segment kernel
    /// ([`crate::morsel::window_stats`]): planned into `segment_rows`
    /// morsels, fanned out over the catalog's scan pool when one exists,
    /// index-answered where the zone map covers whole blocks — and always
    /// bit-identical to the sequential scan.
    fn window_stats(
        &mut self,
        attribute: usize,
        level: u8,
        range: RowRange,
    ) -> Result<(u64, f64, Option<f64>, Option<f64>)> {
        let scan = crate::morsel::window_stats(
            &self.object.data,
            attribute,
            level,
            range,
            self.config.segment_rows,
            self.object.morsel.as_deref(),
            Some(&self.object.telemetry),
        )?;
        self.stats.segments_scanned += scan.segments_scanned;
        self.stats.pruned_segments += scan.pruned_segments;
        Ok((scan.count, scan.sum, scan.min, scan.max))
    }

    fn do_scan(
        &mut self,
        row: RowId,
        attribute: usize,
        fraction: f64,
        timestamp: Timestamp,
        predicate: Option<&crate::operators::filter::Predicate>,
    ) -> Result<()> {
        // Index scan path (Section 2.6): if the predicate's bounds prove the
        // touched block cannot contain a match, answer without touching data.
        if let Some(p) = predicate {
            if self.index_proves_no_match(row, attribute, p) {
                self.stats.index_skips += 1;
                return Ok(());
            }
        }
        let value = PointScan::value(&self.object.matrix, row, attribute)?;
        self.charge_rows(1);
        let kind = if let Some(p) = predicate {
            if !p.eval(&value)? {
                return Ok(());
            }
            ResultKind::FilteredScan
        } else {
            ResultKind::Scan
        };
        self.emit(TouchResult::single(row, fraction, value, timestamp, kind));
        Ok(())
    }

    /// True if the object's zone-map index proves that the block containing
    /// `row` has no value within the predicate's numeric bounds.
    fn index_proves_no_match(
        &self,
        row: RowId,
        attribute: usize,
        predicate: &crate::operators::filter::Predicate,
    ) -> bool {
        let Some((lo, hi)) = predicate.numeric_bounds() else {
            return false;
        };
        match self
            .object
            .data()
            .indexes()
            .get(attribute)
            .and_then(|i| i.as_ref())
        {
            Some(index) => !index.row_block_may_match(row.0, lo, hi),
            None => false,
        }
    }

    fn do_group_by(
        &mut self,
        row: RowId,
        group_attribute: usize,
        value_attribute: usize,
        fraction: f64,
        timestamp: Timestamp,
    ) -> Result<()> {
        let group = PointScan::value(&self.object.matrix, row, group_attribute)?;
        let value = PointScan::value(&self.object.matrix, row, value_attribute)?.as_f64()?;
        self.charge_rows(2);
        let groupby = self
            .groupby
            .as_mut()
            .expect("group-by action always has group-by state");
        groupby.update(group.clone(), value);
        let current = groupby.group(&group).expect("group just updated");
        self.emit(TouchResult {
            row,
            position_fraction: fraction,
            values: vec![group, Value::Float(current)],
            produced_at: timestamp,
            kind: ResultKind::GroupResult,
        });
        Ok(())
    }

    fn do_aggregate(
        &mut self,
        row: RowId,
        attribute: usize,
        fraction: f64,
        timestamp: Timestamp,
        predicate: Option<&crate::operators::filter::Predicate>,
    ) -> Result<()> {
        let value = PointScan::value(&self.object.matrix, row, attribute)?;
        self.charge_rows(1);
        if let Some(p) = predicate {
            if !p.eval(&value)? {
                return Ok(());
            }
        }
        let numeric = value.as_f64()?;
        let agg = self
            .aggregate
            .as_mut()
            .expect("aggregate action always has aggregate state");
        agg.update(numeric);
        let current = agg.value().expect("non-empty aggregate");
        self.emit(TouchResult::single(
            row,
            fraction,
            Value::Float(current),
            timestamp,
            ResultKind::RunningAggregate,
        ));
        Ok(())
    }

    fn do_summary(
        &mut self,
        row: RowId,
        attribute: usize,
        fraction: f64,
        timestamp: Timestamp,
        half_window: u64,
        kind: crate::operators::aggregate::AggregateKind,
    ) -> Result<()> {
        // Pick the sample level from gesture speed and object size.
        let hierarchy = self.object.hierarchy(attribute)?;
        let decision = self.granularity.decide(
            &self.object.view,
            hierarchy,
            self.kinematics.speed_cm_per_s(),
        );
        *self
            .stats
            .sample_level_usage
            .entry(decision.sample_level)
            .or_insert(0) += 1;

        let level_count = hierarchy.level_count();
        let column = hierarchy.level(decision.sample_level)?;
        let center = hierarchy.map_row(row, decision.sample_level)?;
        let full_window = RowRange::window(center, half_window, column.len());
        let admitted = self.budget.admit(full_window, timestamp);

        // Device/cloud split: a window at a level finer than the device
        // holds is served by the (simulated) server. Overlapped mode answers
        // provisionally from the coarsest local level and refines
        // asynchronously; blocking mode stalls inline for the round trip and
        // then computes the same fine answer the all-local path would.
        // (Empty admitted windows are all-local trivially: nothing to ship.)
        let remote = match self.object.remote.as_ref() {
            Some(tier)
                if decision.sample_level < tier.effective_local_min(level_count)
                    && !admitted.is_empty() =>
            {
                Some(tier.clone())
            }
            _ => None,
        };
        if let Some(tier) = remote {
            if tier.overlapped() {
                return self.do_summary_remote(
                    &tier,
                    row,
                    attribute,
                    fraction,
                    timestamp,
                    half_window,
                    kind,
                    decision.sample_level,
                    admitted,
                );
            }
            let micros = tier.network.cost_micros(admitted.len());
            // Capped so an adversarial network model cannot park the session
            // for centuries; the stats still record the uncapped cost.
            std::thread::sleep(std::time::Duration::from_micros(micros.min(60_000_000)));
            let s = &mut self.stats;
            s.remote.remote_requests = s.remote.remote_requests.saturating_add(1);
            s.remote.rows_shipped = s.remote.rows_shipped.saturating_add(admitted.len());
            s.remote.remote_wait_micros = s.remote.remote_wait_micros.saturating_add(micros);
            s.remote_blocked_micros = s.remote_blocked_micros.saturating_add(micros);
        }
        // Aggregate only the admitted part of the window; any truncated tail is
        // queued as refinement debt and merged in during pauses. (This is the
        // session-integrated version of [`InteractiveSummary::summarize`].)
        //
        // Concurrent explorers of the same object keep requesting the same
        // windows; the shared cross-session cache serves the exact tuple a
        // recomputation would produce (and the same rows are charged either
        // way), so a hit only saves the compute — results and accounting stay
        // bit-identical with the cache on or off. Misses run through the
        // segment kernel ([`Self::window_stats`]), which is bit-identical to
        // the sequential scan at any `scan_parallelism` / `segment_rows`.
        let shared_cache = self.object.shared_cache.clone();
        let (count, sum, min, max) = match shared_cache.as_ref() {
            Some(cache) => {
                let key = SummaryKey {
                    object: self.object.data.identity(),
                    attribute: attribute as u32,
                    level: decision.sample_level,
                    kind: kind as u8,
                    start: admitted.start,
                    end: admitted.end,
                };
                match cache.get(&key) {
                    Some(hit) => {
                        self.stats.shared_cache_hits += 1;
                        self.object
                            .telemetry
                            .hot_event(TraceEventKind::SharedCacheHit, row.0);
                        (hit.count, hit.sum, hit.min, hit.max)
                    }
                    None => {
                        self.stats.shared_cache_misses += 1;
                        self.object
                            .telemetry
                            .hot_event(TraceEventKind::SharedCacheMiss, row.0);
                        let (count, sum, min, max) =
                            self.window_stats(attribute, decision.sample_level, admitted)?;
                        cache.insert(
                            key,
                            RangeAggregate {
                                count,
                                sum,
                                min,
                                max,
                            },
                        );
                        self.stats.shared_cache_inserts += 1;
                        (count, sum, min, max)
                    }
                }
            }
            None => self.window_stats(attribute, decision.sample_level, admitted)?,
        };
        self.charge_rows(count);
        let value = summary_value(
            kind,
            &RangeStats {
                count,
                sum,
                min,
                max,
            },
        );
        if let Some(v) = value {
            self.contribute(count, sum, min, max);
            self.emit(TouchResult::single(
                row,
                fraction,
                Value::Float(v),
                timestamp,
                ResultKind::Summary,
            ));
        }
        Ok(())
    }

    /// Feed one summary-window batch into the session's running aggregate:
    /// inline when the ledger is inactive, appended to the ledger (same
    /// touch-order position, folded at drain) when an overlapped remote
    /// split is active — either way the accumulation sequence is identical
    /// to the all-local run.
    fn contribute(&mut self, count: u64, sum: f64, min: Option<f64>, max: Option<f64>) {
        if self.ledger.is_active() {
            self.ledger.contribs.push(Contribution::Ready {
                count,
                sum,
                min,
                max,
            });
        } else if let Some(agg) = self.aggregate.as_mut() {
            agg.update_batch(count, sum, min, max);
        }
    }

    /// The overlapped remote path of one summary touch: answer immediately
    /// with the coarsest device-resident level's value over the same logical
    /// window (a *provisional* result), ship the fine-level window to the
    /// executor, and record the refinement handle that will patch this very
    /// result — and resolve this touch's ledger slot — when it lands.
    #[allow(clippy::too_many_arguments)]
    fn do_summary_remote(
        &mut self,
        tier: &RemoteTier,
        row: RowId,
        attribute: usize,
        fraction: f64,
        timestamp: Timestamp,
        half_window: u64,
        kind: crate::operators::aggregate::AggregateKind,
        fine_level: u8,
        admitted: RowRange,
    ) -> Result<()> {
        let coarse = {
            let hierarchy = self.object.hierarchy(attribute)?;
            let local_min = tier.effective_local_min(hierarchy.level_count());
            let coarse_column = hierarchy.level(local_min)?;
            let coarse_center = hierarchy.map_row(row, local_min)?;
            let coarse_window = RowRange::window(coarse_center, half_window, coarse_column.len());
            let (count, sum, min, max) = coarse_column.numeric_range_stats(coarse_window)?;
            RangeStats {
                count,
                sum,
                min,
                max,
            }
        };
        // The provisional value is display-only (it is patched before the
        // outcome is final), so its rows are progressive traffic, not part
        // of the deterministic row accounting the refinement will charge.
        let provisional = summary_value(kind, &coarse).unwrap_or(0.0);
        let executor = tier.executor.as_ref().ok_or_else(|| {
            DbTouchError::Internal("overlapped remote tier has no executor".into())
        })?;
        let ticket = executor.submit(
            Arc::clone(&self.object.data),
            attribute,
            fine_level,
            admitted,
            tier.queue(),
        )?;
        self.stats.remote.progressive_requests =
            self.stats.remote.progressive_requests.saturating_add(1);
        self.object
            .telemetry
            .event(TraceEventKind::RemoteSubmitted, ticket);
        let contrib_index = self.ledger.contribs.len() as u64;
        self.ledger.contribs.push(Contribution::Pending { ticket });
        self.pending.push(PendingRefinement {
            ticket,
            object_identity: self.object.data.identity(),
            result_index: self.results.len() as u64,
            contrib_index,
            kind,
            level: fine_level,
        });
        self.emit(TouchResult::single(
            row,
            fraction,
            Value::Float(provisional),
            timestamp,
            ResultKind::Summary,
        ));
        Ok(())
    }

    fn do_tuple(&mut self, row: RowId, fraction: f64, timestamp: Timestamp) -> Result<()> {
        let values = PointScan::tuple(&self.object.matrix, row)?;
        self.charge_rows(1);
        self.emit(TouchResult {
            row,
            position_fraction: fraction,
            values,
            produced_at: timestamp,
            kind: ResultKind::Tuple,
        });
        Ok(())
    }

    /// A paused gesture: extrapolate and prefetch, and pay down refinement debt.
    fn on_pause(&mut self, location: PointCm, _timestamp: Timestamp) -> Result<()> {
        if let Ok(Some(row)) = TouchMapper::row_for_touch(&self.object.view, location) {
            if let Some(range) = self.prefetch_policy.plan_and_submit(
                &self.object.view,
                &self.kinematics,
                row.0,
                &mut self.object.prefetcher,
            ) {
                self.stats.prefetches_issued += 1;
                if self.config.cache_enabled {
                    self.object.cache.insert(range);
                }
            }
        }
        // Use the idle time to refine a previously truncated summary. (This
        // budget-debt refinement always reads locally, in both split modes:
        // it feeds only the running aggregate, and the ledger keeps its
        // contribution at the same touch-order position as the all-local
        // run.)
        if let Some(debt) = self.budget.next_refinement() {
            if self.object.hierarchy(0).is_ok() {
                // Same segment kernel as the summary path (window_stats clamps
                // to the column internally), so debt refinement stays
                // bit-identical under any scan_parallelism / segment_rows.
                let (count, sum, min, max) = self.window_stats(0, 0, debt.remaining)?;
                self.charge_rows(count);
                self.contribute(count, sum, min, max);
                self.stats.refinements += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Kernel, TouchAction};
    use crate::operators::aggregate::AggregateKind;
    use crate::operators::filter::{CompareOp, Predicate};
    use dbtouch_gesture::synthesizer::GestureSynthesizer;
    use dbtouch_types::SizeCm;

    fn kernel_with_column(n: i64) -> (Kernel, crate::kernel::ObjectId) {
        let mut kernel = Kernel::new(KernelConfig::default());
        let id = kernel
            .load_column("col", (0..n).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        (kernel, id)
    }

    #[test]
    fn scan_session_returns_touched_values() {
        let (mut kernel, id) = kernel_with_column(100_000);
        kernel.set_action(id, TouchAction::Scan).unwrap();
        let view = kernel.view(id).unwrap();
        let trace = GestureSynthesizer::new(60.0).slide_down(&view, 1.0);
        let outcome = kernel.run_trace(id, &trace).unwrap();
        assert!(outcome.stats.entries_returned > 30);
        assert_eq!(
            outcome.stats.entries_returned as usize,
            outcome.results.len()
        );
        // values are the raw data and rows increase monotonically for a
        // top-to-bottom slide
        let rows: Vec<u64> = outcome.results.results().iter().map(|r| r.row.0).collect();
        let mut sorted = rows.clone();
        sorted.sort_unstable();
        assert_eq!(rows, sorted);
        for r in outcome.results.results() {
            assert_eq!(r.value().unwrap(), &Value::Int(r.row.0 as i64));
        }
    }

    #[test]
    fn slower_slides_return_more_entries() {
        let (mut kernel, id) = kernel_with_column(1_000_000);
        kernel
            .set_action(
                id,
                TouchAction::Summary {
                    half_window: Some(5),
                    kind: AggregateKind::Avg,
                },
            )
            .unwrap();
        let view = kernel.view(id).unwrap();
        let fast = GestureSynthesizer::new(60.0).slide_down(&view, 0.5);
        let slow = GestureSynthesizer::new(60.0).slide_down(&view, 3.0);
        let fast_out = kernel.run_trace(id, &fast).unwrap();
        let slow_out = kernel.run_trace(id, &slow).unwrap();
        assert!(
            slow_out.stats.entries_returned > 3 * fast_out.stats.entries_returned,
            "slow {} vs fast {}",
            slow_out.stats.entries_returned,
            fast_out.stats.entries_returned
        );
    }

    #[test]
    fn aggregate_session_maintains_running_average() {
        let (mut kernel, id) = kernel_with_column(10_000);
        kernel
            .set_action(id, TouchAction::Aggregate(AggregateKind::Avg))
            .unwrap();
        let view = kernel.view(id).unwrap();
        let trace = GestureSynthesizer::new(60.0).slide_down(&view, 1.0);
        let outcome = kernel.run_trace(id, &trace).unwrap();
        let final_agg = outcome.final_aggregate.unwrap();
        // A full top-to-bottom slide over 0..10_000 should land near the middle.
        assert!(
            final_agg > 3_000.0 && final_agg < 7_000.0,
            "avg {final_agg}"
        );
        // The running aggregate is emitted per touch and changes over time.
        assert!(outcome.results.len() > 10);
    }

    #[test]
    fn filtered_scan_only_emits_matching_values() {
        let (mut kernel, id) = kernel_with_column(10_000);
        kernel
            .set_action(
                id,
                TouchAction::FilteredScan {
                    predicate: Predicate::compare(CompareOp::Ge, 5_000i64),
                },
            )
            .unwrap();
        let view = kernel.view(id).unwrap();
        let trace = GestureSynthesizer::new(60.0).slide_down(&view, 1.0);
        let outcome = kernel.run_trace(id, &trace).unwrap();
        assert!(!outcome.results.is_empty());
        for r in outcome.results.results() {
            assert!(r.value().unwrap().as_i64().unwrap() >= 5_000);
            assert_eq!(r.kind, ResultKind::FilteredScan);
        }
        // roughly half of the touches are filtered out
        assert!(outcome.stats.entries_returned < outcome.stats.touches);
    }

    #[test]
    fn summary_session_uses_sample_levels_adaptively() {
        let (mut kernel, id) = kernel_with_column(1_000_000);
        kernel
            .set_action(
                id,
                TouchAction::Summary {
                    half_window: Some(5),
                    kind: AggregateKind::Avg,
                },
            )
            .unwrap();
        let view = kernel.view(id).unwrap();
        let trace = GestureSynthesizer::new(60.0).slide_down(&view, 1.0);
        let outcome = kernel.run_trace(id, &trace).unwrap();
        // With default adaptive sampling on a 1M-row, 10cm object the kernel
        // should never read base data directly.
        assert!(outcome.stats.sample_level_usage.keys().all(|&l| l > 0));
        assert!(outcome.stats.rows_touched > 0);
        assert!(outcome.stats.entries_returned > 0);
    }

    #[test]
    fn naive_config_reads_base_data() {
        let mut kernel = Kernel::new(KernelConfig::naive());
        let id = kernel
            .load_column("col", (0..100_000i64).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        kernel
            .set_action(
                id,
                TouchAction::Summary {
                    half_window: Some(5),
                    kind: AggregateKind::Avg,
                },
            )
            .unwrap();
        let view = kernel.view(id).unwrap();
        let trace = GestureSynthesizer::new(60.0).slide_down(&view, 0.5);
        let outcome = kernel.run_trace(id, &trace).unwrap();
        assert_eq!(
            outcome
                .stats
                .sample_level_usage
                .keys()
                .copied()
                .collect::<Vec<_>>(),
            vec![0]
        );
    }

    #[test]
    fn pauses_trigger_prefetching() {
        let (mut kernel, id) = kernel_with_column(1_000_000);
        kernel.set_action(id, TouchAction::Scan).unwrap();
        let view = kernel.view(id).unwrap();
        let trace = GestureSynthesizer::new(60.0).exploratory_slide(&view, 3.0);
        let outcome = kernel.run_trace(id, &trace).unwrap();
        assert!(outcome.stats.prefetches_issued > 0);
    }

    #[test]
    fn duplicate_touches_are_skipped() {
        let (mut kernel, id) = kernel_with_column(10);
        kernel.set_action(id, TouchAction::Scan).unwrap();
        let view = kernel.view(id).unwrap();
        // A slow slide over a 10-row object maps many samples to the same rows.
        let trace = GestureSynthesizer::new(60.0).slide_down(&view, 2.0);
        let outcome = kernel.run_trace(id, &trace).unwrap();
        assert!(outcome.stats.duplicate_touches > 50);
        assert!(outcome.stats.entries_returned <= 10);
    }

    #[test]
    fn tuple_action_returns_full_rows() {
        let mut kernel = Kernel::new(KernelConfig::default());
        let table = dbtouch_storage::table::Table::from_columns(
            "t",
            vec![
                dbtouch_storage::column::Column::from_i64("id", (0..1000).collect()),
                dbtouch_storage::column::Column::from_f64(
                    "v",
                    (0..1000).map(|i| i as f64).collect(),
                ),
            ],
        )
        .unwrap();
        let id = kernel.load_table(table, SizeCm::new(6.0, 10.0)).unwrap();
        kernel.set_action(id, TouchAction::Tuple).unwrap();
        let view = kernel.view(id).unwrap();
        let trace = GestureSynthesizer::new(60.0).slide_down(&view, 0.5);
        let outcome = kernel.run_trace(id, &trace).unwrap();
        assert!(!outcome.results.is_empty());
        for r in outcome.results.results() {
            assert_eq!(r.values.len(), 2);
            assert_eq!(r.kind, ResultKind::Tuple);
        }
    }

    #[test]
    fn group_by_action_maintains_per_group_aggregates() {
        let mut kernel = Kernel::new(KernelConfig::default());
        let table = dbtouch_storage::table::Table::from_columns(
            "sales",
            vec![
                dbtouch_storage::column::Column::from_i64(
                    "region",
                    (0..50_000).map(|i| i % 4).collect(),
                ),
                dbtouch_storage::column::Column::from_f64(
                    "amount",
                    (0..50_000).map(|i| (i % 100) as f64).collect(),
                ),
            ],
        )
        .unwrap();
        let id = kernel.load_table(table, SizeCm::new(4.0, 10.0)).unwrap();
        kernel
            .set_action(
                id,
                TouchAction::GroupBy {
                    group_attribute: 0,
                    value_attribute: 1,
                    kind: AggregateKind::Count,
                },
            )
            .unwrap();
        let view = kernel.view(id).unwrap();
        let trace = GestureSynthesizer::new(60.0).slide_down(&view, 2.0);
        let outcome = kernel.run_trace(id, &trace).unwrap();
        assert!(!outcome.final_groups.is_empty());
        assert!(outcome.final_groups.len() <= 4);
        let total: f64 = outcome.final_groups.iter().map(|(_, v)| v).sum();
        assert_eq!(total as u64, outcome.stats.entries_returned);
        for r in outcome.results.results() {
            assert_eq!(r.kind, ResultKind::GroupResult);
            assert_eq!(r.values.len(), 2);
        }
    }

    #[test]
    fn group_by_action_validation() {
        let (mut kernel, id) = kernel_with_column(100);
        // single-column object: value attribute 1 does not exist
        assert!(kernel
            .set_action(
                id,
                TouchAction::GroupBy {
                    group_attribute: 0,
                    value_attribute: 1,
                    kind: AggregateKind::Sum,
                },
            )
            .is_err());
    }

    #[test]
    fn filtered_scan_uses_index_to_skip_blocks() {
        // Sorted data: a selective predicate on the high end means most touched
        // blocks provably cannot match and are skipped without reading data.
        let (mut kernel, id) = kernel_with_column(1_000_000);
        kernel
            .set_action(
                id,
                TouchAction::FilteredScan {
                    predicate: Predicate::compare(CompareOp::Ge, 990_000i64),
                },
            )
            .unwrap();
        let view = kernel.view(id).unwrap();
        let trace = GestureSynthesizer::new(60.0).slide_down(&view, 2.0);
        let outcome = kernel.run_trace(id, &trace).unwrap();
        assert!(
            outcome.stats.index_skips > 50,
            "skips {}",
            outcome.stats.index_skips
        );
        // skipped touches read no rows
        assert!(outcome.stats.rows_touched < outcome.stats.touches);
        // everything that was emitted satisfies the predicate
        for r in outcome.results.results() {
            assert!(r.value().unwrap().as_i64().unwrap() >= 990_000);
        }
    }

    #[test]
    fn session_stats_are_consistent() {
        let (mut kernel, id) = kernel_with_column(100_000);
        kernel.set_action(id, TouchAction::Scan).unwrap();
        let view = kernel.view(id).unwrap();
        let trace = GestureSynthesizer::new(60.0).slide_down(&view, 1.0);
        let outcome = kernel.run_trace(id, &trace).unwrap();
        let s = &outcome.stats;
        assert_eq!(s.touches as usize, trace.len());
        assert!(s.gesture_events > 0);
        assert!(s.rows_touched >= s.entries_returned);
        assert_eq!(s.bytes_touched, s.rows_touched * 8);
        assert!(s.mean_touch_nanos() > 0);
        assert!(s.max_touch_nanos >= s.compute_nanos / s.touches.max(1));
        // every emitted scan result corresponds to exactly one cache lookup
        assert_eq!(s.cache_hits + s.cache_misses, s.entries_returned);
        // a scan session never consults the shared summary cache
        assert_eq!(s.shared_cache_hits + s.shared_cache_misses, 0);
        assert_eq!(s.shared_cache_inserts, 0);
    }

    #[test]
    fn cache_invariants_hold_with_region_cache_disabled() {
        // With the region cache off every lookup is still counted (as a miss),
        // so the lookup invariant must hold unchanged.
        let mut kernel = Kernel::new(KernelConfig::default().with_cache(false));
        let id = kernel
            .load_column("col", (0..100_000i64).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        kernel.set_action(id, TouchAction::Scan).unwrap();
        let view = kernel.view(id).unwrap();
        let trace = GestureSynthesizer::new(60.0).slide_down(&view, 1.0);
        let outcome = kernel.run_trace(id, &trace).unwrap();
        let s = &outcome.stats;
        assert_eq!(s.cache_hits, 0, "disabled cache can never hit");
        assert_eq!(s.cache_hits + s.cache_misses, s.entries_returned);
    }

    #[test]
    fn cache_layers_do_not_double_count() {
        // Both cache layers on, Summary action: every emitted summary entry is
        // exactly one region-cache lookup AND exactly one shared-cache lookup;
        // every shared miss is exactly one insert. Neither layer's counters
        // leak into the other's.
        let (mut kernel, id) = kernel_with_column(1_000_000);
        kernel
            .set_action(
                id,
                TouchAction::Summary {
                    half_window: Some(5),
                    kind: AggregateKind::Avg,
                },
            )
            .unwrap();
        let view = kernel.view(id).unwrap();
        let trace = GestureSynthesizer::new(60.0).slide_down(&view, 1.0);
        let outcome = kernel.run_trace(id, &trace).unwrap();
        let s = &outcome.stats;
        assert!(s.entries_returned > 0);
        assert_eq!(s.cache_hits + s.cache_misses, s.entries_returned);
        assert_eq!(
            s.shared_cache_hits + s.shared_cache_misses,
            s.entries_returned
        );
        assert_eq!(s.shared_cache_inserts, s.shared_cache_misses);
    }

    #[test]
    fn shared_cache_counters_stay_zero_when_disabled() {
        let mut kernel = Kernel::new(KernelConfig::default().with_shared_cache(false));
        let id = kernel
            .load_column("col", (0..1_000_000i64).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        kernel
            .set_action(
                id,
                TouchAction::Summary {
                    half_window: Some(5),
                    kind: AggregateKind::Avg,
                },
            )
            .unwrap();
        let view = kernel.view(id).unwrap();
        let trace = GestureSynthesizer::new(60.0).slide_down(&view, 1.0);
        let outcome = kernel.run_trace(id, &trace).unwrap();
        let s = &outcome.stats;
        assert!(s.entries_returned > 0);
        assert_eq!(s.shared_cache_hits, 0);
        assert_eq!(s.shared_cache_misses, 0);
        assert_eq!(s.shared_cache_inserts, 0);
        // The per-session region cache still does its job independently.
        assert_eq!(s.cache_hits + s.cache_misses, s.entries_returned);
    }

    #[test]
    fn overlapped_remote_summaries_drain_to_the_all_local_outcome() {
        use crate::catalog::SharedCatalog;
        use crate::remote_exec::drain_outcome;
        use dbtouch_types::RemoteSplitConfig;
        use std::sync::Arc;

        // Deep hierarchy + a high device boundary: slow slides decide level
        // ~10, below the device's coarsest-resident level 11 -> remote.
        let split = RemoteSplitConfig::default()
            .with_local_min_level(11)
            .with_network(2_000, 10_000);
        let remote_config = KernelConfig::default()
            .with_sample_levels(12)
            .with_remote_split(Some(split.clone()));
        let local_config = KernelConfig::default().with_sample_levels(12);

        let load = |config: KernelConfig| {
            let catalog = Arc::new(SharedCatalog::new(config));
            let id = catalog
                .load_column("col", (0..200_000).collect(), SizeCm::new(2.0, 10.0))
                .unwrap();
            (catalog, id)
        };
        let (local_catalog, local_id) = load(local_config);
        let (remote_catalog, remote_id) = load(remote_config);
        let view = local_catalog.data(local_id).unwrap().base_view().clone();
        let trace = GestureSynthesizer::new(60.0).slide_down(&view, 3.0);
        let action = TouchAction::Summary {
            half_window: Some(5),
            kind: AggregateKind::Avg,
        };

        let baseline = {
            let mut state = local_catalog.checkout(local_id).unwrap();
            state.set_action(action.clone());
            Session::new(&mut state, local_catalog.config())
                .run(&trace)
                .unwrap()
        };
        assert!(baseline.is_drained());
        assert_eq!(baseline.stats.remote, crate::remote::RemoteStats::default());

        let mut state = remote_catalog.checkout(remote_id).unwrap();
        state.set_action(action);
        let queue = Arc::clone(state.remote_tier().unwrap().queue());
        let mut outcome = Session::new(&mut state, remote_catalog.config())
            .run(&trace)
            .unwrap();

        // Before the drain: provisional answers are on screen for every
        // fine-level touch, the ledger holds their pending slots, and the
        // deferred rows are not yet charged.
        assert!(!outcome.is_drained());
        assert_eq!(outcome.pending.len(), outcome.ledger.pending_count());
        assert_eq!(
            outcome.stats.remote.progressive_requests,
            outcome.pending.len() as u64
        );
        assert_eq!(outcome.stats.remote.rows_shipped, 0);
        assert!(outcome.stats.rows_touched < baseline.stats.rows_touched);
        let rows_before_drain = outcome.stats.rows_touched;
        assert_eq!(
            outcome.stats.entries_returned,
            baseline.stats.entries_returned
        );
        assert_ne!(outcome.results, baseline.results, "provisional != refined");

        // After the drain: bit-identical to the all-local run.
        let applied = drain_outcome(&mut outcome, &queue).unwrap();
        assert_eq!(applied, outcome.stats.remote_refinements_applied);
        assert!(applied > 20, "slow slide must ship many refinements");
        assert_eq!(outcome.results, baseline.results);
        assert_eq!(outcome.final_aggregate, baseline.final_aggregate);
        assert_eq!(outcome.stats.rows_touched, baseline.stats.rows_touched);
        assert_eq!(outcome.stats.bytes_touched, baseline.stats.bytes_touched);
        // Exactly the deferred fine-window rows were shipped (edge windows
        // clamp below the full 11 rows, so compare against the deficit the
        // provisional run left, not a per-window constant).
        assert_eq!(
            outcome.stats.remote.rows_shipped,
            baseline.stats.rows_touched - rows_before_drain
        );
        assert!(outcome.stats.remote.remote_wait_micros >= applied * 2_000);
        assert_eq!(outcome.stats.remote_refinements_dropped, 0);
        // The overlapped session itself never stalled on the link.
        assert_eq!(outcome.stats.remote_blocked_micros, 0);
    }

    #[test]
    fn blocking_remote_summaries_stall_inline_but_stay_exact() {
        use crate::kernel::Kernel;
        use dbtouch_types::RemoteSplitConfig;

        let split = RemoteSplitConfig::default()
            .with_local_min_level(11)
            .with_network(500, 0)
            .with_overlapped(false);
        let mut remote = Kernel::new(
            KernelConfig::default()
                .with_sample_levels(12)
                .with_remote_split(Some(split)),
        );
        let mut local = Kernel::new(KernelConfig::default().with_sample_levels(12));
        let action = TouchAction::Summary {
            half_window: Some(5),
            kind: AggregateKind::Avg,
        };
        let rid = remote
            .load_column("col", (0..200_000).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        let lid = local
            .load_column("col", (0..200_000).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        remote.set_action(rid, action.clone()).unwrap();
        local.set_action(lid, action).unwrap();
        let view = local.view(lid).unwrap();
        let trace = GestureSynthesizer::new(60.0).slide_down(&view, 3.0);

        let blocked = remote.run_trace(rid, &trace).unwrap();
        let baseline = local.run_trace(lid, &trace).unwrap();
        assert!(blocked.is_drained(), "blocking mode has nothing in flight");
        assert_eq!(blocked.results, baseline.results);
        assert_eq!(blocked.final_aggregate, baseline.final_aggregate);
        assert_eq!(blocked.stats.rows_touched, baseline.stats.rows_touched);
        let r = &blocked.stats.remote;
        assert!(r.remote_requests > 20, "slow slide goes remote");
        assert_eq!(r.progressive_requests, 0);
        assert_eq!(r.remote_wait_micros, r.remote_requests * 500);
        assert_eq!(blocked.stats.remote_blocked_micros, r.remote_wait_micros);
        assert!(r.rows_shipped > 0);
    }

    #[test]
    fn kernel_run_trace_returns_drained_outcomes_with_remote_split() {
        use crate::kernel::Kernel;
        use dbtouch_types::RemoteSplitConfig;

        let split = RemoteSplitConfig::default()
            .with_local_min_level(11)
            .with_network(1_000, 10_000);
        let mut remote = Kernel::new(
            KernelConfig::default()
                .with_sample_levels(12)
                .with_remote_split(Some(split)),
        );
        let mut local = Kernel::new(KernelConfig::default().with_sample_levels(12));
        let action = TouchAction::Summary {
            half_window: Some(5),
            kind: AggregateKind::Sum,
        };
        let rid = remote
            .load_column("col", (0..200_000).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        let lid = local
            .load_column("col", (0..200_000).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        remote.set_action(rid, action.clone()).unwrap();
        local.set_action(lid, action).unwrap();
        let view = local.view(lid).unwrap();
        // Mixed speeds: the fast trace stays device-local, the slow one ships
        // refinements; both must match the all-local kernel exactly.
        for duration in [0.8, 3.0] {
            let trace = GestureSynthesizer::new(60.0).slide_down(&view, duration);
            let refined = remote.run_trace(rid, &trace).unwrap();
            let baseline = local.run_trace(lid, &trace).unwrap();
            assert!(refined.is_drained());
            assert_eq!(refined.results, baseline.results);
            assert_eq!(refined.final_aggregate, baseline.final_aggregate);
            assert_eq!(refined.stats.rows_touched, baseline.stats.rows_touched);
        }
    }

    #[test]
    fn shared_cache_serves_identical_windows_across_sessions() {
        use crate::catalog::SharedCatalog;
        use std::sync::Arc;

        let catalog = Arc::new(SharedCatalog::new(KernelConfig::default()));
        let id = catalog
            .load_column("col", (0..1_000_000).collect(), SizeCm::new(2.0, 10.0))
            .unwrap();
        let view = catalog.data(id).unwrap().base_view().clone();
        let trace = GestureSynthesizer::new(60.0).slide_down(&view, 1.0);
        let action = TouchAction::Summary {
            half_window: Some(5),
            kind: AggregateKind::Avg,
        };

        let run = |catalog: &Arc<SharedCatalog>| {
            let mut state = catalog.checkout(id).unwrap();
            state.set_action(action.clone());
            Session::new(&mut state, catalog.config())
                .run(&trace)
                .unwrap()
        };
        let first = run(&catalog);
        let second = run(&catalog);

        // The first session populates the cache; the second answers every
        // window from it.
        assert!(first.stats.shared_cache_misses > 0);
        assert_eq!(first.stats.shared_cache_hits, 0);
        assert_eq!(second.stats.shared_cache_misses, 0);
        assert_eq!(
            second.stats.shared_cache_hits,
            second.stats.entries_returned
        );
        assert_eq!(second.stats.shared_cache_inserts, 0);

        // Result transparency: hits change nothing the user (or the digest)
        // sees — results, aggregates and logical accounting are identical.
        assert_eq!(first.results, second.results);
        assert_eq!(first.final_aggregate, second.final_aggregate);
        assert_eq!(first.stats.rows_touched, second.stats.rows_touched);
        assert_eq!(first.stats.bytes_touched, second.stats.bytes_touched);
        assert_eq!(first.stats.entries_returned, second.stats.entries_returned);
        assert_eq!(
            catalog.shared_cache().unwrap().stats().inserts,
            first.stats.shared_cache_inserts
        );
    }
}
