//! Simulated remote processing (Section 4, "Remote Processing").
//!
//! "The server may store the base data and the big samples, while the touch
//! device may store only small samples. Then, during query processing dbTouch
//! may use both local and remote data to process queries; as users request more
//! detail, more requests are shipped to the server. [...] dbTouch needs to
//! carefully exploit both local and remote data, i.e., use local data to feed
//! partial answers, while in the mean time more fine-grained answers are
//! produced and delivered by the server."
//!
//! The paper has no real deployment; we model the split with a
//! [`RemoteStore`]: the device keeps the coarse sample levels of a column, the
//! simulated server keeps everything, and each request is charged a latency and
//! a bandwidth cost. The router answers immediately from local data when it
//! can, and reports what a remote round trip would have cost otherwise — which
//! is what the remote-processing example and tests measure.

use dbtouch_storage::sample::SampleHierarchy;
use dbtouch_types::{DbTouchError, Result, RowRange};
use serde::{Deserialize, Serialize};

/// Where a request was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServedFrom {
    /// Answered entirely from the device's local samples.
    Local,
    /// Required a round trip to the simulated server.
    Remote,
}

/// The outcome of one data request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RemoteFetch {
    /// Where the rows came from.
    pub served_from: ServedFrom,
    /// Rows transferred.
    pub rows: u64,
    /// Simulated time to answer, in microseconds.
    pub simulated_micros: u64,
}

/// Accumulated traffic statistics.
///
/// The three request counters are disjoint: a progressive request (coarse
/// local answer plus fine remote refinement for one logical ask) counts once
/// in `progressive_requests` and in neither of the other two. All
/// accumulation saturates, so adversarial [`NetworkModel`] values cannot wrap
/// the counters in release builds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RemoteStats {
    /// Requests answered entirely locally.
    pub local_requests: u64,
    /// Requests that went to the server (and only to the server).
    pub remote_requests: u64,
    /// Progressive requests: one coarse local answer plus one fine remote
    /// refinement, counted once here.
    pub progressive_requests: u64,
    /// Rows shipped from the server.
    pub rows_shipped: u64,
    /// Total simulated time spent waiting on the server, in microseconds.
    pub remote_wait_micros: u64,
}

impl RemoteStats {
    /// Total logical requests of any kind.
    pub fn total_requests(&self) -> u64 {
        self.local_requests
            .saturating_add(self.remote_requests)
            .saturating_add(self.progressive_requests)
    }

    /// Saturating accumulation of another stats block into this one.
    pub fn absorb(&mut self, other: &RemoteStats) {
        self.local_requests = self.local_requests.saturating_add(other.local_requests);
        self.remote_requests = self.remote_requests.saturating_add(other.remote_requests);
        self.progressive_requests = self
            .progressive_requests
            .saturating_add(other.progressive_requests);
        self.rows_shipped = self.rows_shipped.saturating_add(other.rows_shipped);
        self.remote_wait_micros = self
            .remote_wait_micros
            .saturating_add(other.remote_wait_micros);
    }
}

/// Network model of the simulated server link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Round-trip latency per request, in microseconds.
    pub round_trip_micros: u64,
    /// Transfer throughput in rows per millisecond.
    pub rows_per_milli: u64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        // A reasonable WAN: 40ms round trip, ~2000 rows (16KB of int64) per ms.
        NetworkModel {
            round_trip_micros: 40_000,
            rows_per_milli: 2_000,
        }
    }
}

impl NetworkModel {
    /// The link described by a [`dbtouch_types::RemoteSplitConfig`].
    pub fn from_split(split: &dbtouch_types::RemoteSplitConfig) -> NetworkModel {
        NetworkModel {
            round_trip_micros: split.round_trip_micros,
            rows_per_milli: split.rows_per_milli,
        }
    }

    /// Simulated microseconds one request shipping `rows` costs: the round
    /// trip plus the transfer time. Saturating — adversarial models (e.g.
    /// `round_trip_micros == u64::MAX`) clamp instead of wrapping in release
    /// builds; a zero-bandwidth link is latency-only.
    pub fn cost_micros(&self, rows: u64) -> u64 {
        let transfer = rows
            .saturating_mul(1000)
            .checked_div(self.rows_per_milli)
            .unwrap_or(0);
        self.round_trip_micros.saturating_add(transfer)
    }
}

/// A column split between a thin device store and a simulated remote server.
#[derive(Debug, Clone)]
pub struct RemoteStore {
    hierarchy: SampleHierarchy,
    /// Coarsest level range kept on the device: levels `>= local_min_level`.
    local_min_level: u8,
    network: NetworkModel,
    stats: RemoteStats,
}

impl RemoteStore {
    /// Split a sample hierarchy: the device keeps levels `>= local_min_level`
    /// (the coarse, small samples), the server keeps everything.
    pub fn new(
        hierarchy: SampleHierarchy,
        local_min_level: u8,
        network: NetworkModel,
    ) -> Result<RemoteStore> {
        if local_min_level >= hierarchy.level_count() {
            return Err(DbTouchError::InvalidSampleLevel {
                level: local_min_level,
                max: hierarchy.level_count(),
            });
        }
        Ok(RemoteStore {
            hierarchy,
            local_min_level,
            network,
            stats: RemoteStats::default(),
        })
    }

    /// The sample hierarchy (base data + all levels, i.e. the server's copy).
    pub fn hierarchy(&self) -> &SampleHierarchy {
        &self.hierarchy
    }

    /// The coarsest level held locally.
    pub fn local_min_level(&self) -> u8 {
        self.local_min_level
    }

    /// Device-resident bytes (the local sample levels only).
    pub fn local_bytes(&self) -> u64 {
        (self.local_min_level..self.hierarchy.level_count())
            .filter_map(|l| self.hierarchy.level(l).ok())
            .map(|c| c.byte_size())
            .sum()
    }

    /// True if a request at `level` can be served from the device.
    pub fn is_local(&self, level: u8) -> bool {
        level >= self.local_min_level
    }

    /// Serve `range` at `level` without touching the request counters: the
    /// shared cost computation of [`fetch`](RemoteStore::fetch) and
    /// [`fetch_progressive`](RemoteStore::fetch_progressive).
    fn serve(&self, range: RowRange, level: u8) -> Result<RemoteFetch> {
        let mapped = self.hierarchy.map_range(range, level)?;
        let rows = mapped.len();
        if self.is_local(level) {
            Ok(RemoteFetch {
                served_from: ServedFrom::Local,
                rows,
                simulated_micros: 0,
            })
        } else {
            Ok(RemoteFetch {
                served_from: ServedFrom::Remote,
                rows,
                simulated_micros: self.network.cost_micros(rows),
            })
        }
    }

    /// Absorb a served fetch's traffic (rows and wait, not the request
    /// counters — the caller decides which of the disjoint counters the
    /// logical request belongs to).
    fn charge(&mut self, fetch: &RemoteFetch) {
        if fetch.served_from == ServedFrom::Remote {
            self.stats.rows_shipped = self.stats.rows_shipped.saturating_add(fetch.rows);
            self.stats.remote_wait_micros = self
                .stats
                .remote_wait_micros
                .saturating_add(fetch.simulated_micros);
        }
    }

    /// Request `range` (in base-row coordinates) at `level`, returning where it
    /// was served from and the simulated cost. Local requests are free in this
    /// model (in-memory), remote requests pay a round trip plus transfer time.
    pub fn fetch(&mut self, range: RowRange, level: u8) -> Result<RemoteFetch> {
        let fetch = self.serve(range, level)?;
        match fetch.served_from {
            ServedFrom::Local => {
                self.stats.local_requests = self.stats.local_requests.saturating_add(1);
            }
            ServedFrom::Remote => {
                self.stats.remote_requests = self.stats.remote_requests.saturating_add(1);
            }
        }
        self.charge(&fetch);
        Ok(fetch)
    }

    /// Answer a detail request the dbTouch way: first return the best local
    /// answer (coarse but instant), then the remote answer (fine but slow).
    /// Returns `(local, Option<remote>)`; the remote part is `None` when the
    /// requested level is already local.
    ///
    /// A progressive request counts once, in
    /// [`RemoteStats::progressive_requests`] — its coarse and fine parts bump
    /// neither `local_requests` nor `remote_requests`, so the three counters
    /// partition the logical requests. (An already-local request degenerates
    /// to a plain local fetch and is counted as one.)
    pub fn fetch_progressive(
        &mut self,
        range: RowRange,
        requested_level: u8,
    ) -> Result<(RemoteFetch, Option<RemoteFetch>)> {
        if self.is_local(requested_level) {
            return Ok((self.fetch(range, requested_level)?, None));
        }
        let local = self.serve(range, self.local_min_level)?;
        let remote = self.serve(range, requested_level)?;
        self.stats.progressive_requests = self.stats.progressive_requests.saturating_add(1);
        self.charge(&local);
        self.charge(&remote);
        Ok((local, Some(remote)))
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> RemoteStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtouch_storage::column::Column;

    fn store() -> RemoteStore {
        let h = SampleHierarchy::build(Column::from_i64("c", (0..100_000).collect()), 8).unwrap();
        RemoteStore::new(h, 4, NetworkModel::default()).unwrap()
    }

    #[test]
    fn split_levels() {
        let s = store();
        assert!(s.is_local(4));
        assert!(s.is_local(7));
        assert!(!s.is_local(0));
        assert!(!s.is_local(3));
        assert!(s.local_bytes() < s.hierarchy().base().byte_size() / 4);
    }

    #[test]
    fn invalid_split_rejected() {
        let h = SampleHierarchy::build(Column::from_i64("c", (0..100).collect()), 3).unwrap();
        assert!(RemoteStore::new(h, 9, NetworkModel::default()).is_err());
    }

    #[test]
    fn local_fetch_is_free() {
        let mut s = store();
        let f = s.fetch(RowRange::new(0, 10_000), 5).unwrap();
        assert_eq!(f.served_from, ServedFrom::Local);
        assert_eq!(f.simulated_micros, 0);
        assert_eq!(s.stats().local_requests, 1);
        assert_eq!(s.stats().remote_requests, 0);
    }

    #[test]
    fn remote_fetch_pays_latency_and_transfer() {
        let mut s = store();
        let f = s.fetch(RowRange::new(0, 20_000), 0).unwrap();
        assert_eq!(f.served_from, ServedFrom::Remote);
        assert_eq!(f.rows, 20_000);
        assert_eq!(f.simulated_micros, 40_000 + 20_000 * 1000 / 2_000);
        assert_eq!(s.stats().remote_requests, 1);
        assert_eq!(s.stats().rows_shipped, 20_000);
    }

    #[test]
    fn progressive_fetch_serves_coarse_then_fine() {
        let mut s = store();
        let (local, remote) = s.fetch_progressive(RowRange::new(0, 16_000), 1).unwrap();
        assert_eq!(local.served_from, ServedFrom::Local);
        let remote = remote.unwrap();
        assert_eq!(remote.served_from, ServedFrom::Remote);
        // the coarse local answer covers far fewer rows than the fine remote one
        assert!(local.rows < remote.rows);
        // when the requested level is already local there is no remote part
        let (_, none) = s.fetch_progressive(RowRange::new(0, 16_000), 6).unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn progressive_requests_are_counted_once_and_unambiguously() {
        // Regression: a progressive request used to bump both local_requests
        // (for its coarse part) and remote_requests (for its fine part),
        // making the counters impossible to reconcile with logical requests.
        let mut s = store();
        let (local, remote) = s.fetch_progressive(RowRange::new(0, 16_000), 1).unwrap();
        let remote = remote.unwrap();
        let stats = s.stats();
        assert_eq!(stats.progressive_requests, 1);
        assert_eq!(stats.local_requests, 0);
        assert_eq!(stats.remote_requests, 0);
        assert_eq!(stats.total_requests(), 1);
        // Traffic of the remote half is still accounted.
        assert_eq!(stats.rows_shipped, remote.rows);
        assert_eq!(stats.remote_wait_micros, remote.simulated_micros);
        assert_eq!(local.simulated_micros, 0);

        // An already-local progressive request degenerates to one local fetch.
        s.fetch_progressive(RowRange::new(0, 16_000), 6).unwrap();
        let stats = s.stats();
        assert_eq!(stats.progressive_requests, 1);
        assert_eq!(stats.local_requests, 1);
        assert_eq!(stats.total_requests(), 2);

        // A plain remote fetch stays in its own counter.
        s.fetch(RowRange::new(0, 100), 0).unwrap();
        let stats = s.stats();
        assert_eq!(stats.remote_requests, 1);
        assert_eq!(stats.total_requests(), 3);
    }

    #[test]
    fn adversarial_network_model_saturates_instead_of_overflowing() {
        let h = SampleHierarchy::build(Column::from_i64("c", (0..100_000).collect()), 8).unwrap();
        let mut s = RemoteStore::new(
            h,
            4,
            NetworkModel {
                round_trip_micros: u64::MAX,
                rows_per_milli: 1,
            },
        )
        .unwrap();
        // transfer = rows * 1000 (saturating), added to u64::MAX round trip:
        // both the per-fetch cost and the accumulated stats must clamp.
        let f = s.fetch(RowRange::new(0, 50_000), 0).unwrap();
        assert_eq!(f.simulated_micros, u64::MAX);
        let _ = s.fetch(RowRange::new(0, 50_000), 0).unwrap();
        assert_eq!(s.stats().remote_wait_micros, u64::MAX);
        assert_eq!(s.stats().remote_requests, 2);

        // A model whose transfer product alone would overflow u64.
        let model = NetworkModel {
            round_trip_micros: 0,
            rows_per_milli: 1,
        };
        assert_eq!(model.cost_micros(u64::MAX / 2), u64::MAX);

        // RemoteStats::absorb saturates too.
        let mut a = RemoteStats {
            remote_wait_micros: u64::MAX - 10,
            rows_shipped: u64::MAX,
            ..RemoteStats::default()
        };
        let b = a;
        a.absorb(&b);
        assert_eq!(a.remote_wait_micros, u64::MAX);
        assert_eq!(a.rows_shipped, u64::MAX);
        assert_eq!(a.total_requests(), 0);
    }

    #[test]
    fn zero_bandwidth_model_only_charges_latency() {
        let h = SampleHierarchy::build(Column::from_i64("c", (0..1000).collect()), 4).unwrap();
        let mut s = RemoteStore::new(
            h,
            2,
            NetworkModel {
                round_trip_micros: 1_000,
                rows_per_milli: 0,
            },
        )
        .unwrap();
        let f = s.fetch(RowRange::new(0, 100), 0).unwrap();
        assert_eq!(f.simulated_micros, 1_000);
    }
}
